//! The unified TFT compact model: Eq. (1) mobility integrated into a
//! single-piece charge-drift current equation.
//!
//! Above threshold the drain current follows the classic TFT power law
//!
//! ```text
//! I_D = (W/L) · μ₀ C_ox · [ V_ov^β − (V_ov − V_DSe)^β ] / β · (1 + λ V_DS)
//! ```
//!
//! with `β = γ + 2`, `V_ov` the overdrive and `V_DSe` the saturated drain
//! voltage. Two smoothing devices make the expression single-piece and
//! infinitely differentiable (necessary for the Newton iterations of the
//! SPICE engine): the overdrive is softplus-smoothed through threshold
//! (giving the exponential subthreshold tail with ideality `ss_factor`),
//! and `V_DSe` approaches `V_ov` smoothly as the device saturates.
//!
//! Negative `V_DS` is handled by source/drain symmetry and P-type devices
//! by mirroring, so the model is valid in all four quadrants.

use crate::{CompactError, Result};

/// Thermal voltage at 300 K, V.
pub const THERMAL_VOLTAGE: f64 = 0.025852;

/// Transistor polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceType {
    /// Electron-conduction TFT.
    NType,
    /// Hole-conduction TFT.
    PType,
}

/// A drain-current operating point: the current and its partial
/// derivatives with respect to the terminal voltages, as produced by
/// [`CompactModel::linearize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Linearization {
    /// Drain current, A (bitwise equal to `drain_current` at the same
    /// bias).
    pub id: f64,
    /// Transconductance `∂I_D/∂V_GS`, S (analytic).
    pub gm: f64,
    /// Output conductance `∂I_D/∂V_DS`, S (analytic).
    pub gds: f64,
}

/// The unified compact model parameters (one transistor instance).
#[derive(Debug, Clone, PartialEq)]
pub struct CompactModel {
    device_type: DeviceType,
    /// Effective mobility at |V_ov| = 1 V, m²/(V·s) (Eq. 1's μ₀).
    pub mu0: f64,
    /// Threshold voltage, V (positive for N, negative for P by convention).
    pub vth: f64,
    /// Field-enhancement exponent γ of Eq. (1).
    pub gamma: f64,
    /// Gate-oxide capacitance per area, F/m².
    pub cox: f64,
    /// Channel width, m.
    pub width: f64,
    /// Channel length, m.
    pub length: f64,
    /// Subthreshold ideality factor (slope = `ss_factor` · 60 mV/dec).
    pub ss_factor: f64,
    /// Channel-length modulation, 1/V.
    pub lambda: f64,
    /// Off-state leakage sheet conductance, S (at W/L = 1).
    pub leak_conductance: f64,
}

impl CompactModel {
    /// A representative n-type TFT (IGZO-like): μ₀ = 10 cm²/Vs, V_th =
    /// 0.6 V, γ = 0.3, 100 nF/cm² oxide, W/L = 10 µm / 5 µm.
    pub fn ntype_reference() -> Self {
        CompactModel {
            device_type: DeviceType::NType,
            mu0: 1.0e-3,
            vth: 0.6,
            gamma: 0.3,
            cox: 1.0e-3, // 100 nF/cm² = 1e-3 F/m²
            width: 10.0e-6,
            length: 5.0e-6,
            ss_factor: 1.4,
            lambda: 0.02,
            leak_conductance: 1.0e-15,
        }
    }

    /// A representative p-type TFT (CNT-like): μ₀ = 20 cm²/Vs, V_th =
    /// −0.8 V, γ = 0.45.
    pub fn ptype_reference() -> Self {
        CompactModel {
            device_type: DeviceType::PType,
            mu0: 2.0e-3,
            vth: -0.8,
            gamma: 0.45,
            cox: 1.0e-3,
            width: 10.0e-6,
            length: 5.0e-6,
            ss_factor: 1.6,
            lambda: 0.02,
            leak_conductance: 1.0e-15,
        }
    }

    /// Polarity of the device.
    pub fn device_type(&self) -> DeviceType {
        self.device_type
    }

    /// Builds a model with explicit polarity and core parameters, keeping
    /// the reference values for the rest.
    pub fn with_params(device_type: DeviceType, mu0: f64, vth: f64, gamma: f64) -> Self {
        let mut m = match device_type {
            DeviceType::NType => Self::ntype_reference(),
            DeviceType::PType => Self::ptype_reference(),
        };
        m.mu0 = mu0;
        m.vth = vth;
        m.gamma = gamma;
        m
    }

    /// Returns a copy resized to the given W/L (how the cell library
    /// instantiates differently-sized transistors from one model card).
    pub fn resized(&self, width: f64, length: f64) -> Self {
        let mut m = self.clone();
        m.width = width;
        m.length = length;
        m
    }

    /// Validates parameter domains.
    ///
    /// # Errors
    ///
    /// Returns [`CompactError::InvalidParameter`] for non-positive μ₀,
    /// C_ox, W, L or ss_factor, or γ outside `[0, 3]`.
    pub fn validate(&self) -> Result<()> {
        let positive = [
            ("mu0", self.mu0),
            ("cox", self.cox),
            ("width", self.width),
            ("length", self.length),
            ("ss_factor", self.ss_factor),
        ];
        for (name, v) in positive {
            if v <= 0.0 || !v.is_finite() {
                return Err(CompactError::InvalidParameter {
                    context: format!("{name} must be positive, got {v}"),
                });
            }
        }
        if !(0.0..=3.0).contains(&self.gamma) {
            return Err(CompactError::InvalidParameter {
                context: format!("gamma must be in [0, 3], got {}", self.gamma),
            });
        }
        Ok(())
    }

    /// Total gate capacitance `C_ox · W · L`, F (used for loading and the
    /// transient stamps of the SPICE engine).
    pub fn gate_capacitance(&self) -> f64 {
        self.cox * self.width * self.length
    }

    /// Eq. (1): mobility at gate-source voltage `vgs`, m²/(V·s).
    /// Zero below threshold (the hard form of the paper's equation; the
    /// current model uses the smoothed overdrive instead).
    pub fn mobility(&self, vgs: f64) -> f64 {
        let ov = match self.device_type {
            DeviceType::NType => vgs - self.vth,
            DeviceType::PType => self.vth - vgs,
        };
        if ov <= 0.0 {
            0.0
        } else {
            self.mu0 * ov.powf(self.gamma)
        }
    }

    /// Drain current, A, at `(V_GS, V_DS)` with source as reference.
    ///
    /// Sign conventions: positive current flows drain→source for N-type
    /// under positive drive; P-type under negative drive carries negative
    /// current. Valid in all quadrants.
    pub fn drain_current(&self, vgs: f64, vds: f64) -> f64 {
        match self.device_type {
            DeviceType::NType => self.current_n(vgs, vds),
            // P-type by mirror symmetry: I_P(Vgs, Vds) = −I_N'(−Vgs, −Vds)
            // with the mirrored threshold.
            DeviceType::PType => {
                let mirrored = CompactModel {
                    device_type: DeviceType::NType,
                    vth: -self.vth,
                    ..self.clone()
                };
                -mirrored.current_n(-vgs, -vds)
            }
        }
    }

    fn current_n(&self, vgs: f64, vds: f64) -> f64 {
        if vds < 0.0 {
            // Source/drain exchange symmetry.
            return -self.current_n_fwd(vgs - vds, -vds);
        }
        self.current_n_fwd(vgs, vds)
    }

    fn current_n_fwd(&self, vgs: f64, vds: f64) -> f64 {
        debug_assert!(vds >= 0.0);
        let beta = self.gamma + 2.0;
        // Softplus-smoothed overdrive: linear above threshold; below it
        // `V_ov ∝ exp(x/(β·s·V_t))` so that `I ∝ V_ov^β ∝ exp(x/(s·V_t))`
        // gives the intended subthreshold slope of s·60 mV/dec (without
        // the β scaling, the power law would steepen the slope by β).
        let s = beta * self.ss_factor * THERMAL_VOLTAGE;
        let x = (vgs - self.vth) / s;
        let vov = s * softplus(x);
        // Smooth saturation: V_DSe → min(V_DS, V_ov).
        let vdse = smooth_min(vds, vov);
        let k = self.mu0 * self.cox * self.width / self.length;
        let drift = k * (vov.powf(beta) - (vov - vdse).max(0.0).powf(beta)) / beta;
        let clm = 1.0 + self.lambda * vds;
        let leak = self.leak_conductance * self.width / self.length * vds;
        drift * clm + leak
    }

    /// Transconductance `∂I_D/∂V_GS` by central differences (1 mV step).
    pub fn gm(&self, vgs: f64, vds: f64) -> f64 {
        let h = 1e-3;
        (self.drain_current(vgs + h, vds) - self.drain_current(vgs - h, vds)) / (2.0 * h)
    }

    /// Output conductance `∂I_D/∂V_DS` by central differences.
    pub fn gds(&self, vgs: f64, vds: f64) -> f64 {
        let h = 1e-3;
        (self.drain_current(vgs, vds + h) - self.drain_current(vgs, vds - h)) / (2.0 * h)
    }

    /// Fused operating-point evaluation: drain current plus its analytic
    /// partial derivatives in one pass.
    ///
    /// The SPICE Newton loop needs `(I_D, g_m, g_ds)` for every TFT on
    /// every iteration. Evaluating them as `drain_current` + two
    /// central-difference helpers costs five full model evaluations (and,
    /// for P-type, five mirrored-model constructions); this method shares
    /// the forward pass and differentiates the smoothing devices in closed
    /// form, so one call replaces all five. The current is bitwise
    /// identical to [`CompactModel::drain_current`]; the derivatives are
    /// exact where `gm`/`gds` carry an `O(h²)` finite-difference error.
    // stco-hot
    pub fn linearize(&self, vgs: f64, vds: f64) -> Linearization {
        match self.device_type {
            DeviceType::NType => self.linearize_n(self.vth, vgs, vds),
            // Mirror symmetry (see `drain_current`): I_P(Vgs, Vds) =
            // −I_N'(−Vgs, −Vds), so both derivatives keep their sign:
            // ∂I_P/∂Vgs = I_N'₁(−Vgs, −Vds) and likewise for ∂/∂Vds.
            DeviceType::PType => {
                let lin = self.linearize_n(-self.vth, -vgs, -vds);
                Linearization {
                    id: -lin.id,
                    gm: lin.gm,
                    gds: lin.gds,
                }
            }
        }
    }

    /// N-type linearization with an explicit threshold (so the P-type
    /// mirror never clones the model).
    fn linearize_n(&self, vth: f64, vgs: f64, vds: f64) -> Linearization {
        if vds < 0.0 {
            // Source/drain exchange symmetry: I(Vgs, Vds) = −F(Vgs − Vds,
            // −Vds), hence ∂I/∂Vgs = −F₁ and ∂I/∂Vds = F₁ + F₂.
            let f = self.linearize_n_fwd(vth, vgs - vds, -vds);
            return Linearization {
                id: -f.id,
                gm: -f.gm,
                gds: f.gm + f.gds,
            };
        }
        self.linearize_n_fwd(vth, vgs, vds)
    }

    /// First-quadrant model with forward value and analytic partials.
    ///
    /// The forward value replays `current_n_fwd` operation for operation
    /// (so it stays bitwise identical); the derivative terms reuse its
    /// intermediates. With `f(a, b) = a·(1 + (a/b)^m)^(−1/m)` the
    /// smooth-min partials collapse to `∂f/∂a = w^(−(m+1)/m)` and
    /// `∂f/∂b = (u^m/w)^((m+1)/m)` where `u = a/b`, `w = 1 + u^m`.
    fn linearize_n_fwd(&self, vth: f64, vgs: f64, vds: f64) -> Linearization {
        debug_assert!(vds >= 0.0);
        let beta = self.gamma + 2.0;
        let s = beta * self.ss_factor * THERMAL_VOLTAGE;
        let x = (vgs - vth) / s;
        // Softplus and its derivative share the single exp() evaluation;
        // dV_ov/dV_GS = σ(x) because the `s` factors cancel.
        let (sp, dvov) = softplus_with_derivative(x);
        let vov = s * sp;
        // Smooth saturation V_DSe = f(V_DS, V_ov) and its two partials.
        let (vdse, df_dvds, df_dvov) = smooth_min_with_partials(vds, vov);
        let k = self.mu0 * self.cox * self.width / self.length;
        let vov_pow = vov.powf(beta);
        let q = (vov - vdse).max(0.0);
        let q_pow = q.powf(beta);
        let drift = k * (vov_pow - q_pow) / beta;
        let clm = 1.0 + self.lambda * vds;
        let leak_g = self.leak_conductance * self.width / self.length;
        let id = drift * clm + leak_g * vds;
        // β·v^(β−1) = β·v^β / v; both bases are strictly positive except
        // at exact zero, where the β > 2 power law has zero slope.
        let vov_pm1 = if vov > 0.0 { vov_pow / vov } else { 0.0 };
        let q_pm1 = if q > 0.0 { q_pow / q } else { 0.0 };
        let dvdse_dvgs = df_dvov * dvov;
        let ddrift_dvgs = k * (vov_pm1 * dvov - q_pm1 * (dvov - dvdse_dvgs));
        let ddrift_dvds = k * q_pm1 * df_dvds;
        Linearization {
            id,
            gm: ddrift_dvgs * clm,
            gds: ddrift_dvds * clm + drift * self.lambda + leak_g,
        }
    }

    /// On-current at the given supply (|V_GS| = |V_DS| = V_DD with the
    /// polarity-correct signs).
    pub fn on_current(&self, vdd: f64) -> f64 {
        match self.device_type {
            DeviceType::NType => self.drain_current(vdd, vdd),
            DeviceType::PType => self.drain_current(-vdd, -vdd).abs(),
        }
    }

    /// Off-current magnitude at |V_DS| = V_DD, V_GS = 0.
    pub fn off_current(&self, vdd: f64) -> f64 {
        match self.device_type {
            DeviceType::NType => self.drain_current(0.0, vdd).abs(),
            DeviceType::PType => self.drain_current(0.0, -vdd).abs(),
        }
    }
}

/// Numerically-stable softplus `ln(1 + eˣ)`.
fn softplus(x: f64) -> f64 {
    if x > 30.0 {
        x
    } else if x < -30.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Softplus together with its derivative σ(x), sharing the single `exp`
/// evaluation. The forward value is branch-for-branch identical to
/// [`softplus`].
fn softplus_with_derivative(x: f64) -> (f64, f64) {
    if x > 30.0 {
        (x, 1.0)
    } else if x < -30.0 {
        let e = x.exp();
        (e, e)
    } else {
        let e = x.exp();
        (e.ln_1p(), e / (1.0 + e))
    }
}

/// Smooth minimum that approaches `min(a, b)` with C¹ continuity:
/// `a·b / (a^m + b^m)^(1/m)`-style saturation with m = 4.
fn smooth_min(a: f64, b: f64) -> f64 {
    if b <= 0.0 {
        return 0.0;
    }
    let m = 4.0;
    let u = a / b;
    a / (1.0 + u.powf(m)).powf(1.0 / m)
}

/// [`smooth_min`] together with both partials `(f, ∂f/∂a, ∂f/∂b)`.
///
/// With `u = a/b` and `w = 1 + u^m`, the quotient-rule expressions
/// collapse (using `w − u^m = 1` and degree-1 homogeneity) to
/// `∂f/∂a = w^(−(m+1)/m)` and `∂f/∂b = (u^m/w)^((m+1)/m)`. The forward
/// value replays [`smooth_min`] exactly.
fn smooth_min_with_partials(a: f64, b: f64) -> (f64, f64, f64) {
    if b <= 0.0 {
        return (0.0, 0.0, 0.0);
    }
    let m = 4.0;
    let u = a / b;
    let um = u.powf(m);
    let value = a / (1.0 + um).powf(1.0 / m);
    if !um.is_finite() {
        // a ≫ b: f saturates at b, so ∂f/∂a → 0 and ∂f/∂b → 1.
        return (value, 0.0, 1.0);
    }
    let w = 1.0 + um;
    (value, w.powf(-(m + 1.0) / m), (um / w).powf((m + 1.0) / m))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn references_validate() {
        CompactModel::ntype_reference().validate().unwrap();
        CompactModel::ptype_reference().validate().unwrap();
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let mut m = CompactModel::ntype_reference();
        m.mu0 = -1.0;
        assert!(m.validate().is_err());
        let mut m = CompactModel::ntype_reference();
        m.gamma = 5.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn eq1_mobility_power_law() {
        let m = CompactModel::ntype_reference();
        let mu1 = m.mobility(m.vth + 1.0);
        let mu2 = m.mobility(m.vth + 2.0);
        assert!((mu1 - m.mu0).abs() < 1e-15, "μ at V_ov=1 must equal μ₀");
        assert!((mu2 / mu1 - 2.0_f64.powf(m.gamma)).abs() < 1e-12);
        assert_eq!(m.mobility(m.vth - 0.5), 0.0);
    }

    #[test]
    fn ptype_mobility_mirrors() {
        let m = CompactModel::ptype_reference();
        assert!(m.mobility(m.vth - 1.0) > 0.0);
        assert_eq!(m.mobility(m.vth + 0.5), 0.0);
    }

    #[test]
    fn current_monotone_in_vgs() {
        let m = CompactModel::ntype_reference();
        let mut prev = -1.0;
        for k in 0..30 {
            let vgs = -1.0 + 0.2 * k as f64;
            let i = m.drain_current(vgs, 1.0);
            assert!(i >= prev, "I_D must not decrease with V_GS");
            prev = i;
        }
        // Strictly increasing once above the leak floor.
        assert!(m.drain_current(2.0, 1.0) > 1.5 * m.drain_current(1.5, 1.0));
    }

    #[test]
    fn current_monotone_and_saturating_in_vds() {
        let m = CompactModel::ntype_reference();
        let vgs = 2.0;
        let mut prev = 0.0;
        let mut slopes = Vec::new();
        for k in 1..=30 {
            let vds = 0.1 * k as f64;
            let i = m.drain_current(vgs, vds);
            assert!(i >= prev, "output curve must be non-decreasing");
            slopes.push((i - prev) / 0.1);
            prev = i;
        }
        assert!(slopes[29] < 0.2 * slopes[0], "must saturate");
    }

    #[test]
    fn subthreshold_slope_matches_ideality() {
        let m = CompactModel::ntype_reference();
        // Two points well below threshold, one decade apart in current.
        let v1 = m.vth - 0.35;
        let v2 = m.vth - 0.25;
        let i1 = m.drain_current(v1, 1.0);
        let i2 = m.drain_current(v2, 1.0);
        let decades = (i2 / i1).log10();
        let slope_mv_per_dec = (v2 - v1) * 1000.0 / decades;
        let expected = m.ss_factor * THERMAL_VOLTAGE * std::f64::consts::LN_10 * 1000.0;
        assert!(
            (slope_mv_per_dec - expected).abs() / expected < 0.25,
            "SS {slope_mv_per_dec:.1} mV/dec vs expected {expected:.1}"
        );
    }

    #[test]
    fn current_is_continuous_through_saturation() {
        let m = CompactModel::ntype_reference();
        let vgs = 1.6;
        let vov = vgs - m.vth;
        let eps = 1e-6;
        let below = m.drain_current(vgs, vov - eps);
        let above = m.drain_current(vgs, vov + eps);
        assert!((below - above).abs() / above < 1e-3);
    }

    #[test]
    fn zero_vds_zero_current() {
        let n = CompactModel::ntype_reference();
        let p = CompactModel::ptype_reference();
        assert_eq!(n.drain_current(2.0, 0.0), 0.0);
        assert_eq!(p.drain_current(-2.0, 0.0), 0.0);
    }

    #[test]
    fn reverse_vds_antisymmetry() {
        // Swapping source and drain negates the current (with Vgs referred
        // to the new source).
        let m = CompactModel::ntype_reference();
        let (vgs, vds) = (1.5, 0.7);
        let fwd = m.drain_current(vgs, vds);
        let rev = m.drain_current(vgs - vds, -vds);
        assert!((fwd + rev).abs() / fwd < 1e-12);
    }

    #[test]
    fn ptype_mirror_symmetry() {
        let p = CompactModel::ptype_reference();
        let n = CompactModel {
            device_type: DeviceType::NType,
            vth: -p.vth,
            ..p.clone()
        };
        let (vgs, vds) = (-2.0, -1.0);
        assert!((p.drain_current(vgs, vds) + n.drain_current(-vgs, -vds)).abs() < 1e-18);
        assert!(p.drain_current(-2.0, -1.0) < 0.0);
    }

    #[test]
    fn on_off_ratio_is_large() {
        let m = CompactModel::ntype_reference();
        let ratio = m.on_current(2.0) / m.off_current(2.0).max(1e-30);
        assert!(ratio > 1e4, "on/off ratio {ratio:.3e}");
    }

    #[test]
    fn current_scales_with_geometry() {
        let m = CompactModel::ntype_reference();
        let wide = m.resized(m.width * 2.0, m.length);
        let long = m.resized(m.width, m.length * 2.0);
        let base = m.drain_current(2.0, 1.0);
        assert!((wide.drain_current(2.0, 1.0) / base - 2.0).abs() < 1e-9);
        assert!((long.drain_current(2.0, 1.0) / base - 0.5).abs() < 1e-9);
    }

    #[test]
    fn derivative_helpers_match_finite_differences() {
        let m = CompactModel::ntype_reference();
        // gm/gds use 1 mV central differences internally; compare with an
        // independent 0.1 mV step.
        let h = 1e-4;
        let gm_ref = (m.drain_current(1.5 + h, 1.0) - m.drain_current(1.5 - h, 1.0)) / (2.0 * h);
        assert!((m.gm(1.5, 1.0) - gm_ref).abs() / gm_ref.abs() < 1e-3);
        let gds_ref = (m.drain_current(1.5, 1.0 + h) - m.drain_current(1.5, 1.0 - h)) / (2.0 * h);
        assert!((m.gds(1.5, 1.0) - gds_ref).abs() / gds_ref.abs().max(1e-12) < 1e-2);
    }

    #[test]
    fn linearize_current_is_bitwise_drain_current() {
        for m in [
            CompactModel::ntype_reference(),
            CompactModel::ptype_reference(),
        ] {
            for k in 0..400 {
                // Sweep all four quadrants, through threshold and V_DS = 0.
                let vgs = -2.0 + 0.23 * (k % 20) as f64;
                let vds = -2.0 + 0.21 * (k / 20) as f64;
                let lin = m.linearize(vgs, vds);
                let id = m.drain_current(vgs, vds);
                assert_eq!(
                    lin.id.to_bits(),
                    id.to_bits(),
                    "{:?} at ({vgs}, {vds}): {} vs {id}",
                    m.device_type(),
                    lin.id
                );
            }
        }
    }

    #[test]
    fn linearize_derivatives_match_finite_differences() {
        let h = 1e-5;
        for m in [
            CompactModel::ntype_reference(),
            CompactModel::ptype_reference(),
        ] {
            for k in 0..100 {
                let vgs = -1.8 + 0.4 * (k % 10) as f64;
                let vds = -1.9 + 0.42 * (k / 10) as f64;
                let lin = m.linearize(vgs, vds);
                let gm_ref =
                    (m.drain_current(vgs + h, vds) - m.drain_current(vgs - h, vds)) / (2.0 * h);
                let gds_ref =
                    (m.drain_current(vgs, vds + h) - m.drain_current(vgs, vds - h)) / (2.0 * h);
                let scale = gm_ref.abs().max(gds_ref.abs()).max(1e-9);
                assert!(
                    (lin.gm - gm_ref).abs() <= 1e-4 * scale,
                    "{:?} gm at ({vgs}, {vds}): {} vs {gm_ref}",
                    m.device_type(),
                    lin.gm
                );
                assert!(
                    (lin.gds - gds_ref).abs() <= 1e-4 * scale,
                    "{:?} gds at ({vgs}, {vds}): {} vs {gds_ref}",
                    m.device_type(),
                    lin.gds
                );
            }
        }
    }

    #[test]
    fn linearize_is_finite_at_extreme_bias() {
        let m = CompactModel::ntype_reference();
        // Deep subthreshold, huge drive, and a V_DS ≫ V_ov ratio that
        // overflows u^m inside the smooth-min partials.
        for (vgs, vds) in [(-40.0, 50.0), (40.0, 50.0), (-300.0, 200.0), (0.599, 1e6)] {
            let lin = m.linearize(vgs, vds);
            assert!(
                lin.id.is_finite() && lin.gm.is_finite() && lin.gds.is_finite(),
                "non-finite linearization at ({vgs}, {vds}): {lin:?}"
            );
            assert!(lin.gm >= 0.0, "gm must be non-negative, got {}", lin.gm);
        }
    }

    #[test]
    fn gate_capacitance_formula() {
        let m = CompactModel::ntype_reference();
        let c = m.gate_capacitance();
        assert!((c - 1.0e-3 * 10.0e-6 * 5.0e-6).abs() < 1e-24);
    }
}
