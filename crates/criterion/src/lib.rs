//! Offline stand-in for the subset of the `criterion` API this
//! workspace's benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, finish}`,
//! `Bencher::iter` and the `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are deliberately simple — per-sample wall-clock timing with
//! min/mean/max reporting — because the workspace's own `stco-obs` crate
//! is the canonical profiling substrate; these benches exist for quick
//! relative comparisons.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value wrapper.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let max = b.samples.iter().max().copied().unwrap_or_default();
        println!(
            "  {id:<40} {:>12} (min {:>12}, max {:>12}, {} samples)",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            n
        );
        self
    }

    /// Ends the group (printing is already done per benchmark).
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` once unmeasured (warm-up), then `sample_size`
    /// measured times.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        std_black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std_black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.0} ns", s * 1e9)
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_nanos(50)), "50 ns");
    }
}
