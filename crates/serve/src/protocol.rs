//! The wire protocol: length-prefixed JSON frames.
//!
//! Every frame is `u32` (big-endian) byte length followed by one UTF-8
//! JSON document rendered/parsed by [`stco_obs::json`]. Floats travel
//! as shortest-roundtrip decimal, which Rust renders and re-parses to
//! the same bits (`-0.0` renders as `0`, the one accepted exception —
//! see `stco_obs::json`).
//!
//! Requests:
//!
//! ```text
//! {"op":"ping"}
//! {"op":"load","kind":"cell-model","key":"00ab…"}        // key: 16-hex
//! {"op":"stats"}
//! {"op":"metrics"}
//! {"op":"drain","shard":0}
//! {"op":"resume","shard":0}
//! {"op":"shutdown"}
//! {"op":"predict","model":"cell-model:00ab…","deadline_ms":250,
//!  "input":{"task":"cell","metrics":[0,3],"graph":{…}}}
//! {"op":"sweep","action":"lease","worker":"w0","max":4}
//! {"op":"sweep","action":"complete","scenario":"00ab…","values":[…]}
//! {"op":"sweep","action":"status"}
//! ```
//!
//! Replies mirror them: `{"ok":"pong"}`,
//! `{"ok":"loaded","model":id,"shard":0}`, `{"ok":"stats",…}`,
//! `{"ok":"metrics",…}`, `{"ok":"drained","shard":0}`,
//! `{"ok":"resumed","shard":0}`, `{"ok":"shutting-down"}`,
//! `{"ok":"values","values":[…]}`,
//! `{"ok":"sweep-leased","scenarios":[{"index":3,"id":"00ab…"}]}`,
//! `{"ok":"sweep-completed","accepted":true}`,
//! `{"ok":"sweep-status","total":16,"pending":9,"leased":2,"completed":5}`
//! or `{"err":{"code":"queue-full","message":"…"}}`.
//!
//! The `sweep` op fronts an attached distributed-sweep queue
//! (DESIGN.md §17): workers lease pending scenarios, evaluate them
//! locally against their own copy of the spec, and report objective
//! values back; the server journals each completion through the
//! backend. With no queue attached the op answers `bad-input`.
//!
//! `stats` carries the full [`ServerStats`] admin view: queue depth
//! (total and per shard), loaded models, request/reply/error/deadline/
//! shed counters and the slow-request exemplar log with per-phase
//! breakdowns. `metrics` carries the entire metrics registry twice
//! over: a structured JSON snapshot
//! (`stco_obs::exposition::snapshot_json`) under `"snapshot"` and a
//! Prometheus-style text rendering under `"text"`.
//!
//! Two frame readers share the format: the blocking [`read_frame`] for
//! simple clients, and the incremental [`FrameDecoder`] state machine
//! the nonblocking multiplexer drives — it accepts input split at *any*
//! byte boundary (mid-prefix, mid-body) and yields whole documents as
//! they complete.

use std::io::{Read, Write};

use stco_cells::encode::{CellGraph, CellNodeKind};
use stco_nn::gnn::GraphData;
use stco_numerics::Matrix;
use stco_obs::json::JsonValue;
use stco_store::ArtifactKey;

use crate::service::{LeasedScenario, PredictInput, SlowRequest, SweepQueueStatus};
use crate::{Result, ServeError};

/// Upper bound on a single frame (64 MiB) — a corrupt length prefix
/// must not trigger a giant allocation.
pub const MAX_FRAME: usize = 64 * 1024 * 1024;

fn proto(context: impl Into<String>) -> ServeError {
    ServeError::Protocol {
        context: context.into(),
    }
}

/// Encodes one frame — length prefix plus rendered body — into a byte
/// vector (the unit the multiplexer's out-buffers queue).
///
/// # Errors
///
/// [`ServeError::Protocol`] on oversized documents.
pub fn encode_frame(doc: &JsonValue) -> Result<Vec<u8>> {
    let body = doc.render();
    let len = u32::try_from(body.len())
        .ok()
        .filter(|l| *l as usize <= MAX_FRAME);
    let len =
        len.ok_or_else(|| proto(format!("frame of {} bytes exceeds MAX_FRAME", body.len())))?;
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(body.as_bytes());
    Ok(frame)
}

/// Writes one frame.
///
/// # Errors
///
/// [`ServeError::Protocol`] on oversized documents, [`ServeError::Io`]
/// on socket failures.
pub fn write_frame<W: Write>(w: &mut W, doc: &JsonValue) -> Result<()> {
    let frame = encode_frame(doc)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Incremental frame decoder: the per-connection state machine the
/// nonblocking multiplexer drives. Feed it whatever bytes the socket
/// yields — split anywhere, including mid-prefix — and it emits decoded
/// documents as frames complete.
///
/// Malformed frame *bodies* (non-UTF-8, non-JSON, empty) are recoverable
/// because the stream stays framed: they surface as `Err` items in the
/// output so the caller can answer with a typed error and keep the
/// connection. An oversized length prefix is **fatal** — the stream can
/// no longer be trusted to be framed — and fails the whole `push`.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    prefix: [u8; 4],
    prefix_filled: usize,
    body: Vec<u8>,
    /// Body length of the frame in flight (`None` while reading the
    /// prefix).
    body_target: Option<usize>,
}

impl FrameDecoder {
    /// A decoder at a frame boundary.
    #[must_use]
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// True when some bytes of an unfinished frame have been consumed.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.prefix_filled > 0 || self.body_target.is_some()
    }

    /// Consumes `bytes`, appending one entry to `out` per completed
    /// frame: `Ok(doc)` for a well-formed document, `Err` for a
    /// recoverable bad body (see type docs).
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] when a length prefix exceeds
    /// [`MAX_FRAME`] — the stream is desynchronized and the connection
    /// must close after an error reply.
    pub fn push(&mut self, mut bytes: &[u8], out: &mut Vec<Result<JsonValue>>) -> Result<()> {
        while !bytes.is_empty() {
            match self.body_target {
                None => {
                    let take = (4 - self.prefix_filled).min(bytes.len());
                    self.prefix[self.prefix_filled..self.prefix_filled + take]
                        .copy_from_slice(&bytes[..take]);
                    self.prefix_filled += take;
                    bytes = &bytes[take..];
                    if self.prefix_filled == 4 {
                        let len = u32::from_be_bytes(self.prefix) as usize;
                        if len > MAX_FRAME {
                            return Err(proto(format!("frame length {len} exceeds MAX_FRAME")));
                        }
                        // Cap the up-front reservation: a hostile prefix
                        // under MAX_FRAME must not allocate 64 MiB before
                        // any body byte arrives.
                        self.body = Vec::with_capacity(len.min(64 * 1024));
                        self.body_target = Some(len);
                        self.prefix_filled = 0;
                    }
                }
                Some(target) => {
                    let take = (target - self.body.len()).min(bytes.len());
                    self.body.extend_from_slice(&bytes[..take]);
                    bytes = &bytes[take..];
                    if self.body.len() == target {
                        let body = std::mem::take(&mut self.body);
                        self.body_target = None;
                        out.push(decode_body(body));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Decodes one complete frame body (empty bodies are malformed — every
/// request/reply is a JSON object).
fn decode_body(body: Vec<u8>) -> Result<JsonValue> {
    if body.is_empty() {
        return Err(proto("empty frame body"));
    }
    let text = String::from_utf8(body).map_err(|_| proto("frame body is not UTF-8"))?;
    JsonValue::parse(&text).map_err(|e| proto(format!("frame is not JSON: {e}")))
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
    )
}

/// Fills `buf` fully, retrying read timeouts — once a frame has
/// started, a timeout must not drop the bytes already consumed.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8], context: &str) -> Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Err(proto(format!("connection closed mid {context}"))),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {}
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    Ok(())
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
///
/// A read timeout *before any byte of a frame* surfaces as
/// [`ServeError::Io`] (`WouldBlock`/`TimedOut`) so idle loops can poll
/// a stop flag; timeouts mid-frame are retried internally.
///
/// # Errors
///
/// [`ServeError::Protocol`] on oversized/truncated/non-JSON frames,
/// [`ServeError::Io`] on socket failures.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<JsonValue>> {
    let mut prefix = [0u8; 4];
    // First byte: EOF and timeouts surface to the caller.
    let first = loop {
        match r.read(&mut prefix[..1]) {
            Ok(0) => return Ok(None),
            Ok(_) => break prefix[0],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServeError::Io(e)),
        }
    };
    prefix[0] = first;
    read_full(r, &mut prefix[1..], "length prefix")?;
    let len = u32::from_be_bytes(prefix) as usize;
    if len > MAX_FRAME {
        return Err(proto(format!("frame length {len} exceeds MAX_FRAME")));
    }
    let mut body = vec![0u8; len];
    read_full(r, &mut body, "frame body")?;
    let text = String::from_utf8(body).map_err(|_| proto("frame body is not UTF-8"))?;
    JsonValue::parse(&text)
        .map(Some)
        .map_err(|e| proto(format!("frame is not JSON: {e}")))
}

/// A decoded client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Load an artifact from the registry into the warm cache.
    Load {
        /// Artifact kind.
        kind: String,
        /// Artifact key.
        key: ArtifactKey,
    },
    /// Queue/model statistics.
    Stats,
    /// Full metrics registry snapshot (JSON + Prometheus text).
    Metrics,
    /// Drain one shard for a hot restart (new work typed-rejected,
    /// in-flight work completes; the reply waits for quiescence).
    Drain {
        /// Shard index.
        shard: usize,
    },
    /// Reopen a drained shard.
    Resume {
        /// Shard index.
        shard: usize,
    },
    /// Graceful server shutdown.
    Shutdown,
    /// One prediction.
    Predict {
        /// Model id (`kind:hex`).
        model: String,
        /// The payload.
        input: PredictInput,
        /// Optional per-request deadline, milliseconds.
        deadline_ms: Option<u64>,
    },
    /// Distributed-sweep queue operation (lease / complete / status).
    Sweep(SweepAction),
}

/// The sub-operations of the `sweep` op.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAction {
    /// Lease up to `max` pending scenarios to a named worker.
    Lease {
        /// Worker identity (for lease bookkeeping and reclaim).
        worker: String,
        /// Maximum scenarios to lease in this call.
        max: usize,
    },
    /// Report one completed scenario.
    Complete {
        /// Scenario content address, 16-hex.
        scenario: String,
        /// Objective values, `[delay, power, area, cost]`.
        values: Vec<f64>,
    },
    /// Progress snapshot.
    Status,
}

fn num(v: usize) -> JsonValue {
    JsonValue::Num(v as f64)
}

fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn shard_field(doc: &JsonValue) -> Result<usize> {
    doc.get("shard")
        .and_then(JsonValue::as_u64)
        .map(|s| s as usize)
        .ok_or_else(|| proto("missing/non-integer field \"shard\""))
}

fn str_field(doc: &JsonValue, key: &str) -> Result<String> {
    doc.get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| proto(format!("missing/non-string field {key:?}")))
}

fn f64_vec(doc: &JsonValue, key: &str) -> Result<Vec<f64>> {
    let JsonValue::Arr(items) = doc
        .get(key)
        .ok_or_else(|| proto(format!("missing array field {key:?}")))?
    else {
        return Err(proto(format!("field {key:?} is not an array")));
    };
    items
        .iter()
        .map(|v| {
            v.as_f64()
                .ok_or_else(|| proto(format!("non-number in {key:?}")))
        })
        .collect()
}

fn usize_vec(doc: &JsonValue, key: &str) -> Result<Vec<usize>> {
    let JsonValue::Arr(items) = doc
        .get(key)
        .ok_or_else(|| proto(format!("missing array field {key:?}")))?
    else {
        return Err(proto(format!("field {key:?} is not an array")));
    };
    items
        .iter()
        .map(|v| {
            v.as_u64()
                .map(|u| u as usize)
                .ok_or_else(|| proto(format!("non-index in {key:?}")))
        })
        .collect()
}

fn edges_to_json(edges: &[(usize, usize)]) -> JsonValue {
    JsonValue::Arr(
        edges
            .iter()
            .map(|(s, d)| JsonValue::Arr(vec![num(*s), num(*d)]))
            .collect(),
    )
}

fn edges_from_json(doc: &JsonValue, key: &str) -> Result<Vec<(usize, usize)>> {
    let JsonValue::Arr(items) = doc
        .get(key)
        .ok_or_else(|| proto(format!("missing array field {key:?}")))?
    else {
        return Err(proto(format!("field {key:?} is not an array")));
    };
    items
        .iter()
        .map(|pair| {
            let JsonValue::Arr(sd) = pair else {
                return Err(proto("edge is not a 2-array"));
            };
            match sd.as_slice() {
                [s, d] => {
                    let s = s
                        .as_u64()
                        .ok_or_else(|| proto("edge src is not an index"))?;
                    let d = d
                        .as_u64()
                        .ok_or_else(|| proto("edge dst is not an index"))?;
                    Ok((s as usize, d as usize))
                }
                _ => Err(proto("edge is not a 2-array")),
            }
        })
        .collect()
}

fn matrix_to_json(m: &Matrix) -> JsonValue {
    obj(vec![
        ("rows", num(m.rows())),
        ("cols", num(m.cols())),
        (
            "data",
            JsonValue::Arr(m.as_slice().iter().map(|v| JsonValue::Num(*v)).collect()),
        ),
    ])
}

fn matrix_from_json(doc: &JsonValue, key: &str) -> Result<Matrix> {
    let m = doc
        .get(key)
        .ok_or_else(|| proto(format!("missing matrix field {key:?}")))?;
    let rows = m
        .get("rows")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| proto("matrix missing rows"))? as usize;
    let cols = m
        .get("cols")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| proto("matrix missing cols"))? as usize;
    let data = f64_vec(m, "data")?;
    if rows.checked_mul(cols) != Some(data.len()) {
        return Err(proto(format!(
            "matrix {key:?} claims {rows}×{cols} but carries {} values",
            data.len()
        )));
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

const KIND_TAGS: [(CellNodeKind, u64); 6] = [
    (CellNodeKind::Input, 0),
    (CellNodeKind::Output, 1),
    (CellNodeKind::NFet, 2),
    (CellNodeKind::PFet, 3),
    (CellNodeKind::Vdd, 4),
    (CellNodeKind::Vss, 5),
];

fn kind_to_tag(kind: CellNodeKind) -> u64 {
    KIND_TAGS
        .iter()
        .find(|(k, _)| *k == kind)
        .map_or(0, |(_, t)| *t)
}

fn kind_from_tag(tag: u64) -> Result<CellNodeKind> {
    KIND_TAGS
        .iter()
        .find(|(_, t)| *t == tag)
        .map(|(k, _)| *k)
        .ok_or_else(|| proto(format!("unknown cell node kind tag {tag}")))
}

fn cell_graph_to_json(graph: &CellGraph) -> JsonValue {
    obj(vec![
        (
            "features",
            JsonValue::Arr(graph.features.iter().map(|v| JsonValue::Num(*v)).collect()),
        ),
        (
            "kinds",
            JsonValue::Arr(
                graph
                    .kinds
                    .iter()
                    .map(|k| JsonValue::Num(kind_to_tag(*k) as f64))
                    .collect(),
            ),
        ),
        (
            "labels",
            JsonValue::Arr(
                graph
                    .labels
                    .iter()
                    .map(|l| JsonValue::Str(l.clone()))
                    .collect(),
            ),
        ),
        ("edges", edges_to_json(&graph.edges)),
    ])
}

fn cell_graph_from_json(doc: &JsonValue) -> Result<CellGraph> {
    let features = f64_vec(doc, "features")?;
    let kinds = usize_vec(doc, "kinds")?
        .into_iter()
        .map(|t| kind_from_tag(t as u64))
        .collect::<Result<Vec<CellNodeKind>>>()?;
    let JsonValue::Arr(label_items) = doc
        .get("labels")
        .ok_or_else(|| proto("missing array field \"labels\""))?
    else {
        return Err(proto("field \"labels\" is not an array"));
    };
    let labels = label_items
        .iter()
        .map(|l| {
            l.as_str()
                .map(str::to_string)
                .ok_or_else(|| proto("non-string label"))
        })
        .collect::<Result<Vec<String>>>()?;
    let edges = edges_from_json(doc, "edges")?;
    Ok(CellGraph {
        features,
        kinds,
        labels,
        edges,
    })
}

fn device_graph_to_json(graph: &GraphData) -> JsonValue {
    obj(vec![
        ("node_features", matrix_to_json(&graph.node_features)),
        ("edges", edges_to_json(&graph.edges)),
        ("edge_features", matrix_to_json(&graph.edge_features)),
    ])
}

fn device_graph_from_json(doc: &JsonValue) -> Result<GraphData> {
    Ok(GraphData {
        node_features: matrix_from_json(doc, "node_features")?,
        edges: edges_from_json(doc, "edges")?,
        edge_features: matrix_from_json(doc, "edge_features")?,
    })
}

/// Encodes a predict input as its wire JSON.
#[must_use]
pub fn input_to_json(input: &PredictInput) -> JsonValue {
    match input {
        PredictInput::Cell { graph, metrics } => obj(vec![
            ("task", JsonValue::Str("cell".to_string())),
            (
                "metrics",
                JsonValue::Arr(metrics.iter().map(|m| num(*m)).collect()),
            ),
            ("graph", cell_graph_to_json(graph)),
        ]),
        PredictInput::Poisson { graph } => obj(vec![
            ("task", JsonValue::Str("poisson".to_string())),
            ("graph", device_graph_to_json(graph)),
        ]),
        PredictInput::Iv { graph } => obj(vec![
            ("task", JsonValue::Str("iv".to_string())),
            ("graph", device_graph_to_json(graph)),
        ]),
    }
}

/// Decodes a predict input from its wire JSON.
///
/// # Errors
///
/// [`ServeError::Protocol`] on unknown tasks or malformed payloads.
pub fn input_from_json(doc: &JsonValue) -> Result<PredictInput> {
    let task = str_field(doc, "task")?;
    let graph = doc
        .get("graph")
        .ok_or_else(|| proto("missing field \"graph\""))?;
    match task.as_str() {
        "cell" => Ok(PredictInput::Cell {
            graph: cell_graph_from_json(graph)?,
            metrics: usize_vec(doc, "metrics")?,
        }),
        "poisson" => Ok(PredictInput::Poisson {
            graph: device_graph_from_json(graph)?,
        }),
        "iv" => Ok(PredictInput::Iv {
            graph: device_graph_from_json(graph)?,
        }),
        other => Err(proto(format!("unknown task {other:?}"))),
    }
}

impl Request {
    /// Encodes the request as its wire JSON.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        match self {
            Request::Ping => obj(vec![("op", JsonValue::Str("ping".to_string()))]),
            Request::Load { kind, key } => obj(vec![
                ("op", JsonValue::Str("load".to_string())),
                ("kind", JsonValue::Str(kind.clone())),
                ("key", JsonValue::Str(key.to_hex())),
            ]),
            Request::Stats => obj(vec![("op", JsonValue::Str("stats".to_string()))]),
            Request::Metrics => obj(vec![("op", JsonValue::Str("metrics".to_string()))]),
            Request::Drain { shard } => obj(vec![
                ("op", JsonValue::Str("drain".to_string())),
                ("shard", num(*shard)),
            ]),
            Request::Resume { shard } => obj(vec![
                ("op", JsonValue::Str("resume".to_string())),
                ("shard", num(*shard)),
            ]),
            Request::Shutdown => obj(vec![("op", JsonValue::Str("shutdown".to_string()))]),
            Request::Predict {
                model,
                input,
                deadline_ms,
            } => {
                let mut pairs = vec![
                    ("op", JsonValue::Str("predict".to_string())),
                    ("model", JsonValue::Str(model.clone())),
                    ("input", input_to_json(input)),
                ];
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms", JsonValue::Num(*ms as f64)));
                }
                obj(pairs)
            }
            Request::Sweep(action) => match action {
                SweepAction::Lease { worker, max } => obj(vec![
                    ("op", JsonValue::Str("sweep".to_string())),
                    ("action", JsonValue::Str("lease".to_string())),
                    ("worker", JsonValue::Str(worker.clone())),
                    ("max", num(*max)),
                ]),
                SweepAction::Complete { scenario, values } => obj(vec![
                    ("op", JsonValue::Str("sweep".to_string())),
                    ("action", JsonValue::Str("complete".to_string())),
                    ("scenario", JsonValue::Str(scenario.clone())),
                    (
                        "values",
                        JsonValue::Arr(values.iter().map(|v| JsonValue::Num(*v)).collect()),
                    ),
                ]),
                SweepAction::Status => obj(vec![
                    ("op", JsonValue::Str("sweep".to_string())),
                    ("action", JsonValue::Str("status".to_string())),
                ]),
            },
        }
    }

    /// Decodes a request from its wire JSON.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on unknown ops or malformed fields.
    pub fn from_json(doc: &JsonValue) -> Result<Request> {
        let op = str_field(doc, "op")?;
        match op.as_str() {
            "ping" => Ok(Request::Ping),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "drain" => Ok(Request::Drain {
                shard: shard_field(doc)?,
            }),
            "resume" => Ok(Request::Resume {
                shard: shard_field(doc)?,
            }),
            "shutdown" => Ok(Request::Shutdown),
            "load" => {
                let kind = str_field(doc, "kind")?;
                let hex = str_field(doc, "key")?;
                let key = u64::from_str_radix(&hex, 16)
                    .map_err(|_| proto(format!("key {hex:?} is not a hex u64")))?;
                Ok(Request::Load {
                    kind,
                    key: ArtifactKey::from_value(key),
                })
            }
            "predict" => {
                let model = str_field(doc, "model")?;
                let input = input_from_json(
                    doc.get("input")
                        .ok_or_else(|| proto("missing field \"input\""))?,
                )?;
                let deadline_ms = match doc.get("deadline_ms") {
                    None | Some(JsonValue::Null) => None,
                    Some(v) => Some(
                        v.as_u64()
                            .ok_or_else(|| proto("deadline_ms is not an integer"))?,
                    ),
                };
                Ok(Request::Predict {
                    model,
                    input,
                    deadline_ms,
                })
            }
            "sweep" => {
                let action = str_field(doc, "action")?;
                match action.as_str() {
                    "lease" => Ok(Request::Sweep(SweepAction::Lease {
                        worker: str_field(doc, "worker")?,
                        max: doc
                            .get("max")
                            .and_then(JsonValue::as_u64)
                            .ok_or_else(|| proto("missing/non-integer field \"max\""))?
                            as usize,
                    })),
                    "complete" => Ok(Request::Sweep(SweepAction::Complete {
                        scenario: str_field(doc, "scenario")?,
                        values: f64_vec(doc, "values")?,
                    })),
                    "status" => Ok(Request::Sweep(SweepAction::Status)),
                    other => Err(proto(format!("unknown sweep action {other:?}"))),
                }
            }
            other => Err(proto(format!("unknown op {other:?}"))),
        }
    }
}

fn slow_to_json(r: &SlowRequest) -> JsonValue {
    obj(vec![
        ("trace_id", JsonValue::Num(r.trace_id as f64)),
        ("batch_size", num(r.batch_size)),
        ("queue_seconds", JsonValue::Num(r.queue_seconds)),
        ("assembly_seconds", JsonValue::Num(r.assembly_seconds)),
        ("forward_seconds", JsonValue::Num(r.forward_seconds)),
        ("reply_seconds", JsonValue::Num(r.reply_seconds)),
        ("total_seconds", JsonValue::Num(r.total_seconds)),
    ])
}

fn slow_from_json(doc: &JsonValue) -> Result<SlowRequest> {
    let field = |key: &str| -> Result<f64> {
        doc.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| proto(format!("slow request missing {key}")))
    };
    Ok(SlowRequest {
        trace_id: doc
            .get("trace_id")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("slow request missing trace_id"))?,
        batch_size: doc
            .get("batch_size")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| proto("slow request missing batch_size"))? as usize,
        queue_seconds: field("queue_seconds")?,
        assembly_seconds: field("assembly_seconds")?,
        forward_seconds: field("forward_seconds")?,
        reply_seconds: field("reply_seconds")?,
        total_seconds: field("total_seconds")?,
    })
}

/// The admin view the `stats` op returns: queue/model state, the
/// service's traffic counters and the slow-request exemplar log.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServerStats {
    /// Requests currently queued (total across shards).
    pub queue_depth: usize,
    /// Worker shard count.
    pub shards: usize,
    /// Pending-queue depth of each shard, indexed by shard.
    pub shard_queue_depths: Vec<usize>,
    /// Requests rejected `overloaded` by the shedding watermarks.
    pub shed: u64,
    /// Loaded model ids, sorted.
    pub loaded: Vec<String>,
    /// Requests submitted (accepted or not).
    pub requests: u64,
    /// Successful replies.
    pub replies: u64,
    /// Errored submissions (rejections and failed executions).
    pub errors: u64,
    /// Requests answered `deadline-exceeded` without executing.
    pub deadline_exceeded: u64,
    /// Worst-latency exemplars, most severe first, with per-phase
    /// breakdowns.
    pub slow_requests: Vec<SlowRequest>,
}

/// A decoded server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Ping acknowledged.
    Pong,
    /// Artifact loaded into the warm cache.
    Loaded {
        /// Model id it is now served under.
        model: String,
        /// The shard that owns it (consistent-hash home).
        shard: usize,
    },
    /// Queue/model statistics and the slow-request log.
    Stats(ServerStats),
    /// Shard drained to quiescence.
    Drained {
        /// Shard index.
        shard: usize,
    },
    /// Shard reopened for traffic.
    Resumed {
        /// Shard index.
        shard: usize,
    },
    /// Full metrics registry exposition.
    Metrics {
        /// Structured snapshot (`stco_obs::exposition::snapshot_json`).
        snapshot: JsonValue,
        /// Prometheus-style text rendering.
        text: String,
    },
    /// Shutdown acknowledged; the server drains and exits.
    ShuttingDown,
    /// Prediction values.
    Values(Vec<f64>),
    /// Scenarios leased to the requesting sweep worker (empty when the
    /// queue has nothing pending).
    SweepLeased {
        /// The leased scenarios.
        scenarios: Vec<LeasedScenario>,
    },
    /// Sweep completion acknowledged.
    SweepCompleted {
        /// False when the scenario was already complete (idempotent
        /// re-delivery).
        accepted: bool,
    },
    /// Sweep progress snapshot.
    SweepStatus(SweepQueueStatus),
    /// Typed error.
    Error {
        /// Stable code (see [`ServeError::code`]).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl Reply {
    /// Encodes the reply as its wire JSON.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        match self {
            Reply::Pong => obj(vec![("ok", JsonValue::Str("pong".to_string()))]),
            Reply::Loaded { model, shard } => obj(vec![
                ("ok", JsonValue::Str("loaded".to_string())),
                ("model", JsonValue::Str(model.clone())),
                ("shard", num(*shard)),
            ]),
            Reply::Drained { shard } => obj(vec![
                ("ok", JsonValue::Str("drained".to_string())),
                ("shard", num(*shard)),
            ]),
            Reply::Resumed { shard } => obj(vec![
                ("ok", JsonValue::Str("resumed".to_string())),
                ("shard", num(*shard)),
            ]),
            Reply::Stats(stats) => obj(vec![
                ("ok", JsonValue::Str("stats".to_string())),
                ("queue_depth", num(stats.queue_depth)),
                ("shards", num(stats.shards)),
                (
                    "shard_queue_depths",
                    JsonValue::Arr(stats.shard_queue_depths.iter().map(|d| num(*d)).collect()),
                ),
                ("shed", JsonValue::Num(stats.shed as f64)),
                (
                    "loaded",
                    JsonValue::Arr(
                        stats
                            .loaded
                            .iter()
                            .map(|m| JsonValue::Str(m.clone()))
                            .collect(),
                    ),
                ),
                ("requests", JsonValue::Num(stats.requests as f64)),
                ("replies", JsonValue::Num(stats.replies as f64)),
                ("errors", JsonValue::Num(stats.errors as f64)),
                (
                    "deadline_exceeded",
                    JsonValue::Num(stats.deadline_exceeded as f64),
                ),
                (
                    "slow_requests",
                    JsonValue::Arr(stats.slow_requests.iter().map(slow_to_json).collect()),
                ),
            ]),
            Reply::Metrics { snapshot, text } => obj(vec![
                ("ok", JsonValue::Str("metrics".to_string())),
                ("snapshot", snapshot.clone()),
                ("text", JsonValue::Str(text.clone())),
            ]),
            Reply::ShuttingDown => obj(vec![("ok", JsonValue::Str("shutting-down".to_string()))]),
            Reply::Values(values) => obj(vec![
                ("ok", JsonValue::Str("values".to_string())),
                (
                    "values",
                    JsonValue::Arr(values.iter().map(|v| JsonValue::Num(*v)).collect()),
                ),
            ]),
            Reply::SweepLeased { scenarios } => obj(vec![
                ("ok", JsonValue::Str("sweep-leased".to_string())),
                (
                    "scenarios",
                    JsonValue::Arr(
                        scenarios
                            .iter()
                            .map(|s| {
                                obj(vec![
                                    ("index", num(s.index)),
                                    ("id", JsonValue::Str(s.id.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
            Reply::SweepCompleted { accepted } => obj(vec![
                ("ok", JsonValue::Str("sweep-completed".to_string())),
                ("accepted", JsonValue::Bool(*accepted)),
            ]),
            Reply::SweepStatus(status) => obj(vec![
                ("ok", JsonValue::Str("sweep-status".to_string())),
                ("total", num(status.total)),
                ("pending", num(status.pending)),
                ("leased", num(status.leased)),
                ("completed", num(status.completed)),
            ]),
            Reply::Error { code, message } => obj(vec![(
                "err",
                obj(vec![
                    ("code", JsonValue::Str(code.clone())),
                    ("message", JsonValue::Str(message.clone())),
                ]),
            )]),
        }
    }

    /// Decodes a reply from its wire JSON.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] on malformed replies.
    pub fn from_json(doc: &JsonValue) -> Result<Reply> {
        if let Some(err) = doc.get("err") {
            return Ok(Reply::Error {
                code: str_field(err, "code")?,
                message: str_field(err, "message")?,
            });
        }
        let ok = str_field(doc, "ok")?;
        match ok.as_str() {
            "pong" => Ok(Reply::Pong),
            "loaded" => Ok(Reply::Loaded {
                model: str_field(doc, "model")?,
                shard: shard_field(doc).unwrap_or(0),
            }),
            "drained" => Ok(Reply::Drained {
                shard: shard_field(doc)?,
            }),
            "resumed" => Ok(Reply::Resumed {
                shard: shard_field(doc)?,
            }),
            "stats" => {
                let counter = |key: &str| -> Result<u64> {
                    doc.get(key)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| proto(format!("stats missing {key}")))
                };
                Ok(Reply::Stats(ServerStats {
                    queue_depth: counter("queue_depth")? as usize,
                    shards: counter("shards")? as usize,
                    shard_queue_depths: usize_vec(doc, "shard_queue_depths")?,
                    shed: counter("shed")?,
                    loaded: {
                        let JsonValue::Arr(items) = doc
                            .get("loaded")
                            .ok_or_else(|| proto("stats missing loaded"))?
                        else {
                            return Err(proto("stats loaded is not an array"));
                        };
                        items
                            .iter()
                            .map(|m| {
                                m.as_str()
                                    .map(str::to_string)
                                    .ok_or_else(|| proto("non-string model id"))
                            })
                            .collect::<Result<Vec<String>>>()?
                    },
                    requests: counter("requests")?,
                    replies: counter("replies")?,
                    errors: counter("errors")?,
                    deadline_exceeded: counter("deadline_exceeded")?,
                    slow_requests: {
                        let JsonValue::Arr(items) = doc
                            .get("slow_requests")
                            .ok_or_else(|| proto("stats missing slow_requests"))?
                        else {
                            return Err(proto("stats slow_requests is not an array"));
                        };
                        items
                            .iter()
                            .map(slow_from_json)
                            .collect::<Result<Vec<SlowRequest>>>()?
                    },
                }))
            }
            "metrics" => Ok(Reply::Metrics {
                snapshot: doc
                    .get("snapshot")
                    .cloned()
                    .ok_or_else(|| proto("metrics missing snapshot"))?,
                text: str_field(doc, "text")?,
            }),
            "shutting-down" => Ok(Reply::ShuttingDown),
            "values" => Ok(Reply::Values(f64_vec(doc, "values")?)),
            "sweep-leased" => {
                let JsonValue::Arr(items) = doc
                    .get("scenarios")
                    .ok_or_else(|| proto("sweep-leased missing scenarios"))?
                else {
                    return Err(proto("sweep-leased scenarios is not an array"));
                };
                let scenarios = items
                    .iter()
                    .map(|s| {
                        Ok(LeasedScenario {
                            index: s
                                .get("index")
                                .and_then(JsonValue::as_u64)
                                .ok_or_else(|| proto("leased scenario missing index"))?
                                as usize,
                            id: str_field(s, "id")?,
                        })
                    })
                    .collect::<Result<Vec<LeasedScenario>>>()?;
                Ok(Reply::SweepLeased { scenarios })
            }
            "sweep-completed" => match doc.get("accepted") {
                Some(JsonValue::Bool(accepted)) => Ok(Reply::SweepCompleted {
                    accepted: *accepted,
                }),
                _ => Err(proto("sweep-completed missing boolean accepted")),
            },
            "sweep-status" => {
                let field = |key: &str| -> Result<usize> {
                    doc.get(key)
                        .and_then(JsonValue::as_u64)
                        .map(|v| v as usize)
                        .ok_or_else(|| proto(format!("sweep-status missing {key}")))
                };
                Ok(Reply::SweepStatus(SweepQueueStatus {
                    total: field("total")?,
                    pending: field("pending")?,
                    leased: field("leased")?,
                    completed: field("completed")?,
                }))
            }
            other => Err(proto(format!("unknown reply tag {other:?}"))),
        }
    }

    /// The error reply for a serve-side failure.
    #[must_use]
    pub fn from_error(e: &ServeError) -> Reply {
        Reply::Error {
            code: e.code().to_string(),
            message: e.to_string(),
        }
    }
}
