//! A blocking TCP client for the serve protocol.

use std::io::{BufReader, BufWriter};
use std::net::TcpStream;

use stco_store::ArtifactKey;

use stco_obs::json::JsonValue;

use crate::protocol::{read_frame, write_frame, Reply, Request, ServerStats, SweepAction};
use crate::service::{LeasedScenario, PredictInput, SweepQueueStatus};
use crate::{Result, ServeError};

/// One connection to a running [`crate::TcpServer`].
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to `addr` (e.g. `"127.0.0.1:7878"`).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the connection fails.
    pub fn connect(addr: &str) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one request and reads its reply.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] / [`ServeError::Protocol`] on transport
    /// failures (a closed connection is a protocol error here — every
    /// request owes a reply).
    pub fn roundtrip(&mut self, request: &Request) -> Result<Reply> {
        write_frame(&mut self.writer, &request.to_json())?;
        match read_frame(&mut self.reader)? {
            Some(doc) => Reply::from_json(&doc),
            None => Err(ServeError::Protocol {
                context: "server closed the connection before replying".to_string(),
            }),
        }
    }

    fn expect_ok(reply: Reply) -> Result<Reply> {
        match reply {
            Reply::Error { code, message } => Err(ServeError::Remote { code, message }),
            other => Ok(other),
        }
    }

    /// Liveness check.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn ping(&mut self) -> Result<()> {
        match Self::expect_ok(self.roundtrip(&Request::Ping)?)? {
            Reply::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to load an artifact; returns the model id.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with the server's typed code on failure.
    pub fn load(&mut self, kind: &str, key: ArtifactKey) -> Result<String> {
        let _span = stco_obs::span!("serve.client_load");
        self.load_with_shard(kind, key).map(|(model, _shard)| model)
    }

    /// [`Client::load`], also returning the worker shard the model's
    /// content address routes to.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with the server's typed code on failure.
    pub fn load_with_shard(&mut self, kind: &str, key: ArtifactKey) -> Result<(String, usize)> {
        let _span = stco_obs::span!("serve.client_load");
        let request = Request::Load {
            kind: kind.to_string(),
            key,
        };
        match Self::expect_ok(self.roundtrip(&request)?)? {
            Reply::Loaded { model, shard } => Ok((model, shard)),
            other => Err(unexpected(&other)),
        }
    }

    /// Drains one worker shard for a hot restart: returns once the
    /// shard is quiescent. New work routed to it gets the typed
    /// `draining` reject until [`Client::resume`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] (`bad-input` for an out-of-range shard)
    /// or transport failures.
    pub fn drain(&mut self, shard: usize) -> Result<()> {
        match Self::expect_ok(self.roundtrip(&Request::Drain { shard })?)? {
            Reply::Drained { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Reopens a drained shard.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] (`bad-input` for an out-of-range shard)
    /// or transport failures.
    pub fn resume(&mut self, shard: usize) -> Result<()> {
        match Self::expect_ok(self.roundtrip(&Request::Resume { shard })?)? {
            Reply::Resumed { .. } => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// One prediction against a loaded model.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with the server's typed code
    /// (`queue-full`, `deadline-exceeded`, `bad-input`, …) on failure.
    pub fn predict(
        &mut self,
        model: &str,
        input: &PredictInput,
        deadline_ms: Option<u64>,
    ) -> Result<Vec<f64>> {
        let request = Request::Predict {
            model: model.to_string(),
            input: input.clone(),
            deadline_ms,
        };
        match Self::expect_ok(self.roundtrip(&request)?)? {
            Reply::Values(values) => Ok(values),
            other => Err(unexpected(&other)),
        }
    }

    /// Server status: queue depth, loaded models, request/reply/error
    /// counters, and the slow-request log.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn stats(&mut self) -> Result<ServerStats> {
        match Self::expect_ok(self.roundtrip(&Request::Stats)?)? {
            Reply::Stats(stats) => Ok(stats),
            other => Err(unexpected(&other)),
        }
    }

    /// Full metrics exposition: the registry snapshot as JSON plus the
    /// Prometheus-style text rendering.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn metrics(&mut self) -> Result<(JsonValue, String)> {
        match Self::expect_ok(self.roundtrip(&Request::Metrics)?)? {
            Reply::Metrics { snapshot, text } => Ok((snapshot, text)),
            other => Err(unexpected(&other)),
        }
    }

    /// Leases up to `max` pending sweep scenarios for `worker`. An
    /// empty vector means the queue has nothing pending (the worker's
    /// cue to stop polling).
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] (`bad-input` when no sweep is attached)
    /// or transport failures.
    pub fn sweep_lease(&mut self, worker: &str, max: usize) -> Result<Vec<LeasedScenario>> {
        let request = Request::Sweep(SweepAction::Lease {
            worker: worker.to_string(),
            max,
        });
        match Self::expect_ok(self.roundtrip(&request)?)? {
            Reply::SweepLeased { scenarios } => Ok(scenarios),
            other => Err(unexpected(&other)),
        }
    }

    /// Reports one completed sweep scenario by content-address hex with
    /// its `[delay, power, area, cost]` values. `Ok(false)` means the
    /// scenario was already complete (idempotent re-delivery).
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] (`bad-input` for unknown scenarios,
    /// `store` for journal failures) or transport failures.
    pub fn sweep_complete(&mut self, scenario: &str, values: &[f64]) -> Result<bool> {
        let request = Request::Sweep(SweepAction::Complete {
            scenario: scenario.to_string(),
            values: values.to_vec(),
        });
        match Self::expect_ok(self.roundtrip(&request)?)? {
            Reply::SweepCompleted { accepted } => Ok(accepted),
            other => Err(unexpected(&other)),
        }
    }

    /// Sweep progress snapshot.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] (`bad-input` when no sweep is attached)
    /// or transport failures.
    pub fn sweep_status(&mut self) -> Result<SweepQueueStatus> {
        match Self::expect_ok(self.roundtrip(&Request::Sweep(SweepAction::Status))?)? {
            Reply::SweepStatus(status) => Ok(status),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// Transport failures or an unexpected reply.
    pub fn shutdown(&mut self) -> Result<()> {
        match Self::expect_ok(self.roundtrip(&Request::Shutdown)?)? {
            Reply::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(reply: &Reply) -> ServeError {
    ServeError::Protocol {
        context: format!("unexpected reply {reply:?}"),
    }
}
