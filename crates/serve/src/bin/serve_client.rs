//! A command-line client for a running `stco-serve` — step 3 of the
//! serving quickstart.
//!
//! ```text
//! serve_client ADDR ping
//! serve_client ADDR stats
//! serve_client ADDR metrics
//! serve_client ADDR load KIND HEXKEY
//! serve_client ADDR predict-demo MODEL_ID
//! serve_client ADDR shutdown
//! ```
//!
//! `predict-demo` sends the demo Inv cell graph (the one
//! `train_and_export` trained on) and prints all nine predicted
//! metrics.

use stco_cells::library::CellKind;
use stco_serve::demo::demo_graph;
use stco_serve::service::PredictInput;
use stco_serve::Client;
use stco_store::ArtifactKey;
use stco_surrogate::cell_model::METRICS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, op) = match args.as_slice() {
        [addr, op, ..] => (addr.clone(), op.clone()),
        _ => {
            eprintln!(
                "usage: serve_client ADDR ping|stats|metrics|load|predict-demo|shutdown [...]"
            );
            std::process::exit(2);
        }
    };
    let mut client = Client::connect(&addr).expect("connect");
    match op.as_str() {
        "ping" => {
            client.ping().expect("ping");
            println!("pong");
        }
        "stats" => {
            let stats = client.stats().expect("stats");
            println!("queue depth: {}", stats.queue_depth);
            println!(
                "requests: {}  replies: {}  errors: {}  deadline-exceeded: {}",
                stats.requests, stats.replies, stats.errors, stats.deadline_exceeded
            );
            println!("loaded models ({}):", stats.loaded.len());
            for id in &stats.loaded {
                println!("  {id}");
            }
            if !stats.slow_requests.is_empty() {
                println!("slowest requests ({}):", stats.slow_requests.len());
                for slow in &stats.slow_requests {
                    println!(
                        "  trace {:>6}  total {:.6}s  queue {:.6}s  assembly {:.6}s  \
                         forward {:.6}s  reply {:.6}s  batch {}",
                        slow.trace_id,
                        slow.total_seconds,
                        slow.queue_seconds,
                        slow.assembly_seconds,
                        slow.forward_seconds,
                        slow.reply_seconds,
                        slow.batch_size
                    );
                }
            }
        }
        "metrics" => {
            let (_snapshot, text) = client.metrics().expect("metrics");
            print!("{text}");
        }
        "load" => {
            let [_, _, kind, hex] = args.as_slice() else {
                eprintln!("usage: serve_client ADDR load KIND HEXKEY");
                std::process::exit(2);
            };
            let key = u64::from_str_radix(hex, 16).expect("HEXKEY must be hex");
            let id = client
                .load(kind, ArtifactKey::from_value(key))
                .expect("load");
            println!("loaded {id}");
        }
        "predict-demo" => {
            let [_, _, model] = args.as_slice() else {
                eprintln!("usage: serve_client ADDR predict-demo MODEL_ID");
                std::process::exit(2);
            };
            let input = PredictInput::Cell {
                graph: demo_graph(CellKind::Inv),
                metrics: (0..METRICS.len()).collect(),
            };
            let values = client.predict(model, &input, Some(5_000)).expect("predict");
            for (name, value) in METRICS.iter().zip(&values) {
                println!("{name:<20} {value:>14.6e}");
            }
        }
        "shutdown" => {
            client.shutdown().expect("shutdown");
            println!("server shutting down");
        }
        other => {
            eprintln!("unknown op {other:?}");
            std::process::exit(2);
        }
    }
}
