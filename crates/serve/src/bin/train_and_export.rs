//! Trains the tiny demo cell model and exports it into the artifact
//! registry — step 1 of the serving quickstart.
//!
//! ```text
//! train_and_export
//! ```
//!
//! The registry directory comes from `$STCO_STORE_DIR` (default
//! `.stco-store`). Prints the artifact kind, key and model id to pass
//! to `stco-serve` / `serve_client`. Re-runs are cache hits: if the
//! artifact already exists the model is not retrained.

use stco_serve::demo::{demo_key, train_demo_model};
use stco_serve::service::ModelService;
use stco_store::Registry;
use stco_surrogate::cell_model::CellModel;

fn main() {
    let registry = Registry::open_default().expect("open artifact registry");
    let key = demo_key();
    let cached = registry
        .load(CellModel::ARTIFACT_KIND, key)
        .expect("read registry");
    let path = if cached.is_some() {
        println!("cache hit: demo model already exported, no training run");
        registry.path_for(CellModel::ARTIFACT_KIND, key)
    } else {
        let t0 = std::time::Instant::now();
        let model = train_demo_model().expect("train demo model");
        let path = registry
            .put(key, &model.to_artifact())
            .expect("write artifact");
        println!("trained demo model in {:.2?}", t0.elapsed());
        path
    };
    println!("artifact: {}", path.display());
    println!("kind:     {}", CellModel::ARTIFACT_KIND);
    println!("key:      {}", key.to_hex());
    println!(
        "model id: {}",
        ModelService::model_id(CellModel::ARTIFACT_KIND, key)
    );
    println!();
    println!("serve it:  cargo run -p stco-serve --bin stco-serve -- \\");
    println!(
        "             --load {}:{}",
        CellModel::ARTIFACT_KIND,
        key.to_hex()
    );
}
