//! Std-only readiness-loop connection multiplexer.
//!
//! The TCP front end runs a **small fixed pool of I/O event threads**
//! instead of one thread per connection. One blocking acceptor hands
//! each new socket — switched to nonblocking mode — to an I/O thread
//! round-robin; each I/O thread owns its connections outright and
//! sweeps them in a readiness loop:
//!
//! 1. **adopt** sockets the acceptor queued for it;
//! 2. **read** whatever bytes each socket has (up to a per-sweep cap),
//!    feeding them through the connection's [`FrameDecoder`] state
//!    machine — frames may arrive split at any byte boundary;
//! 3. **dispatch** each completed frame: cheap ops (ping, stats,
//!    metrics, load, resume) answer inline on the I/O thread; `predict`
//!    goes to the sharded [`ModelService`] via
//!    [`ModelService::submit_async`] so a slow forward pass never parks
//!    the event loop; `drain` blocks until quiescence, so it runs on a
//!    short-lived helper thread;
//! 4. **write** queued reply frames back, tolerating partial writes.
//!
//! Replies are sequenced: every frame gets a per-connection sequence
//! number at dispatch, completions land in an ordered ready-map, and
//! the write pump emits them strictly in request order — pipelined
//! clients see replies in the order they asked.
//!
//! There is no OS readiness facility in std, so the loop *polls*: a
//! sweep that makes no progress parks the thread on its
//! `Waker` (a condvar) for [`MuxConfig::poll_interval`], escalating
//! to a longer nap when the pool has been idle a while. Completions
//! and the acceptor wake it early, so reply latency does not eat the
//! poll interval.
//!
//! Shutdown: the stop flag halts reads; connections flush their
//! pending replies, close once no requests are outstanding (with a
//! force-close grace for clients that stopped reading), and the pool
//! exits. [`Multiplexer::stop`] then drains the service so every
//! accepted request was answered.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use stco_obs::json::JsonValue;

use crate::protocol::{encode_frame, FrameDecoder, Reply, Request, ServerStats, SweepAction};
use crate::service::ModelService;
use crate::{Result, ServeError};

/// Tuning knobs for the connection multiplexer.
#[derive(Debug, Clone, Copy)]
pub struct MuxConfig {
    /// I/O event threads. `0` picks `available_parallelism / 4`,
    /// clamped to `1..=4` — event threads only shuffle bytes; the
    /// stco-par pool does the math.
    pub io_threads: usize,
    /// Connection cap; sockets beyond it are dropped at accept (and
    /// counted in `serve.conn_rejected_total`).
    pub max_conns: usize,
    /// How long an idle I/O thread parks between readiness sweeps.
    pub poll_interval: Duration,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            io_threads: 0,
            max_conns: 4096,
            poll_interval: Duration::from_micros(200),
        }
    }
}

impl MuxConfig {
    fn resolved_io_threads(&self) -> usize {
        if self.io_threads > 0 {
            return self.io_threads.min(64);
        }
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        (cores / 4).clamp(1, 4)
    }
}

/// Grace between the stop request and force-closing connections that
/// still hold unflushed replies (a client that stopped reading).
const STOP_GRACE: Duration = Duration::from_secs(1);

/// Per-sweep read budget per connection: at most this many `read`
/// calls, so one firehose connection cannot starve its siblings.
const READS_PER_SWEEP: usize = 4;

/// Per-connection cap on dispatched-but-unanswered requests; reads
/// pause above it (pipelining backpressure).
const MAX_OUTSTANDING: usize = 1024;

/// Idle sweeps before the park timeout escalates from
/// [`MuxConfig::poll_interval`] to the long nap.
const IDLE_ESCALATE_SWEEPS: u32 = 64;

const LONG_NAP: Duration = Duration::from_millis(5);

/// Condvar-based wakeup latch: completions and the acceptor `wake` an
/// I/O thread out of its park early.
struct Waker {
    flag: Mutex<bool>,
    cond: Condvar,
}

impl Waker {
    fn new() -> Waker {
        Waker {
            flag: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    fn wake(&self) {
        let mut flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        *flag = true;
        drop(flag);
        self.cond.notify_all();
    }

    fn wait(&self, timeout: Duration) {
        let mut flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        if !*flag {
            let (next, _timed_out) = self
                .cond
                .wait_timeout(flag, timeout)
                .unwrap_or_else(|e| e.into_inner());
            flag = next;
        }
        *flag = false;
    }
}

/// Acceptor → I/O-thread handoff slot.
struct IoThread {
    incoming: Mutex<Vec<TcpStream>>,
    waker: Arc<Waker>,
}

struct MuxShared {
    service: Arc<ModelService>,
    addr: std::net::SocketAddr,
    config: MuxConfig,
    stop: AtomicBool,
    stop_at: Mutex<Option<Instant>>,
    conn_count: AtomicUsize,
    io: Vec<IoThread>,
}

/// Reply frames queued for one connection, keyed by request sequence.
struct OutBuf {
    /// Sequence number the wire buffer emits next.
    next_emit: u64,
    /// Encoded frames whose turn has not come yet.
    ready: BTreeMap<u64, Vec<u8>>,
    /// Bytes promoted for the socket, partially written.
    wire: Vec<u8>,
    written: usize,
}

/// The slice of connection state completion callbacks touch: the
/// ordered out-buffer and the outstanding-request count. Shared between
/// the owning I/O thread and in-flight completions via `Arc`.
struct ConnShared {
    out: Mutex<OutBuf>,
    outstanding: AtomicUsize,
}

/// Queues one reply frame at its sequence slot. An oversized reply
/// degrades to its own (small) error reply rather than desyncing the
/// stream.
fn push_ready(cs: &ConnShared, seq: u64, reply: &Reply) {
    let frame = encode_frame(&reply.to_json())
        .or_else(|e| encode_frame(&Reply::from_error(&e).to_json()))
        .unwrap_or_default();
    let mut out = cs.out.lock().unwrap_or_else(|e| e.into_inner());
    out.ready.insert(seq, frame);
}

/// One multiplexed connection (owned by exactly one I/O thread).
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    next_seq: u64,
    shared: Arc<ConnShared>,
    /// Peer sent EOF — no more requests, close once answered.
    read_closed: bool,
    /// Stop reading and close once flushed (shutdown reply sent, or the
    /// stream desynchronized).
    close_after: bool,
    /// Remove from the sweep set (socket dead or fully closed).
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            next_seq: 0,
            shared: Arc::new(ConnShared {
                out: Mutex::new(OutBuf {
                    next_emit: 0,
                    ready: BTreeMap::new(),
                    wire: Vec::new(),
                    written: 0,
                }),
                outstanding: AtomicUsize::new(0),
            }),
            read_closed: false,
            close_after: false,
            dead: false,
        }
    }
}

/// The running multiplexer: acceptor + I/O thread pool over one
/// [`ModelService`].
pub struct Multiplexer {
    shared: Arc<MuxShared>,
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
    io_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Multiplexer {
    /// Binds `bind` (port 0 for ephemeral) and starts the acceptor and
    /// I/O pool.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the bind or thread spawns fail.
    pub fn start(
        bind: &str,
        service: Arc<ModelService>,
        config: MuxConfig,
    ) -> Result<Arc<Multiplexer>> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let io_threads = config.resolved_io_threads();
        let io = (0..io_threads)
            .map(|_| IoThread {
                incoming: Mutex::new(Vec::new()),
                waker: Arc::new(Waker::new()),
            })
            .collect();
        let mux = Arc::new(Multiplexer {
            shared: Arc::new(MuxShared {
                service,
                addr,
                config,
                stop: AtomicBool::new(false),
                stop_at: Mutex::new(None),
                conn_count: AtomicUsize::new(0),
                io,
            }),
            acceptor: Mutex::new(None),
            io_handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(io_threads);
        for idx in 0..io_threads {
            let io_mux = Arc::clone(&mux);
            let handle = std::thread::Builder::new()
                .name(format!("stco-serve-io{idx}"))
                .spawn(move || io_loop(&io_mux, idx))
                .map_err(ServeError::Io)?;
            handles.push(handle);
        }
        {
            let mut io_handles = mux.io_handles.lock().unwrap_or_else(|e| e.into_inner());
            *io_handles = handles;
        }
        let accept_mux = Arc::clone(&mux);
        let acceptor = std::thread::Builder::new()
            .name("stco-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_mux))
            .map_err(ServeError::Io)?;
        {
            let mut slot = mux.acceptor.lock().unwrap_or_else(|e| e.into_inner());
            *slot = Some(acceptor);
        }
        stco_obs::event!(
            "serve.listening",
            addr = addr.to_string(),
            io_threads = io_threads,
            shards = mux.shared.service.shard_count()
        );
        Ok(mux)
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.shared.addr
    }

    /// Whether a stop has been requested.
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Blocks until the multiplexer stops (via [`Multiplexer::stop`]
    /// or a wire `shutdown`).
    pub fn wait(&self) {
        let acceptor = {
            let mut slot = self.acceptor.lock().unwrap_or_else(|e| e.into_inner());
            slot.take()
        };
        if let Some(handle) = acceptor {
            let _ = handle.join();
        }
        let handles: Vec<_> = {
            let mut io_handles = self.io_handles.lock().unwrap_or_else(|e| e.into_inner());
            io_handles.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Stops the front end: no new connections or reads, pending
    /// replies flush, the service drains (every accepted request is
    /// answered), threads join. Idempotent.
    pub fn stop(&self) {
        let first = !self.shared.stop.swap(true, Ordering::SeqCst);
        if first {
            {
                let mut at = self
                    .shared
                    .stop_at
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                *at = Some(Instant::now());
            }
            // Unblock the blocking accept() with a throwaway connection.
            if let Ok(conn) = TcpStream::connect(self.shared.addr) {
                drop(conn);
            }
            for io in &self.shared.io {
                io.waker.wake();
            }
        }
        let acceptor = {
            let mut slot = self.acceptor.lock().unwrap_or_else(|e| e.into_inner());
            slot.take()
        };
        if let Some(handle) = acceptor {
            let _ = handle.join();
        }
        // Drain the shard queues: fires every pending completion into
        // the connection out-buffers before the I/O pool winds down.
        self.shared.service.shutdown();
        for io in &self.shared.io {
            io.waker.wake();
        }
        let handles: Vec<_> = {
            let mut io_handles = self.io_handles.lock().unwrap_or_else(|e| e.into_inner());
            io_handles.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Multiplexer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, mux: &Arc<Multiplexer>) {
    let shared = &mux.shared;
    let rejected = stco_obs::Recorder::global()
        .metrics()
        .counter("serve.conn_rejected_total");
    let mut next_io = 0usize;
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.conn_count.load(Ordering::SeqCst) >= shared.config.max_conns {
            rejected.inc();
            continue;
        }
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        shared.conn_count.fetch_add(1, Ordering::SeqCst);
        let slot = &shared.io[next_io];
        next_io = (next_io + 1) % shared.io.len();
        {
            let mut incoming = slot.incoming.lock().unwrap_or_else(|e| e.into_inner());
            incoming.push(stream);
        }
        slot.waker.wake();
    }
}

/// One I/O event thread: sweeps its connections until stopped.
fn io_loop(mux: &Arc<Multiplexer>, io_idx: usize) {
    let _span = stco_obs::span!("serve.io_loop", io_thread = io_idx);
    let shared = &mux.shared;
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; 16 * 1024];
    let mut idle_sweeps = 0u32;
    loop {
        let stopping = shared.stop.load(Ordering::SeqCst);
        let force_close = stopping && {
            let at = shared.stop_at.lock().unwrap_or_else(|e| e.into_inner());
            at.is_some_and(|t| t.elapsed() > STOP_GRACE)
        };
        let adopted: Vec<TcpStream> = {
            let mut incoming = shared.io[io_idx]
                .incoming
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            incoming.drain(..).collect()
        };
        let mut progressed = !adopted.is_empty();
        for stream in adopted {
            if stopping {
                shared.conn_count.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            conns.push(Conn::new(stream));
        }
        for conn in &mut conns {
            progressed |= sweep_conn(mux, io_idx, conn, &mut scratch, stopping, force_close);
        }
        let before = conns.len();
        conns.retain(|c| !c.dead);
        if conns.len() < before {
            shared
                .conn_count
                .fetch_sub(before - conns.len(), Ordering::SeqCst);
            progressed = true;
        }
        if stopping && conns.is_empty() {
            return;
        }
        if progressed {
            idle_sweeps = 0;
            continue;
        }
        idle_sweeps = idle_sweeps.saturating_add(1);
        if idle_sweeps <= 3 {
            // A reply is often one forward pass away; spin briefly
            // before paying a park/unpark.
            std::thread::yield_now();
            continue;
        }
        let timeout = if conns.is_empty() || idle_sweeps > IDLE_ESCALATE_SWEEPS {
            LONG_NAP
        } else {
            shared.config.poll_interval
        };
        shared.io[io_idx].waker.wait(timeout);
    }
}

/// One readiness sweep over one connection: read, dispatch, write,
/// close-check. Returns whether any progress was made.
fn sweep_conn(
    mux: &Arc<Multiplexer>,
    io_idx: usize,
    conn: &mut Conn,
    scratch: &mut [u8],
    stopping: bool,
    force_close: bool,
) -> bool {
    let mut progressed = false;
    let outstanding = conn.shared.outstanding.load(Ordering::SeqCst);
    let may_read = !stopping
        && !conn.read_closed
        && !conn.close_after
        && !conn.dead
        && outstanding < MAX_OUTSTANDING;
    if may_read {
        progressed |= pump_reads(mux, io_idx, conn, scratch);
    }
    if !conn.dead {
        progressed |= pump_writes(conn);
    }
    if conn.dead {
        return true;
    }
    if force_close {
        conn.dead = true;
        return true;
    }
    // Close when the peer is done (EOF / desync / shutdown / stop) and
    // everything accepted has been answered and flushed. Outstanding is
    // read *before* the flush check: completions decrement only after
    // queueing their reply, so 0-outstanding plus an empty out-buffer
    // means genuinely done.
    let done_reading = conn.read_closed || conn.close_after || stopping;
    if done_reading && conn.shared.outstanding.load(Ordering::SeqCst) == 0 {
        let out = conn.shared.out.lock().unwrap_or_else(|e| e.into_inner());
        if out.ready.is_empty() && out.wire.len() == out.written {
            drop(out);
            conn.dead = true;
            progressed = true;
        }
    }
    progressed
}

/// Reads up to the per-sweep budget, feeding the frame decoder and
/// dispatching completed frames.
fn pump_reads(mux: &Arc<Multiplexer>, io_idx: usize, conn: &mut Conn, scratch: &mut [u8]) -> bool {
    let mut progressed = false;
    for _ in 0..READS_PER_SWEEP {
        match conn.stream.read(scratch) {
            Ok(0) => {
                conn.read_closed = true;
                break;
            }
            Ok(n) => {
                progressed = true;
                let mut items: Vec<Result<JsonValue>> = Vec::new();
                let fatal = conn.decoder.push(&scratch[..n], &mut items);
                for item in items {
                    dispatch_item(mux, io_idx, conn, item);
                }
                if let Err(e) = fatal {
                    // Length prefix broke framing: typed reply, then
                    // close — realignment would be a guess.
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    push_ready(&conn.shared, seq, &Reply::from_error(&e));
                    conn.close_after = true;
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    progressed
}

/// Promotes due reply frames into the wire buffer and writes what the
/// socket will take.
fn pump_writes(conn: &mut Conn) -> bool {
    let mut progressed = false;
    let mut out = conn.shared.out.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let due = out.next_emit;
        let Some(frame) = out.ready.remove(&due) else {
            break;
        };
        out.wire.extend_from_slice(&frame);
        out.next_emit += 1;
    }
    while out.written < out.wire.len() {
        // Nonblocking socket: plain write (not write_all) — a partial
        // write parks the rest for the next sweep.
        match conn.stream.write(&out.wire[out.written..]) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => {
                out.written += n;
                progressed = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    if out.written == out.wire.len() {
        out.wire.clear();
        out.written = 0;
    } else if out.written > 64 * 1024 {
        // Large partial write: drop the emitted prefix so the buffer
        // does not grow without bound under sustained pipelining.
        let written = out.written;
        out.wire.drain(..written);
        out.written = 0;
    }
    progressed
}

/// Dispatches one decoded frame (or per-frame decode error). The reply
/// lands at this frame's sequence slot — immediately for cheap ops,
/// from a completion for `predict`/`drain`.
fn dispatch_item(mux: &Arc<Multiplexer>, io_idx: usize, conn: &mut Conn, item: Result<JsonValue>) {
    let shared = &mux.shared;
    let seq = conn.next_seq;
    conn.next_seq += 1;
    let request = match item.and_then(|doc| Request::from_json(&doc)) {
        Ok(request) => request,
        Err(e) => {
            push_ready(&conn.shared, seq, &Reply::from_error(&e));
            return;
        }
    };
    match request {
        Request::Ping => push_ready(&conn.shared, seq, &Reply::Pong),
        Request::Stats => {
            let metrics = stco_obs::Recorder::global().metrics();
            let reply = Reply::Stats(ServerStats {
                queue_depth: shared.service.queue_depth(),
                shards: shared.service.shard_count(),
                shard_queue_depths: shared.service.shard_queue_depths(),
                shed: metrics.counter("serve.shed_total").get(),
                loaded: shared.service.loaded(),
                requests: metrics.counter("serve.requests").get(),
                replies: metrics.counter("serve.replies").get(),
                errors: metrics.counter("serve.errors").get(),
                deadline_exceeded: metrics.counter("serve.deadline_exceeded").get(),
                slow_requests: shared.service.slow_requests(),
            });
            push_ready(&conn.shared, seq, &reply);
        }
        Request::Metrics => {
            let snaps = stco_obs::Recorder::global().metrics().snapshot();
            let reply = Reply::Metrics {
                snapshot: stco_obs::snapshot_json(&snaps),
                text: stco_obs::prometheus_text(&snaps),
            };
            push_ready(&conn.shared, seq, &reply);
        }
        // Registry I/O on the event thread: loads are rare admin ops
        // and warm-cache hits are cheap; not worth a helper thread.
        Request::Load { kind, key } => {
            let reply = match shared.service.load(&kind, key) {
                Ok(model) => {
                    let shard = shared.service.shard_for(&model);
                    Reply::Loaded { model, shard }
                }
                Err(e) => Reply::from_error(&e),
            };
            push_ready(&conn.shared, seq, &reply);
        }
        Request::Resume { shard } => {
            let reply = match shared.service.resume_shard(shard) {
                Ok(()) => Reply::Resumed { shard },
                Err(e) => Reply::from_error(&e),
            };
            push_ready(&conn.shared, seq, &reply);
        }
        // Drain blocks until the shard is quiescent — that cannot run
        // on the event thread, so a short-lived helper carries it.
        Request::Drain { shard } => {
            conn.shared.outstanding.fetch_add(1, Ordering::SeqCst);
            let cs = Arc::clone(&conn.shared);
            let waker = Arc::clone(&shared.io[io_idx].waker);
            let service = Arc::clone(&shared.service);
            let spawned = std::thread::Builder::new()
                .name("stco-serve-drain".to_string())
                .spawn(move || {
                    let reply = match service.drain_shard(shard) {
                        Ok(()) => Reply::Drained { shard },
                        Err(e) => Reply::from_error(&e),
                    };
                    push_ready(&cs, seq, &reply);
                    cs.outstanding.fetch_sub(1, Ordering::SeqCst);
                    waker.wake();
                });
            if spawned.is_err() {
                push_ready(
                    &conn.shared,
                    seq,
                    &Reply::from_error(&ServeError::ShuttingDown),
                );
                conn.shared.outstanding.fetch_sub(1, Ordering::SeqCst);
            }
        }
        Request::Shutdown => {
            push_ready(&conn.shared, seq, &Reply::ShuttingDown);
            conn.close_after = true;
            // stop() joins the I/O threads — including this one — so it
            // must run detached.
            let stopper = Arc::clone(mux);
            let _ = std::thread::Builder::new()
                .name("stco-serve-stop".to_string())
                .spawn(move || stopper.stop());
        }
        // Sweep queue ops run inline on the event thread: lease and
        // status are in-memory bookkeeping, and complete is one
        // atomic journal write (the Load precedent — rare admin-path
        // registry I/O is not worth a helper thread).
        Request::Sweep(action) => {
            let reply = match shared.service.sweep_backend() {
                None => Reply::from_error(&ServeError::BadInput {
                    context: "no sweep attached to this server".to_string(),
                }),
                Some(backend) => match action {
                    SweepAction::Lease { worker, max } => Reply::SweepLeased {
                        scenarios: backend.lease(&worker, max),
                    },
                    SweepAction::Complete { scenario, values } => {
                        match backend.complete(&scenario, &values) {
                            Ok(accepted) => Reply::SweepCompleted { accepted },
                            Err(e) => Reply::from_error(&e),
                        }
                    }
                    SweepAction::Status => Reply::SweepStatus(backend.status()),
                },
            };
            push_ready(&conn.shared, seq, &reply);
        }
        Request::Predict {
            model,
            input,
            deadline_ms,
        } => {
            conn.shared.outstanding.fetch_add(1, Ordering::SeqCst);
            let cs = Arc::clone(&conn.shared);
            let waker = Arc::clone(&shared.io[io_idx].waker);
            let deadline = deadline_ms.map(Duration::from_millis);
            shared.service.submit_async(
                &model,
                input,
                deadline,
                Box::new(move |result| {
                    let reply = match result {
                        Ok(values) => Reply::Values(values),
                        Err(e) => Reply::from_error(&e),
                    };
                    push_ready(&cs, seq, &reply);
                    cs.outstanding.fetch_sub(1, Ordering::SeqCst);
                    waker.wake();
                }),
            );
        }
    }
}
