//! `stco-serve`: serve surrogate models from an artifact registry over
//! TCP.
//!
//! ```text
//! stco-serve [--bind ADDR] [--shards N] [--io-threads N]
//!            [--load KIND:HEXKEY]...
//! ```
//!
//! * `--bind` — listen address, default `127.0.0.1:7878` (use `:0` for
//!   an ephemeral port; the bound address is printed).
//! * `--shards` — worker shards (default: `$STCO_SHARDS` or 1).
//! * `--io-threads` — multiplexer I/O event threads (default: auto
//!   from the core count).
//! * `--load` — pre-load an artifact from the registry at startup
//!   (clients can also load lazily with the `load` op).
//!
//! The registry directory comes from `$STCO_STORE_DIR` (default
//! `.stco-store`). The server runs until a client sends `shutdown` or
//! the process is killed.

use stco_serve::service::{BatchConfig, ModelService};
use stco_serve::{MuxConfig, TcpServer};
use stco_store::{ArtifactKey, Registry};

fn main() {
    let mut bind = "127.0.0.1:7878".to_string();
    let mut preload: Vec<(String, ArtifactKey)> = Vec::new();
    let mut batch = BatchConfig::default();
    let mut mux = MuxConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bind" => {
                bind = args.next().expect("--bind needs an address");
            }
            "--shards" => {
                let n = args.next().expect("--shards needs a count");
                batch.shards = n.parse().expect("--shards must be a positive integer");
                assert!(batch.shards > 0, "--shards must be a positive integer");
            }
            "--io-threads" => {
                let n = args.next().expect("--io-threads needs a count");
                mux.io_threads = n.parse().expect("--io-threads must be a positive integer");
                assert!(
                    mux.io_threads > 0,
                    "--io-threads must be a positive integer"
                );
            }
            "--load" => {
                let spec = args.next().expect("--load needs KIND:HEXKEY");
                let (kind, hex) = spec
                    .rsplit_once(':')
                    .expect("--load spec must be KIND:HEXKEY");
                let key = u64::from_str_radix(hex, 16).expect("HEXKEY must be hex");
                preload.push((kind.to_string(), ArtifactKey::from_value(key)));
            }
            "--help" | "-h" => {
                println!(
                    "usage: stco-serve [--bind ADDR] [--shards N] [--io-threads N] \
                     [--load KIND:HEXKEY]..."
                );
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let registry = Registry::open_default().expect("open artifact registry");
    println!("registry: {}", registry.dir().display());
    let service = ModelService::start(Some(registry), batch);
    println!("shards: {}", service.shard_count());
    for (kind, key) in &preload {
        let id = service.load(kind, *key).expect("preload artifact");
        println!("loaded {id} (shard {})", service.shard_for(&id));
    }
    let server = TcpServer::start_with(&bind, service, mux).expect("bind server");
    println!("listening on {}", server.addr());
    server.wait();
    println!("server stopped");
}
