//! `stco-serve`: serve surrogate models from an artifact registry over
//! TCP.
//!
//! ```text
//! stco-serve [--bind ADDR] [--load KIND:HEXKEY]...
//! ```
//!
//! * `--bind` — listen address, default `127.0.0.1:7878` (use `:0` for
//!   an ephemeral port; the bound address is printed).
//! * `--load` — pre-load an artifact from the registry at startup
//!   (clients can also load lazily with the `load` op).
//!
//! The registry directory comes from `$STCO_STORE_DIR` (default
//! `.stco-store`). The server runs until a client sends `shutdown` or
//! the process is killed.

use stco_serve::service::{BatchConfig, ModelService};
use stco_serve::TcpServer;
use stco_store::{ArtifactKey, Registry};

fn main() {
    let mut bind = "127.0.0.1:7878".to_string();
    let mut preload: Vec<(String, ArtifactKey)> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--bind" => {
                bind = args.next().expect("--bind needs an address");
            }
            "--load" => {
                let spec = args.next().expect("--load needs KIND:HEXKEY");
                let (kind, hex) = spec
                    .rsplit_once(':')
                    .expect("--load spec must be KIND:HEXKEY");
                let key = u64::from_str_radix(hex, 16).expect("HEXKEY must be hex");
                preload.push((kind.to_string(), ArtifactKey::from_value(key)));
            }
            "--help" | "-h" => {
                println!("usage: stco-serve [--bind ADDR] [--load KIND:HEXKEY]...");
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let registry = Registry::open_default().expect("open artifact registry");
    println!("registry: {}", registry.dir().display());
    let service = ModelService::start(Some(registry), BatchConfig::default());
    for (kind, key) in &preload {
        let id = service.load(kind, *key).expect("preload artifact");
        println!("loaded {id}");
    }
    let server = TcpServer::start(&bind, service).expect("bind server");
    println!("listening on {}", server.addr());
    server.wait();
    println!("server stopped");
}
