//! `stco-serve`: the serving half of the fast-stco training/inference
//! stack.
//!
//! The paper frames the GNN surrogates as amortized, query-many assets;
//! this crate serves them:
//!
//! * [`service`] — an in-process [`ModelService`] **sharded N ways**:
//!   each shard owns a warm `Arc` model cache and a bounded
//!   micro-batching queue drained by its own worker. Requests route to
//!   shards by consistent hashing over the model id (the stco-store
//!   content address), so same-model traffic lands on the same shard
//!   and keeps `predict_batch` grouping dense. Concurrent requests
//!   coalesce (up to [`BatchConfig::max_batch`], or until the oldest
//!   waits [`BatchConfig::max_linger`]) into one batched forward pass
//!   executed on the [`stco_par`] pool. Replies are bitwise-identical
//!   to serial `predict` calls: each request runs the same single-item
//!   forward graph, batching only schedules them together. Admission
//!   control stacks three layers: per-request deadlines, shedding
//!   watermarks (typed `overloaded` rejects before the hard bound) and
//!   bounded-queue backpressure (`queue-full`). Per-shard graceful
//!   drain (`draining` rejects, in-flight work completes) supports hot
//!   restarts.
//! * [`protocol`] — length-prefixed JSON frames over any
//!   `Read`/`Write`, reusing [`stco_obs::json`]. f64 payloads travel as
//!   shortest-roundtrip decimal, which Rust formats/parses exactly.
//!   [`protocol::FrameDecoder`] is the incremental flavour: it accepts
//!   bytes at any split boundary, for nonblocking sockets.
//! * [`mux`] / [`server`] / [`client`] — a std-only readiness-loop TCP
//!   front end (nonblocking sockets, a small fixed pool of I/O event
//!   threads, per-connection frame state machines) and its matching
//!   blocking client.
//! * [`loadgen`] — a closed-loop load generator that sweeps
//!   concurrency against a running server and reports offered vs
//!   achieved throughput with exact client-side quantiles,
//!   cross-checked against the server's rolling latency window.
//!
//! Every stage records obs spans and metrics: a `serve.queue_depth`
//! gauge, `serve.batch_size` and `serve.queue_wait_seconds` histograms,
//! a rolling-window `serve.latency_seconds` histogram, and request/
//! reply/error counters. Each request carries a trace id from submit to
//! reply; per-phase timings (queue wait, batch assembly, forward, reply
//! write) feed a worst-K slow-request log, and the `metrics`/`stats`
//! wire ops expose the whole registry (JSON + Prometheus text) and the
//! slow log remotely.

pub mod client;
pub mod demo;
pub mod loadgen;
pub mod mux;
pub mod protocol;
pub mod server;
pub mod service;

pub use client::Client;
pub use loadgen::{run_sweep, LoadStep, SweepConfig};
pub use mux::MuxConfig;
pub use server::TcpServer;
pub use service::{
    BatchConfig, LeasedScenario, LoadedModel, ModelService, PredictInput, SlowRequest,
    SweepBackend, SweepQueueStatus,
};

use std::fmt;

/// Errors from the serving stack.
#[derive(Debug)]
pub enum ServeError {
    /// Artifact-store failure while loading a model.
    Store(stco_store::StoreError),
    /// The request named a model that is not loaded.
    UnknownModel {
        /// The model id requested.
        id: String,
    },
    /// The request payload failed validation against the model.
    BadInput {
        /// What was wrong.
        context: String,
    },
    /// The pending queue is full (backpressure) — retry later.
    QueueFull {
        /// Queue depth at rejection time.
        depth: usize,
    },
    /// The shard crossed its shedding watermark — back off before the
    /// hard queue bound is hit (admission control, DESIGN.md §16).
    Overloaded {
        /// Shard queue depth at rejection time.
        depth: usize,
    },
    /// The shard is draining for a hot restart and rejects new work;
    /// in-flight requests still complete.
    Draining {
        /// The draining shard's index.
        shard: usize,
    },
    /// The request's deadline expired before execution.
    DeadlineExceeded,
    /// The service is shutting down and no longer accepts requests.
    ShuttingDown,
    /// A malformed frame or JSON document on the wire.
    Protocol {
        /// What was wrong.
        context: String,
    },
    /// Socket / I/O failure.
    Io(std::io::Error),
    /// The server replied with an error the client cannot refine.
    Remote {
        /// Wire error code.
        code: String,
        /// Server-rendered message.
        message: String,
    },
}

impl ServeError {
    /// The stable wire code of this error (the `code` field of error
    /// replies).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Store(_) => "store",
            ServeError::UnknownModel { .. } => "unknown-model",
            ServeError::BadInput { .. } => "bad-input",
            ServeError::QueueFull { .. } => "queue-full",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::Draining { .. } => "draining",
            ServeError::DeadlineExceeded => "deadline-exceeded",
            ServeError::ShuttingDown => "shutting-down",
            ServeError::Protocol { .. } => "malformed-frame",
            ServeError::Io(_) => "io",
            ServeError::Remote { .. } => "remote",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Store(e) => write!(f, "artifact store: {e}"),
            ServeError::UnknownModel { id } => write!(f, "model {id:?} is not loaded"),
            ServeError::BadInput { context } => write!(f, "bad predict input: {context}"),
            ServeError::QueueFull { depth } => {
                write!(f, "request queue full ({depth} pending), retry later")
            }
            ServeError::Overloaded { depth } => {
                write!(f, "shard shedding load ({depth} pending), back off")
            }
            ServeError::Draining { shard } => {
                write!(f, "shard {shard} is draining, retry another replica")
            }
            ServeError::DeadlineExceeded => write!(f, "request deadline expired in queue"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Protocol { context } => write!(f, "protocol error: {context}"),
            ServeError::Io(e) => write!(f, "serve I/O: {e}"),
            ServeError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<stco_store::StoreError> for ServeError {
    fn from(e: stco_store::StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Result alias for serving routines.
pub type Result<T> = std::result::Result<T, ServeError>;
