//! The in-process model service: warm artifact cache + dynamic
//! micro-batching queue.
//!
//! # Batching policy
//!
//! Requests enqueue into a bounded queue. A dedicated worker drains a
//! batch when either (a) [`BatchConfig::max_batch`] requests are
//! waiting, or (b) the *oldest* waiting request has lingered
//! [`BatchConfig::max_linger`] — so a lone request pays at most the
//! linger, and a burst fills batches immediately. The batch executes as
//! one [`stco_par::par_map`] over the items; each item runs exactly the
//! forward graph a serial `predict` call runs, so batched replies are
//! bitwise-identical to serial ones at every thread count.
//!
//! # Backpressure and deadlines
//!
//! When [`BatchConfig::max_pending`] requests are queued, further
//! submits fail fast with [`ServeError::QueueFull`] — the caller
//! retries rather than the queue growing unboundedly. Every request
//! carries a deadline; a request still queued past its deadline is
//! answered [`ServeError::DeadlineExceeded`] without executing.
//!
//! # Shutdown
//!
//! [`ModelService::shutdown`] stops new submits, lets the worker drain
//! every queued request (executing them — a accepted request is always
//! answered), then joins the worker.
//!
//! # Telemetry
//!
//! Every request gets a **trace id** at [`ModelService::submit`]. The
//! worker measures the four phases of its life — queue wait, batch
//! assembly, the stco-par forward pass, reply write — and:
//!
//! * observes `serve.queue_wait_seconds`, `serve.batch_size` and the
//!   **sliding-window** `serve.latency_seconds` (rolling p50/p95/p99);
//! * emits a `serve.request` event with the full phase breakdown for a
//!   deterministic 1-in-[`BatchConfig::trace_sample_n`] sample of trace
//!   ids;
//! * keeps the worst [`BatchConfig::slow_log_k`] requests by total
//!   latency as [`SlowRequest`] exemplars, readable via
//!   [`ModelService::slow_requests`] and the TCP `stats` op.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::AtomicU64;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use stco_cells::encode::{CellGraph, FEATURE_DIM};
use stco_nn::gnn::GraphData;
use stco_store::{Artifact, ArtifactKey, Registry};
use stco_surrogate::cell_model::{BatchedCellGraph, CellModel, InferencePrecision, METRICS};
use stco_surrogate::encoding::{EDGE_DIM, NODE_DIM};
use stco_surrogate::iv_predictor::IvPredictor;
use stco_surrogate::poisson_emulator::PoissonEmulator;

use crate::{Result, ServeError};

/// Micro-batching queue parameters.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Largest batch one worker pass executes.
    pub max_batch: usize,
    /// Longest the oldest request may wait before a partial batch runs.
    pub max_linger: Duration,
    /// Queue bound; submits beyond it fail with `QueueFull`.
    pub max_pending: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Deterministic trace sampling: requests whose trace id is a
    /// multiple of this emit a `serve.request` event with the full
    /// phase breakdown (`0` disables sampling entirely).
    pub trace_sample_n: u64,
    /// How many worst-latency exemplars the slow-request log keeps.
    pub slow_log_k: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 16,
            max_linger: Duration::from_millis(2),
            max_pending: 1024,
            default_deadline: Duration::from_secs(5),
            trace_sample_n: 64,
            slow_log_k: 8,
        }
    }
}

/// One slow-request exemplar: the full phase breakdown of a request's
/// life in the service. `queue + assembly + forward + reply ≈ total`
/// (the phases the worker controls; `total` is enqueue → reply sent).
#[derive(Debug, Clone, PartialEq)]
pub struct SlowRequest {
    /// Trace id assigned at submit.
    pub trace_id: u64,
    /// Size of the batch this request executed in.
    pub batch_size: usize,
    /// Time from enqueue to batch drain (queue wait + linger).
    pub queue_seconds: f64,
    /// Time spent assembling the drained batch for execution.
    pub assembly_seconds: f64,
    /// Duration of the batch's stco-par forward pass.
    pub forward_seconds: f64,
    /// Time writing this request's reply to its channel.
    pub reply_seconds: f64,
    /// Total latency: enqueue → reply written.
    pub total_seconds: f64,
}

/// Worst-K log of [`SlowRequest`] exemplars. The hot path is one
/// relaxed atomic load when the candidate is faster than the current
/// K-th worst; only genuinely slow requests take the mutex.
struct SlowLog {
    k: usize,
    /// f64 bits of the admission threshold (the K-th worst total, or
    /// `-inf` while the log is not yet full).
    threshold_bits: AtomicU64,
    entries: Mutex<Vec<SlowRequest>>,
}

impl SlowLog {
    fn new(k: usize) -> Self {
        SlowLog {
            k,
            threshold_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            entries: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, r: SlowRequest) {
        use std::sync::atomic::Ordering;
        if self.k == 0
            || r.total_seconds <= f64::from_bits(self.threshold_bits.load(Ordering::Relaxed))
        {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.push(r);
        entries.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
        entries.truncate(self.k);
        if entries.len() == self.k {
            if let Some(last) = entries.last() {
                self.threshold_bits
                    .store(last.total_seconds.to_bits(), Ordering::Relaxed);
            }
        }
    }

    fn worst(&self) -> Vec<SlowRequest> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Reads the `STCO_PRECISION` environment variable: `f32` opts a
/// freshly loaded cell model into the bounded-error fast-inference path
/// (DESIGN.md §15); anything else — including unset — keeps the
/// bitwise-deterministic `f64` default.
fn precision_from_env() -> InferencePrecision {
    match std::env::var("STCO_PRECISION") {
        Ok(v) if v.eq_ignore_ascii_case("f32") => InferencePrecision::F32,
        _ => InferencePrecision::F64,
    }
}

/// A model rehydrated from an artifact, ready to answer predictions.
#[derive(Debug)]
pub enum LoadedModel {
    /// GCN cell-characterization model.
    Cell(CellModel),
    /// RelGAT Poisson emulator.
    Poisson(PoissonEmulator),
    /// RelGAT IV predictor.
    Iv(IvPredictor),
}

impl LoadedModel {
    /// Rehydrates whichever model kind the artifact holds.
    ///
    /// # Errors
    ///
    /// [`stco_store::StoreError::WrongKind`] for artifact kinds that
    /// are not servable models, plus any rehydration failure.
    pub fn from_artifact(
        artifact: &Artifact,
    ) -> std::result::Result<LoadedModel, stco_store::StoreError> {
        match artifact.kind.as_str() {
            CellModel::ARTIFACT_KIND => {
                let mut model = CellModel::from_artifact(artifact)?;
                model.set_precision(precision_from_env());
                Ok(LoadedModel::Cell(model))
            }
            PoissonEmulator::ARTIFACT_KIND => Ok(LoadedModel::Poisson(
                PoissonEmulator::from_artifact(artifact)?,
            )),
            IvPredictor::ARTIFACT_KIND => {
                Ok(LoadedModel::Iv(IvPredictor::from_artifact(artifact)?))
            }
            other => Err(stco_store::StoreError::WrongKind {
                expected: "a servable model kind".to_string(),
                found: other.to_string(),
            }),
        }
    }

    /// The artifact kind this model was loaded from.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            LoadedModel::Cell(_) => CellModel::ARTIFACT_KIND,
            LoadedModel::Poisson(_) => PoissonEmulator::ARTIFACT_KIND,
            LoadedModel::Iv(_) => IvPredictor::ARTIFACT_KIND,
        }
    }

    /// Runs one prediction — the exact forward pass a direct
    /// `predict`/`predict_many` call runs, so the result is bitwise
    /// identical to in-process inference.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when the payload does not fit the
    /// model (wrong task, inconsistent shapes, out-of-range indices).
    pub fn predict(&self, input: &PredictInput) -> Result<Vec<f64>> {
        input.validate()?;
        match (self, input) {
            (LoadedModel::Cell(model), PredictInput::Cell { graph, metrics }) => {
                Ok(model.predict_many(graph, metrics))
            }
            (LoadedModel::Poisson(model), PredictInput::Poisson { graph }) => {
                Ok(model.predict_graph(graph))
            }
            (LoadedModel::Iv(model), PredictInput::Iv { graph }) => {
                Ok(vec![model.predict_log_current_graph(graph)])
            }
            _ => Err(ServeError::BadInput {
                context: format!(
                    "input task {:?} does not match model kind {:?}",
                    input.task(),
                    self.kind()
                ),
            }),
        }
    }
}

/// One predict request payload.
#[derive(Debug, Clone)]
pub enum PredictInput {
    /// Cell-metric prediction over a Table III cell graph.
    Cell {
        /// The encoded cell graph.
        graph: CellGraph,
        /// Metric indices to read (into `METRICS`).
        metrics: Vec<usize>,
    },
    /// Per-node potential map over an encoded device graph.
    Poisson {
        /// The encoded device graph (Poisson task features).
        graph: GraphData,
    },
    /// `log₁₀|I_D|` over an encoded device graph.
    Iv {
        /// The encoded device graph (IV task features).
        graph: GraphData,
    },
}

impl PredictInput {
    /// Short task tag (the wire `task` field).
    #[must_use]
    pub fn task(&self) -> &'static str {
        match self {
            PredictInput::Cell { .. } => "cell",
            PredictInput::Poisson { .. } => "poisson",
            PredictInput::Iv { .. } => "iv",
        }
    }

    /// Validates internal consistency (shapes, index ranges).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] with a description of the violation.
    pub fn validate(&self) -> Result<()> {
        let bad = |context: String| Err(ServeError::BadInput { context });
        match self {
            PredictInput::Cell { graph, metrics } => {
                let n = graph.num_nodes();
                if graph.features.len() != n * FEATURE_DIM {
                    return bad(format!(
                        "cell graph has {} feature values for {n} nodes (want {})",
                        graph.features.len(),
                        n * FEATURE_DIM
                    ));
                }
                if graph.labels.len() != n {
                    return bad(format!("{} labels for {n} nodes", graph.labels.len()));
                }
                if n == 0 {
                    return bad("empty cell graph".to_string());
                }
                if let Some((s, d)) = graph.edges.iter().find(|(s, d)| *s >= n || *d >= n) {
                    return bad(format!("edge ({s},{d}) out of range for {n} nodes"));
                }
                if metrics.is_empty() {
                    return bad("no metrics requested".to_string());
                }
                if let Some(m) = metrics.iter().find(|m| **m >= METRICS.len()) {
                    return bad(format!("metric index {m} out of range"));
                }
                Ok(())
            }
            PredictInput::Poisson { graph } | PredictInput::Iv { graph } => {
                let n = graph.num_nodes();
                if n == 0 {
                    return bad("empty device graph".to_string());
                }
                if graph.node_features.cols() != NODE_DIM {
                    return bad(format!(
                        "device graph has node dim {} (want {NODE_DIM})",
                        graph.node_features.cols()
                    ));
                }
                if graph.edge_features.rows() != graph.edges.len()
                    || graph.edge_features.cols() != EDGE_DIM
                {
                    return bad(format!(
                        "edge features are {}×{} for {} edges (want {}×{EDGE_DIM})",
                        graph.edge_features.rows(),
                        graph.edge_features.cols(),
                        graph.edges.len(),
                        graph.edges.len()
                    ));
                }
                if let Some((s, d)) = graph.edges.iter().find(|(s, d)| *s >= n || *d >= n) {
                    return bad(format!("edge ({s},{d}) out of range for {n} nodes"));
                }
                Ok(())
            }
        }
    }
}

/// Reply channel for one queued request.
type ReplySender = mpsc::Sender<Result<Vec<f64>>>;

struct Pending {
    trace_id: u64,
    model: Arc<LoadedModel>,
    input: PredictInput,
    enqueued: Instant,
    deadline: Instant,
    reply: ReplySender,
}

struct QueueState {
    queue: VecDeque<Pending>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    cond: Condvar,
    batch: BatchConfig,
    next_trace: AtomicU64,
    slow: SlowLog,
}

fn lock_state(shared: &Shared) -> std::sync::MutexGuard<'_, QueueState> {
    // A panicking worker poisons the mutex; the queue data itself stays
    // consistent, so recover the guard rather than propagate.
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// The warm-cache, micro-batching model service.
pub struct ModelService {
    registry: Option<Registry>,
    models: RwLock<HashMap<String, Arc<LoadedModel>>>,
    shared: Arc<Shared>,
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl ModelService {
    /// Starts a service (and its batching worker) over a registry.
    #[must_use]
    pub fn start(registry: Option<Registry>, batch: BatchConfig) -> Arc<ModelService> {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutting_down: false,
            }),
            cond: Condvar::new(),
            batch,
            next_trace: AtomicU64::new(1),
            slow: SlowLog::new(batch.slow_log_k),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("stco-serve-batcher".to_string())
            .spawn(move || worker_loop(&worker_shared))
            .ok();
        Arc::new(ModelService {
            registry,
            models: RwLock::new(HashMap::new()),
            shared,
            worker: Mutex::new(worker),
        })
    }

    /// The canonical id a model is cached under: `<kind>:<key hex>`.
    #[must_use]
    pub fn model_id(kind: &str, key: ArtifactKey) -> String {
        format!("{kind}:{}", key.to_hex())
    }

    /// Loads an artifact from the registry into the warm cache and
    /// returns its model id. A hit on an already-loaded id is free.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when the registry has no such
    /// artifact, [`ServeError::Store`] on read/decode failures.
    pub fn load(&self, kind: &str, key: ArtifactKey) -> Result<String> {
        let _span = stco_obs::span!("serve.load");
        let id = Self::model_id(kind, key);
        {
            let models = self.models.read().unwrap_or_else(|e| e.into_inner());
            if models.contains_key(&id) {
                return Ok(id);
            }
        }
        let registry = self
            .registry
            .as_ref()
            .ok_or_else(|| ServeError::UnknownModel { id: id.clone() })?;
        let artifact = registry
            .load(kind, key)?
            .ok_or_else(|| ServeError::UnknownModel { id: id.clone() })?;
        let model = LoadedModel::from_artifact(&artifact)?;
        self.install(&id, model);
        stco_obs::event!("serve.model_loaded", model = id.as_str());
        Ok(id)
    }

    /// Installs an in-memory model under an id (no registry round-trip
    /// — used by tests and single-process pipelines).
    pub fn install(&self, id: &str, model: LoadedModel) {
        let mut models = self.models.write().unwrap_or_else(|e| e.into_inner());
        models.insert(id.to_string(), Arc::new(model));
        stco_obs::Recorder::global()
            .metrics()
            .gauge("serve.models_loaded")
            .set(models.len() as f64);
    }

    /// Ids of every loaded model, sorted.
    #[must_use]
    pub fn loaded(&self) -> Vec<String> {
        let models = self.models.read().unwrap_or_else(|e| e.into_inner());
        let mut ids: Vec<String> = models.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Current pending-queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        lock_state(&self.shared).queue.len()
    }

    /// The worst-latency request exemplars seen so far (most severe
    /// first, at most [`BatchConfig::slow_log_k`] entries), each with
    /// its full phase breakdown.
    #[must_use]
    pub fn slow_requests(&self) -> Vec<SlowRequest> {
        self.shared.slow.worst()
    }

    /// Submits one predict request and blocks until its reply.
    ///
    /// The request joins the micro-batching queue; `deadline` bounds
    /// its total queue time (defaulting to
    /// [`BatchConfig::default_deadline`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::QueueFull`],
    /// [`ServeError::DeadlineExceeded`], [`ServeError::ShuttingDown`],
    /// or [`ServeError::BadInput`] from execution.
    pub fn submit(
        &self,
        model_id: &str,
        input: PredictInput,
        deadline: Option<Duration>,
    ) -> Result<Vec<f64>> {
        let trace_id = self
            .shared
            .next_trace
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let _span = stco_obs::span!("serve.submit", trace = trace_id);
        let metrics = stco_obs::Recorder::global().metrics();
        metrics.counter("serve.requests").inc();
        let model = {
            let models = self.models.read().unwrap_or_else(|e| e.into_inner());
            models
                .get(model_id)
                .cloned()
                .ok_or_else(|| ServeError::UnknownModel {
                    id: model_id.to_string(),
                })?
        };
        let now = Instant::now();
        let deadline = now + deadline.unwrap_or(self.shared.batch.default_deadline);
        let (tx, rx) = mpsc::channel();
        {
            let mut state = lock_state(&self.shared);
            if state.shutting_down {
                metrics.counter("serve.errors").inc();
                return Err(ServeError::ShuttingDown);
            }
            if state.queue.len() >= self.shared.batch.max_pending {
                metrics.counter("serve.errors").inc();
                return Err(ServeError::QueueFull {
                    depth: state.queue.len(),
                });
            }
            state.queue.push_back(Pending {
                trace_id,
                model,
                input,
                enqueued: now,
                deadline,
                reply: tx,
            });
            metrics
                .gauge("serve.queue_depth")
                .set(state.queue.len() as f64);
        }
        self.shared.cond.notify_all();
        let result = rx.recv().unwrap_or(Err(ServeError::ShuttingDown));
        if result.is_err() {
            metrics.counter("serve.errors").inc();
        } else {
            metrics.counter("serve.replies").inc();
        }
        result
    }

    /// Stops accepting requests, drains the queue (every accepted
    /// request is answered) and joins the worker. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = lock_state(&self.shared);
            state.shutting_down = true;
        }
        self.shared.cond.notify_all();
        let handle = {
            let mut worker = self.worker.lock().unwrap_or_else(|e| e.into_inner());
            worker.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for ModelService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The worker: waits for requests, forms batches under the
/// size/linger policy, executes them on the stco-par pool.
fn worker_loop(shared: &Shared) {
    let metrics = stco_obs::Recorder::global().metrics();
    let size_bounds: Vec<f64> = (1..=shared.batch.max_batch).map(|n| n as f64).collect();
    let batch_size_hist = metrics.histogram("serve.batch_size", &size_bounds);
    let queue_wait_hist = metrics.histogram(
        "serve.queue_wait_seconds",
        &stco_obs::metrics::seconds_buckets(),
    );
    let latency = metrics.windowed_histogram(
        "serve.latency_seconds",
        &stco_obs::metrics::seconds_buckets(),
        stco_obs::WindowConfig::default(),
    );
    let deadline_counter = metrics.counter("serve.deadline_exceeded");
    loop {
        // Phase 1: wait until a batch is due (full, lingered, or draining).
        let batch: Vec<Pending> = {
            let mut state = lock_state(shared);
            loop {
                if state.queue.is_empty() {
                    if state.shutting_down {
                        return;
                    }
                    state = shared.cond.wait(state).unwrap_or_else(|e| e.into_inner());
                    continue;
                }
                let full = state.queue.len() >= shared.batch.max_batch;
                let oldest = state
                    .queue
                    .front()
                    .map_or_else(Instant::now, |p| p.enqueued);
                let due = oldest + shared.batch.max_linger;
                let now = Instant::now();
                if full || state.shutting_down || now >= due {
                    let take = state.queue.len().min(shared.batch.max_batch);
                    let drained: Vec<Pending> = state.queue.drain(..take).collect();
                    metrics
                        .gauge("serve.queue_depth")
                        .set(state.queue.len() as f64);
                    break drained;
                }
                let (next, _timeout) = shared
                    .cond
                    .wait_timeout(state, due - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
            }
        };

        let batch_size = batch.len();
        let _span = stco_obs::span!("serve.batch", size = batch_size);
        batch_size_hist.observe(batch_size as f64);

        // Phase 2 (assembly): separate expired requests, lay the rest
        // out for one parallel pass. Reply senders are kept aside
        // (mpsc::Sender is not Sync); the (model, input) pairs are.
        let drained = Instant::now();
        let mut work: Vec<(Arc<LoadedModel>, PredictInput)> = Vec::with_capacity(batch_size);
        let mut repliers: Vec<(ReplySender, Instant, bool, u64)> = Vec::with_capacity(batch_size);
        for p in batch {
            let expired = drained > p.deadline;
            if !expired {
                work.push((p.model, p.input));
            }
            queue_wait_hist.observe(drained.duration_since(p.enqueued).as_secs_f64());
            repliers.push((p.reply, p.enqueued, expired, p.trace_id));
        }
        let assembled = Instant::now();
        let assembly_seconds = assembled.duration_since(drained).as_secs_f64();

        // Phase 3 (forward): the batched stco-par pass.
        let results = forward_batch(&work);
        let forward_seconds = assembled.elapsed().as_secs_f64();

        // Phase 4 (reply write): answer every request, then fold the
        // phase breakdown into the windowed latency histogram, the
        // sampled trace events and the slow-request log.
        let mut results = results.into_iter();
        for (reply, enqueued, expired, trace_id) in repliers {
            let outcome = if expired {
                deadline_counter.inc();
                Err(ServeError::DeadlineExceeded)
            } else {
                results.next().unwrap_or(Err(ServeError::ShuttingDown))
            };
            let reply_start = Instant::now();
            // A disconnected receiver means the submitter gave up; drop.
            let _ = reply.send(outcome);
            let replied = Instant::now();
            let breakdown = SlowRequest {
                trace_id,
                batch_size,
                queue_seconds: drained.duration_since(enqueued).as_secs_f64(),
                assembly_seconds,
                forward_seconds,
                reply_seconds: replied.duration_since(reply_start).as_secs_f64(),
                total_seconds: replied.duration_since(enqueued).as_secs_f64(),
            };
            latency.observe(breakdown.total_seconds);
            if shared.batch.trace_sample_n > 0 && trace_id % shared.batch.trace_sample_n == 0 {
                stco_obs::event!(
                    "serve.request",
                    trace = trace_id,
                    batch = batch_size,
                    queue_s = breakdown.queue_seconds,
                    assembly_s = breakdown.assembly_seconds,
                    forward_s = breakdown.forward_seconds,
                    reply_s = breakdown.reply_seconds,
                    total_s = breakdown.total_seconds
                );
            }
            shared.slow.record(breakdown);
        }
    }
}

/// One forward-pass unit of a drained batch: either a single request or
/// a group of cell-graph requests sharing a model.
enum ForwardTask {
    Single(usize),
    CellGroup(Vec<usize>),
}

/// Executes one drained batch. Cell-graph requests that share a model
/// are packed into one block-diagonal [`BatchedCellGraph`] and answered
/// by a single [`CellModel::predict_batch`] trunk evaluation — a few
/// large blocked GEMMs instead of one small GEMM chain per request.
/// Everything else (other model kinds, lone cell requests) runs its own
/// per-item forward. The output is indexed like `work`, and every value
/// is bitwise-identical to the per-item [`LoadedModel::predict`] result
/// under the default `f64` precision (DESIGN.md §15).
fn forward_batch(work: &[(Arc<LoadedModel>, PredictInput)]) -> Vec<Result<Vec<f64>>> {
    // Group cell items by model identity (Arc pointer): requests for
    // the same installed model share weights and can be packed.
    let mut cell_groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, (model, input)) in work.iter().enumerate() {
        if matches!(
            (model.as_ref(), input),
            (LoadedModel::Cell(_), PredictInput::Cell { .. })
        ) && input.validate().is_ok()
        {
            cell_groups
                .entry(Arc::as_ptr(model) as usize)
                .or_default()
                .push(i);
        }
    }
    // Order groups by first member so the task list is deterministic
    // regardless of allocator-dependent Arc pointer values.
    let mut groups: Vec<Vec<usize>> = cell_groups
        .into_values()
        .filter(|idxs| idxs.len() > 1)
        .collect();
    groups.sort_unstable_by_key(|idxs| idxs[0]);
    let mut tasks: Vec<ForwardTask> = Vec::new();
    let mut in_group = vec![false; work.len()];
    for idxs in groups {
        for &i in &idxs {
            in_group[i] = true;
        }
        tasks.push(ForwardTask::CellGroup(idxs));
    }
    for (i, grouped) in in_group.iter().enumerate() {
        if !grouped {
            tasks.push(ForwardTask::Single(i));
        }
    }
    let produced = stco_par::par_map(stco_par::ParConfig::current(), &tasks, |task| match task {
        ForwardTask::Single(i) => {
            let (model, input) = &work[*i];
            vec![(*i, model.predict(input))]
        }
        ForwardTask::CellGroup(idxs) => {
            let LoadedModel::Cell(cell) = work[idxs[0]].0.as_ref() else {
                return idxs
                    .iter()
                    .map(|&i| (i, work[i].0.predict(&work[i].1)))
                    .collect();
            };
            let mut graphs: Vec<&CellGraph> = Vec::with_capacity(idxs.len());
            let mut metric_lists: Vec<&[usize]> = Vec::with_capacity(idxs.len());
            for &i in idxs {
                let PredictInput::Cell { graph, metrics } = &work[i].1 else {
                    return idxs
                        .iter()
                        .map(|&i| (i, work[i].0.predict(&work[i].1)))
                        .collect();
                };
                graphs.push(graph);
                metric_lists.push(metrics.as_slice());
            }
            let packed = BatchedCellGraph::pack(&graphs);
            let outs = cell.predict_batch(&packed, &metric_lists);
            idxs.iter().copied().zip(outs.into_iter().map(Ok)).collect()
        }
    });
    // Every index is covered by exactly one task; the placeholder only
    // survives if a task were somehow dropped.
    let mut results: Vec<Result<Vec<f64>>> =
        work.iter().map(|_| Err(ServeError::ShuttingDown)).collect();
    for pairs in produced {
        for (i, r) in pairs {
            results[i] = r;
        }
    }
    results
}
