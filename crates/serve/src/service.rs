//! The in-process model service: N worker shards, each with a warm
//! artifact cache and a dynamic micro-batching queue.
//!
//! # Sharding
//!
//! The service runs [`BatchConfig::shards`] independent shards.
//! Requests route to a shard by **consistent hashing** over the model
//! id (the stco-store content address, `kind:hexkey`): an FNV-1a-64
//! ring with 64 virtual nodes per shard, so same-model requests always
//! land on the same shard and keep `predict_batch` grouping dense,
//! while distinct models spread across shards. Each shard owns its own
//! warm `Arc` model cache, bounded queue, condvar and worker thread —
//! no cross-shard locks on the hot path.
//!
//! # Batching policy
//!
//! Requests enqueue into their shard's bounded queue. The shard worker
//! drains a batch when either (a) [`BatchConfig::max_batch`] requests
//! are waiting, or (b) the *oldest* waiting request has lingered
//! [`BatchConfig::max_linger`] — so a lone request pays at most the
//! linger, and a burst fills batches immediately. The batch executes as
//! one [`stco_par::par_map`] over the items; each item runs exactly the
//! forward graph a serial `predict` call runs, so batched replies are
//! bitwise-identical to serial ones at every thread count.
//!
//! # Admission control, backpressure and deadlines
//!
//! Three layers, outermost first:
//!
//! * **Load shedding** — when a shard's queue depth crosses
//!   [`BatchConfig::shed_high`] the shard enters *shedding* and rejects
//!   submits with [`ServeError::Overloaded`] (counted in
//!   `serve.shed_total`) until depth falls back to
//!   [`BatchConfig::shed_low`] (hysteresis, so admission does not
//!   flap at the watermark).
//! * **Hard backpressure** — at [`BatchConfig::max_pending`] queued
//!   requests further submits fail fast with [`ServeError::QueueFull`].
//! * **Deadlines** — every request carries one; a request still queued
//!   past its deadline is answered [`ServeError::DeadlineExceeded`]
//!   without executing.
//!
//! # Drain and shutdown
//!
//! [`ModelService::drain_shard`] flips one shard into *draining*: new
//! submits to it get [`ServeError::Draining`] while queued and
//! in-flight requests complete; the call returns once the shard is
//! quiescent (queue empty, worker idle). [`ModelService::resume_shard`]
//! reopens it — together they support hot restarts.
//! [`ModelService::shutdown`] stops new submits everywhere, lets every
//! shard worker drain its queue (executing the requests — an accepted
//! request is always answered), then joins the workers.
//!
//! # Telemetry
//!
//! Every request gets a **trace id** at submit. The worker measures the
//! four phases of its life — queue wait, batch assembly, the stco-par
//! forward pass, reply write — and:
//!
//! * observes `serve.queue_wait_seconds`, `serve.batch_size` and the
//!   **sliding-window** `serve.latency_seconds` (rolling p50/p95/p99);
//! * keeps `serve.queue_depth` (total across shards) and
//!   `serve.shard_queue_depth` (hottest shard) gauges current, plus the
//!   `serve.shed_total` shed counter;
//! * emits a `serve.request` event with the full phase breakdown for a
//!   deterministic 1-in-[`BatchConfig::trace_sample_n`] sample of trace
//!   ids;
//! * keeps the worst [`BatchConfig::slow_log_k`] requests by total
//!   latency as [`SlowRequest`] exemplars, readable via
//!   [`ModelService::slow_requests`] and the TCP `stats` op.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use stco_cells::encode::{CellGraph, FEATURE_DIM};
use stco_nn::gnn::GraphData;
use stco_store::{Artifact, ArtifactKey, Registry};
use stco_surrogate::cell_model::{BatchedCellGraph, CellModel, InferencePrecision, METRICS};
use stco_surrogate::encoding::{EDGE_DIM, NODE_DIM};
use stco_surrogate::iv_predictor::IvPredictor;
use stco_surrogate::poisson_emulator::PoissonEmulator;

use crate::{Result, ServeError};

/// Micro-batching queue parameters (per shard).
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Largest batch one worker pass executes.
    pub max_batch: usize,
    /// Longest the oldest request may wait before a partial batch runs.
    pub max_linger: Duration,
    /// Per-shard queue bound; submits beyond it fail with `QueueFull`.
    pub max_pending: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Duration,
    /// Deterministic trace sampling: requests whose trace id is a
    /// multiple of this emit a `serve.request` event with the full
    /// phase breakdown (`0` disables sampling entirely).
    pub trace_sample_n: u64,
    /// How many worst-latency exemplars the slow-request log keeps.
    pub slow_log_k: usize,
    /// Worker shards. `0` reads `STCO_SHARDS` (default 1).
    pub shards: usize,
    /// Shedding high watermark: a shard whose queue depth reaches this
    /// starts rejecting submits with `Overloaded`. `0` disables
    /// shedding.
    pub shed_high: usize,
    /// Shedding low watermark: a shedding shard readmits once its
    /// depth falls to this (hysteresis; clamped to `shed_high`).
    pub shed_low: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            max_batch: 32,
            max_linger: Duration::from_millis(1),
            max_pending: 1024,
            default_deadline: Duration::from_secs(5),
            trace_sample_n: 64,
            slow_log_k: 8,
            shards: 0,
            shed_high: 768,
            shed_low: 512,
        }
    }
}

/// One slow-request exemplar: the full phase breakdown of a request's
/// life in the service. `queue + assembly + forward + reply ≈ total`
/// (the phases the worker controls; `total` is enqueue → reply sent).
#[derive(Debug, Clone, PartialEq)]
pub struct SlowRequest {
    /// Trace id assigned at submit.
    pub trace_id: u64,
    /// Size of the batch this request executed in.
    pub batch_size: usize,
    /// Time from enqueue to batch drain (queue wait + linger).
    pub queue_seconds: f64,
    /// Time spent assembling the drained batch for execution.
    pub assembly_seconds: f64,
    /// Duration of the batch's stco-par forward pass.
    pub forward_seconds: f64,
    /// Time writing this request's reply to its channel.
    pub reply_seconds: f64,
    /// Total latency: enqueue → reply written.
    pub total_seconds: f64,
}

/// Worst-K log of [`SlowRequest`] exemplars. The hot path is one
/// relaxed atomic load when the candidate is faster than the current
/// K-th worst; only genuinely slow requests take the mutex.
struct SlowLog {
    k: usize,
    /// f64 bits of the admission threshold (the K-th worst total, or
    /// `-inf` while the log is not yet full).
    threshold_bits: AtomicU64,
    entries: Mutex<Vec<SlowRequest>>,
}

impl SlowLog {
    fn new(k: usize) -> Self {
        SlowLog {
            k,
            threshold_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            entries: Mutex::new(Vec::new()),
        }
    }

    fn record(&self, r: SlowRequest) {
        if self.k == 0
            || r.total_seconds <= f64::from_bits(self.threshold_bits.load(Ordering::Relaxed))
        {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        entries.push(r);
        entries.sort_by(|a, b| b.total_seconds.total_cmp(&a.total_seconds));
        entries.truncate(self.k);
        if entries.len() == self.k {
            if let Some(last) = entries.last() {
                self.threshold_bits
                    .store(last.total_seconds.to_bits(), Ordering::Relaxed);
            }
        }
    }

    fn worst(&self) -> Vec<SlowRequest> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }
}

/// Reads the `STCO_PRECISION` environment variable: `f32` opts a
/// freshly loaded cell model into the bounded-error fast-inference path
/// (DESIGN.md §15); anything else — including unset — keeps the
/// bitwise-deterministic `f64` default.
fn precision_from_env() -> InferencePrecision {
    match std::env::var("STCO_PRECISION") {
        Ok(v) if v.eq_ignore_ascii_case("f32") => InferencePrecision::F32,
        _ => InferencePrecision::F64,
    }
}

/// Reads `STCO_SHARDS` (default 1, capped at 64 — far above any sane
/// shard count for one process).
fn shards_from_env() -> usize {
    std::env::var("STCO_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
        .min(64)
}

/// A model rehydrated from an artifact, ready to answer predictions.
#[derive(Debug)]
pub enum LoadedModel {
    /// GCN cell-characterization model.
    Cell(CellModel),
    /// RelGAT Poisson emulator.
    Poisson(PoissonEmulator),
    /// RelGAT IV predictor.
    Iv(IvPredictor),
}

impl LoadedModel {
    /// Rehydrates whichever model kind the artifact holds.
    ///
    /// # Errors
    ///
    /// [`stco_store::StoreError::WrongKind`] for artifact kinds that
    /// are not servable models, plus any rehydration failure.
    pub fn from_artifact(
        artifact: &Artifact,
    ) -> std::result::Result<LoadedModel, stco_store::StoreError> {
        match artifact.kind.as_str() {
            CellModel::ARTIFACT_KIND => {
                let mut model = CellModel::from_artifact(artifact)?;
                model.set_precision(precision_from_env());
                Ok(LoadedModel::Cell(model))
            }
            PoissonEmulator::ARTIFACT_KIND => Ok(LoadedModel::Poisson(
                PoissonEmulator::from_artifact(artifact)?,
            )),
            IvPredictor::ARTIFACT_KIND => {
                Ok(LoadedModel::Iv(IvPredictor::from_artifact(artifact)?))
            }
            other => Err(stco_store::StoreError::WrongKind {
                expected: "a servable model kind".to_string(),
                found: other.to_string(),
            }),
        }
    }

    /// The artifact kind this model was loaded from.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            LoadedModel::Cell(_) => CellModel::ARTIFACT_KIND,
            LoadedModel::Poisson(_) => PoissonEmulator::ARTIFACT_KIND,
            LoadedModel::Iv(_) => IvPredictor::ARTIFACT_KIND,
        }
    }

    /// Runs one prediction — the exact forward pass a direct
    /// `predict`/`predict_many` call runs, so the result is bitwise
    /// identical to in-process inference.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] when the payload does not fit the
    /// model (wrong task, inconsistent shapes, out-of-range indices).
    pub fn predict(&self, input: &PredictInput) -> Result<Vec<f64>> {
        input.validate()?;
        match (self, input) {
            (LoadedModel::Cell(model), PredictInput::Cell { graph, metrics }) => {
                Ok(model.predict_many(graph, metrics))
            }
            (LoadedModel::Poisson(model), PredictInput::Poisson { graph }) => {
                Ok(model.predict_graph(graph))
            }
            (LoadedModel::Iv(model), PredictInput::Iv { graph }) => {
                Ok(vec![model.predict_log_current_graph(graph)])
            }
            _ => Err(ServeError::BadInput {
                context: format!(
                    "input task {:?} does not match model kind {:?}",
                    input.task(),
                    self.kind()
                ),
            }),
        }
    }
}

/// One predict request payload.
#[derive(Debug, Clone)]
pub enum PredictInput {
    /// Cell-metric prediction over a Table III cell graph.
    Cell {
        /// The encoded cell graph.
        graph: CellGraph,
        /// Metric indices to read (into `METRICS`).
        metrics: Vec<usize>,
    },
    /// Per-node potential map over an encoded device graph.
    Poisson {
        /// The encoded device graph (Poisson task features).
        graph: GraphData,
    },
    /// `log₁₀|I_D|` over an encoded device graph.
    Iv {
        /// The encoded device graph (IV task features).
        graph: GraphData,
    },
}

impl PredictInput {
    /// Short task tag (the wire `task` field).
    #[must_use]
    pub fn task(&self) -> &'static str {
        match self {
            PredictInput::Cell { .. } => "cell",
            PredictInput::Poisson { .. } => "poisson",
            PredictInput::Iv { .. } => "iv",
        }
    }

    /// Validates internal consistency (shapes, index ranges).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] with a description of the violation.
    pub fn validate(&self) -> Result<()> {
        let bad = |context: String| Err(ServeError::BadInput { context });
        match self {
            PredictInput::Cell { graph, metrics } => {
                let n = graph.num_nodes();
                if graph.features.len() != n * FEATURE_DIM {
                    return bad(format!(
                        "cell graph has {} feature values for {n} nodes (want {})",
                        graph.features.len(),
                        n * FEATURE_DIM
                    ));
                }
                if graph.labels.len() != n {
                    return bad(format!("{} labels for {n} nodes", graph.labels.len()));
                }
                if n == 0 {
                    return bad("empty cell graph".to_string());
                }
                if let Some((s, d)) = graph.edges.iter().find(|(s, d)| *s >= n || *d >= n) {
                    return bad(format!("edge ({s},{d}) out of range for {n} nodes"));
                }
                if metrics.is_empty() {
                    return bad("no metrics requested".to_string());
                }
                if let Some(m) = metrics.iter().find(|m| **m >= METRICS.len()) {
                    return bad(format!("metric index {m} out of range"));
                }
                Ok(())
            }
            PredictInput::Poisson { graph } | PredictInput::Iv { graph } => {
                let n = graph.num_nodes();
                if n == 0 {
                    return bad("empty device graph".to_string());
                }
                if graph.node_features.cols() != NODE_DIM {
                    return bad(format!(
                        "device graph has node dim {} (want {NODE_DIM})",
                        graph.node_features.cols()
                    ));
                }
                if graph.edge_features.rows() != graph.edges.len()
                    || graph.edge_features.cols() != EDGE_DIM
                {
                    return bad(format!(
                        "edge features are {}×{} for {} edges (want {}×{EDGE_DIM})",
                        graph.edge_features.rows(),
                        graph.edge_features.cols(),
                        graph.edges.len(),
                        graph.edges.len()
                    ));
                }
                if let Some((s, d)) = graph.edges.iter().find(|(s, d)| *s >= n || *d >= n) {
                    return bad(format!("edge ({s},{d}) out of range for {n} nodes"));
                }
                Ok(())
            }
        }
    }
}

/// Where a request's reply goes: a channel for blocking submitters, a
/// callback for the nonblocking TCP multiplexer (invoked on the shard
/// worker thread — or inline on admission rejection).
pub enum ReplyTo {
    /// Blocking submitter parked on an mpsc receiver.
    Channel(mpsc::Sender<Result<Vec<f64>>>),
    /// Completion callback (the mux's out-buffer writer).
    Callback(Box<dyn FnOnce(Result<Vec<f64>>) + Send>),
}

impl ReplyTo {
    fn deliver(self, result: Result<Vec<f64>>) {
        match self {
            // A disconnected receiver means the submitter gave up; drop.
            ReplyTo::Channel(tx) => drop(tx.send(result)),
            ReplyTo::Callback(f) => f(result),
        }
    }
}

struct Pending {
    trace_id: u64,
    model: Arc<LoadedModel>,
    input: PredictInput,
    enqueued: Instant,
    deadline: Instant,
    reply: ReplyTo,
}

struct ShardQueue {
    queue: VecDeque<Pending>,
    shutting_down: bool,
    draining: bool,
    shedding: bool,
    /// The worker is executing a drained batch (drain quiescence needs
    /// both an empty queue and an idle worker).
    busy: bool,
}

struct Shard {
    state: Mutex<ShardQueue>,
    cond: Condvar,
    /// Lock-free mirror of `state.queue.len()` for stats/gauges.
    depth: AtomicUsize,
}

/// FNV-1a 64-bit — stable, dependency-free, good enough dispersion for
/// ring placement.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    // FNV alone leaves the high bits under-mixed for strings that differ
    // only near the tail (one multiply cannot lift a small delta into
    // the top bits), which collapses the ring: finish with a murmur3-
    // style avalanche so nearby ids land far apart.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// Consistent-hash ring over the shard set: 64 virtual nodes per shard
/// sorted by hash; a model id routes to the first ring point at or
/// after its own hash (wrapping). Same id → same shard, always; adding
/// a shard moves only ~1/N of the id space.
struct HashRing {
    points: Vec<(u64, usize)>,
}

const VNODES_PER_SHARD: usize = 64;

impl HashRing {
    fn new(shards: usize) -> HashRing {
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                points.push((
                    fnv1a64(format!("shard-{shard}/vnode-{vnode}").as_bytes()),
                    shard,
                ));
            }
        }
        points.sort_unstable();
        HashRing { points }
    }

    fn route(&self, id: &str) -> usize {
        if self.points.len() <= VNODES_PER_SHARD {
            return 0;
        }
        let h = fnv1a64(id.as_bytes());
        let i = self.points.partition_point(|(p, _)| *p < h);
        self.points[i % self.points.len()].1
    }
}

struct Shared {
    batch: BatchConfig,
    next_trace: AtomicU64,
    slow: SlowLog,
    ring: HashRing,
    shards: Vec<Shard>,
}

fn lock_state(shard: &Shard) -> std::sync::MutexGuard<'_, ShardQueue> {
    // A panicking worker poisons the mutex; the queue data itself stays
    // consistent, so recover the guard rather than propagate.
    shard.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Refreshes the depth gauges from the per-shard mirrors:
/// `serve.queue_depth` is the total across shards,
/// `serve.shard_queue_depth` the hottest single shard.
fn update_depth_gauges(shared: &Shared) {
    let metrics = stco_obs::Recorder::global().metrics();
    let mut total = 0usize;
    let mut hottest = 0usize;
    for shard in &shared.shards {
        let d = shard.depth.load(Ordering::Relaxed);
        total += d;
        hottest = hottest.max(d);
    }
    metrics.gauge("serve.queue_depth").set(total as f64);
    metrics.gauge("serve.shard_queue_depth").set(hottest as f64);
}

/// One scenario leased to a remote sweep worker: its canonical index
/// and its content-address hex (the worker cross-checks both against
/// its locally expanded spec before evaluating).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeasedScenario {
    /// Canonical index in the expanded scenario list.
    pub index: usize,
    /// Scenario content address, 16-hex.
    pub id: String,
}

/// Snapshot of a sweep queue's progress, returned by the `sweep`
/// status action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepQueueStatus {
    /// Total scenarios in the spec.
    pub total: usize,
    /// Scenarios not yet leased or completed.
    pub pending: usize,
    /// Scenarios leased to a worker and awaiting completion.
    pub leased: usize,
    /// Scenarios with a journal record.
    pub completed: usize,
}

/// A distributed-sweep work queue the TCP `sweep` op fronts. The
/// canonical implementation lives in `stco-sweep` (which owns the
/// scenario journal); serve only routes lease/complete/status calls,
/// keeping the dependency arrow pointing sweep → serve.
pub trait SweepBackend: Send + Sync {
    /// Leases up to `max` pending scenarios to `worker`.
    fn lease(&self, worker: &str, max: usize) -> Vec<LeasedScenario>;

    /// Records a completed scenario by content-address hex with its
    /// `[delay, power, area, cost]` values. Returns `Ok(false)` when
    /// the scenario was already complete (idempotent re-delivery).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] on unknown scenarios or malformed
    /// values, [`ServeError::Store`] on journal write failures.
    fn complete(&self, scenario: &str, values: &[f64]) -> Result<bool>;

    /// Progress snapshot.
    fn status(&self) -> SweepQueueStatus;
}

/// The warm-cache, sharded micro-batching model service.
pub struct ModelService {
    registry: Option<Registry>,
    /// One warm model cache per shard — a model lives only in its home
    /// shard (the one its id routes to), so shard workers never share
    /// cache locks.
    models: Vec<RwLock<HashMap<String, Arc<LoadedModel>>>>,
    /// The attached distributed-sweep queue, if any.
    sweep: RwLock<Option<Arc<dyn SweepBackend>>>,
    shared: Arc<Shared>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ModelService {
    /// Starts a service (and its shard workers) over a registry.
    #[must_use]
    pub fn start(registry: Option<Registry>, batch: BatchConfig) -> Arc<ModelService> {
        let mut batch = batch;
        if batch.shards == 0 {
            batch.shards = shards_from_env();
        }
        batch.shed_low = batch.shed_low.min(batch.shed_high);
        let shards: Vec<Shard> = (0..batch.shards)
            .map(|_| Shard {
                state: Mutex::new(ShardQueue {
                    queue: VecDeque::new(),
                    shutting_down: false,
                    draining: false,
                    shedding: false,
                    busy: false,
                }),
                cond: Condvar::new(),
                depth: AtomicUsize::new(0),
            })
            .collect();
        let shared = Arc::new(Shared {
            batch,
            next_trace: AtomicU64::new(1),
            slow: SlowLog::new(batch.slow_log_k),
            ring: HashRing::new(batch.shards),
            shards,
        });
        // Register the shed counter up front so every metrics snapshot
        // carries it, sheds or not.
        let _ = stco_obs::Recorder::global()
            .metrics()
            .counter("serve.shed_total");
        let workers = (0..batch.shards)
            .filter_map(|idx| {
                let worker_shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("stco-serve-shard{idx}"))
                    .spawn(move || worker_loop(&worker_shared, idx))
                    .ok()
            })
            .collect();
        Arc::new(ModelService {
            registry,
            models: (0..batch.shards)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            sweep: RwLock::new(None),
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// Attaches a distributed-sweep queue; subsequent `sweep` wire ops
    /// route to it. Re-attaching replaces the previous queue.
    pub fn attach_sweep(&self, backend: Arc<dyn SweepBackend>) {
        let mut slot = self.sweep.write().unwrap_or_else(|e| e.into_inner());
        *slot = Some(backend);
    }

    /// The attached sweep queue, if any.
    #[must_use]
    pub fn sweep_backend(&self) -> Option<Arc<dyn SweepBackend>> {
        self.sweep.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// The canonical id a model is cached under: `<kind>:<key hex>`.
    #[must_use]
    pub fn model_id(kind: &str, key: ArtifactKey) -> String {
        format!("{kind}:{}", key.to_hex())
    }

    /// Number of worker shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shared.shards.len()
    }

    /// The shard a model id routes to (consistent hash over the
    /// content address).
    #[must_use]
    pub fn shard_for(&self, model_id: &str) -> usize {
        self.shared.ring.route(model_id)
    }

    /// Loads an artifact from the registry into its home shard's warm
    /// cache and returns its model id. A hit on an already-loaded id
    /// is free.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`] when the registry has no such
    /// artifact, [`ServeError::Store`] on read/decode failures.
    pub fn load(&self, kind: &str, key: ArtifactKey) -> Result<String> {
        let _span = stco_obs::span!("serve.load");
        let id = Self::model_id(kind, key);
        let shard = self.shard_for(&id);
        {
            let models = self.models[shard].read().unwrap_or_else(|e| e.into_inner());
            if models.contains_key(&id) {
                return Ok(id);
            }
        }
        let registry = self
            .registry
            .as_ref()
            .ok_or_else(|| ServeError::UnknownModel { id: id.clone() })?;
        let artifact = registry
            .load(kind, key)?
            .ok_or_else(|| ServeError::UnknownModel { id: id.clone() })?;
        let model = LoadedModel::from_artifact(&artifact)?;
        self.install(&id, model);
        stco_obs::event!("serve.model_loaded", model = id.as_str(), shard = shard);
        Ok(id)
    }

    /// Installs an in-memory model under an id (no registry round-trip
    /// — used by tests and single-process pipelines). The model lands
    /// in the shard its id routes to.
    pub fn install(&self, id: &str, model: LoadedModel) {
        let shard = self.shard_for(id);
        let mut models = self.models[shard]
            .write()
            .unwrap_or_else(|e| e.into_inner());
        models.insert(id.to_string(), Arc::new(model));
        drop(models);
        let mut total = 0usize;
        for m in &self.models {
            total += m.read().unwrap_or_else(|e| e.into_inner()).len();
        }
        stco_obs::Recorder::global()
            .metrics()
            .gauge("serve.models_loaded")
            .set(total as f64);
    }

    /// Ids of every loaded model across all shards, sorted.
    #[must_use]
    pub fn loaded(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .models
            .iter()
            .flat_map(|m| {
                m.read()
                    .unwrap_or_else(|e| e.into_inner())
                    .keys()
                    .cloned()
                    .collect::<Vec<String>>()
            })
            .collect();
        ids.sort();
        ids
    }

    /// Total pending-queue depth across all shards.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| s.depth.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard pending-queue depths, indexed by shard.
    #[must_use]
    pub fn shard_queue_depths(&self) -> Vec<usize> {
        self.shared
            .shards
            .iter()
            .map(|s| s.depth.load(Ordering::Relaxed))
            .collect()
    }

    /// The worst-latency request exemplars seen so far (most severe
    /// first, at most [`BatchConfig::slow_log_k`] entries), each with
    /// its full phase breakdown.
    #[must_use]
    pub fn slow_requests(&self) -> Vec<SlowRequest> {
        self.shared.slow.worst()
    }

    /// Submits one predict request and blocks until its reply.
    ///
    /// The request joins its shard's micro-batching queue; `deadline`
    /// bounds its total queue time (defaulting to
    /// [`BatchConfig::default_deadline`]).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownModel`], [`ServeError::QueueFull`],
    /// [`ServeError::Overloaded`], [`ServeError::Draining`],
    /// [`ServeError::DeadlineExceeded`], [`ServeError::ShuttingDown`],
    /// or [`ServeError::BadInput`] from execution.
    pub fn submit(
        &self,
        model_id: &str,
        input: PredictInput,
        deadline: Option<Duration>,
    ) -> Result<Vec<f64>> {
        let _span = stco_obs::span!("serve.submit");
        let (tx, rx) = mpsc::channel();
        self.enqueue(model_id, input, deadline, ReplyTo::Channel(tx));
        rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Submits one predict request without blocking: `complete` runs
    /// with the outcome — on the shard worker thread for executed
    /// requests, or inline (before this call returns) for admission
    /// rejections. The TCP multiplexer's I/O threads use this so a
    /// slow forward pass never parks an event loop.
    pub fn submit_async(
        &self,
        model_id: &str,
        input: PredictInput,
        deadline: Option<Duration>,
        complete: Box<dyn FnOnce(Result<Vec<f64>>) + Send>,
    ) {
        let _span = stco_obs::span!("serve.submit_async");
        self.enqueue(model_id, input, deadline, ReplyTo::Callback(complete));
    }

    /// Shared admission path: route, validate the model id, apply the
    /// admission-control stack, enqueue. Rejections are delivered
    /// through `reply` (and counted) rather than returned.
    fn enqueue(
        &self,
        model_id: &str,
        input: PredictInput,
        deadline: Option<Duration>,
        reply: ReplyTo,
    ) {
        let trace_id = self.shared.next_trace.fetch_add(1, Ordering::Relaxed);
        let metrics = stco_obs::Recorder::global().metrics();
        metrics.counter("serve.requests").inc();
        let shard_idx = self.shard_for(model_id);
        let model = {
            let models = self.models[shard_idx]
                .read()
                .unwrap_or_else(|e| e.into_inner());
            models.get(model_id).cloned()
        };
        let Some(model) = model else {
            reply.deliver(Err(ServeError::UnknownModel {
                id: model_id.to_string(),
            }));
            return;
        };
        let now = Instant::now();
        let deadline = now + deadline.unwrap_or(self.shared.batch.default_deadline);
        let shard = &self.shared.shards[shard_idx];
        let rejection = {
            let mut state = lock_state(shard);
            let verdict = admission_verdict(&mut state, &self.shared.batch, shard_idx);
            match verdict {
                Some(err) => Some((err, reply)),
                None => {
                    state.queue.push_back(Pending {
                        trace_id,
                        model,
                        input,
                        enqueued: now,
                        deadline,
                        reply,
                    });
                    shard.depth.store(state.queue.len(), Ordering::Relaxed);
                    None
                }
            }
        };
        match rejection {
            Some((err, reply)) => {
                metrics.counter("serve.errors").inc();
                if matches!(err, ServeError::Overloaded { .. }) {
                    metrics.counter("serve.shed_total").inc();
                }
                reply.deliver(Err(err));
            }
            None => {
                update_depth_gauges(&self.shared);
                shard.cond.notify_all();
            }
        }
    }

    /// Drains one shard for a hot restart: new submits to it get
    /// [`ServeError::Draining`] immediately, queued and in-flight
    /// requests complete, and the call returns once the shard is
    /// quiescent (queue empty, worker idle). Requests already drained
    /// into a running batch answer on their own channels.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] for an out-of-range shard index.
    pub fn drain_shard(&self, shard: usize) -> Result<()> {
        let _span = stco_obs::span!("serve.drain_shard", shard = shard);
        let Some(s) = self.shared.shards.get(shard) else {
            return Err(ServeError::BadInput {
                context: format!("shard {shard} out of range (have {})", self.shard_count()),
            });
        };
        let mut state = lock_state(s);
        state.draining = true;
        s.cond.notify_all();
        while !state.queue.is_empty() || state.busy {
            state = s.cond.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        stco_obs::event!("serve.shard_drained", shard = shard);
        Ok(())
    }

    /// Reopens a drained shard (clears the draining and shedding
    /// flags).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadInput`] for an out-of-range shard index.
    pub fn resume_shard(&self, shard: usize) -> Result<()> {
        let _span = stco_obs::span!("serve.resume_shard", shard = shard);
        let Some(s) = self.shared.shards.get(shard) else {
            return Err(ServeError::BadInput {
                context: format!("shard {shard} out of range (have {})", self.shard_count()),
            });
        };
        let mut state = lock_state(s);
        state.draining = false;
        state.shedding = false;
        drop(state);
        s.cond.notify_all();
        stco_obs::event!("serve.shard_resumed", shard = shard);
        Ok(())
    }

    /// Stops accepting requests, drains every shard queue (every
    /// accepted request is answered) and joins the workers.
    /// Idempotent.
    pub fn shutdown(&self) {
        for shard in &self.shared.shards {
            let mut state = lock_state(shard);
            state.shutting_down = true;
            drop(state);
            shard.cond.notify_all();
        }
        let handles: Vec<_> = {
            let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
            workers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// The admission-control stack for one submit, outermost check first:
/// shutdown, drain, hard queue bound, shedding hysteresis. `None`
/// admits; `Some(err)` rejects.
fn admission_verdict(
    state: &mut ShardQueue,
    batch: &BatchConfig,
    shard_idx: usize,
) -> Option<ServeError> {
    if state.shutting_down {
        return Some(ServeError::ShuttingDown);
    }
    if state.draining {
        return Some(ServeError::Draining { shard: shard_idx });
    }
    let depth = state.queue.len();
    if depth >= batch.max_pending {
        return Some(ServeError::QueueFull { depth });
    }
    if batch.shed_high > 0 {
        if !state.shedding && depth >= batch.shed_high {
            state.shedding = true;
        } else if state.shedding && depth <= batch.shed_low {
            state.shedding = false;
        }
        if state.shedding {
            return Some(ServeError::Overloaded { depth });
        }
    }
    None
}

impl Drop for ModelService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One shard's worker: waits for requests, forms batches under the
/// size/linger policy, executes them on the stco-par pool.
fn worker_loop(shared: &Shared, shard_idx: usize) {
    let metrics = stco_obs::Recorder::global().metrics();
    let size_bounds: Vec<f64> = (1..=shared.batch.max_batch).map(|n| n as f64).collect();
    let batch_size_hist = metrics.histogram("serve.batch_size", &size_bounds);
    let queue_wait_hist = metrics.histogram(
        "serve.queue_wait_seconds",
        &stco_obs::metrics::seconds_buckets(),
    );
    let latency = metrics.windowed_histogram(
        "serve.latency_seconds",
        &stco_obs::metrics::seconds_buckets(),
        stco_obs::WindowConfig::default(),
    );
    let deadline_counter = metrics.counter("serve.deadline_exceeded");
    let replies_counter = metrics.counter("serve.replies");
    let errors_counter = metrics.counter("serve.errors");
    let shard = &shared.shards[shard_idx];
    loop {
        // Phase 1: wait until a batch is due (full, lingered, or draining).
        let batch: Vec<Pending> = {
            let mut state = lock_state(shard);
            loop {
                if state.queue.is_empty() {
                    if state.shutting_down {
                        return;
                    }
                    state = shard.cond.wait(state).unwrap_or_else(|e| e.into_inner());
                    continue;
                }
                let full = state.queue.len() >= shared.batch.max_batch;
                let oldest = state
                    .queue
                    .front()
                    .map_or_else(Instant::now, |p| p.enqueued);
                let due = oldest + shared.batch.max_linger;
                let now = Instant::now();
                if full || state.shutting_down || state.draining || now >= due {
                    let take = state.queue.len().min(shared.batch.max_batch);
                    let drained: Vec<Pending> = state.queue.drain(..take).collect();
                    state.busy = true;
                    shard.depth.store(state.queue.len(), Ordering::Relaxed);
                    break drained;
                }
                let (next, _timeout) = shard
                    .cond
                    .wait_timeout(state, due - now)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
            }
        };
        update_depth_gauges(shared);

        let batch_size = batch.len();
        let _span = stco_obs::span!("serve.batch", shard = shard_idx, size = batch_size);
        batch_size_hist.observe(batch_size as f64);

        // Phase 2 (assembly): separate expired requests, lay the rest
        // out for one parallel pass. Reply sinks are kept aside (the
        // callback boxes are not Sync); the (model, input) pairs are.
        let drained = Instant::now();
        let mut work: Vec<(Arc<LoadedModel>, PredictInput)> = Vec::with_capacity(batch_size);
        let mut repliers: Vec<(ReplyTo, Instant, bool, u64)> = Vec::with_capacity(batch_size);
        for p in batch {
            let expired = drained > p.deadline;
            if !expired {
                work.push((p.model, p.input));
            }
            queue_wait_hist.observe(drained.duration_since(p.enqueued).as_secs_f64());
            repliers.push((p.reply, p.enqueued, expired, p.trace_id));
        }
        let assembled = Instant::now();
        let assembly_seconds = assembled.duration_since(drained).as_secs_f64();

        // Phase 3 (forward): the batched stco-par pass.
        let results = forward_batch(&work);
        let forward_seconds = assembled.elapsed().as_secs_f64();

        // Phase 4 (reply write): answer every request, then fold the
        // phase breakdown into the windowed latency histogram, the
        // sampled trace events and the slow-request log.
        let mut results = results.into_iter();
        for (reply, enqueued, expired, trace_id) in repliers {
            let outcome = if expired {
                deadline_counter.inc();
                Err(ServeError::DeadlineExceeded)
            } else {
                results.next().unwrap_or(Err(ServeError::ShuttingDown))
            };
            if outcome.is_err() {
                errors_counter.inc();
            } else {
                replies_counter.inc();
            }
            let reply_start = Instant::now();
            reply.deliver(outcome);
            let replied = Instant::now();
            let breakdown = SlowRequest {
                trace_id,
                batch_size,
                queue_seconds: drained.duration_since(enqueued).as_secs_f64(),
                assembly_seconds,
                forward_seconds,
                reply_seconds: replied.duration_since(reply_start).as_secs_f64(),
                total_seconds: replied.duration_since(enqueued).as_secs_f64(),
            };
            latency.observe(breakdown.total_seconds);
            if shared.batch.trace_sample_n > 0 && trace_id % shared.batch.trace_sample_n == 0 {
                stco_obs::event!(
                    "serve.request",
                    trace = trace_id,
                    shard = shard_idx,
                    batch = batch_size,
                    queue_s = breakdown.queue_seconds,
                    assembly_s = breakdown.assembly_seconds,
                    forward_s = breakdown.forward_seconds,
                    reply_s = breakdown.reply_seconds,
                    total_s = breakdown.total_seconds
                );
            }
            shared.slow.record(breakdown);
        }

        // Batch fully answered: clear busy and wake drain waiters.
        {
            let mut state = lock_state(shard);
            state.busy = false;
        }
        shard.cond.notify_all();
    }
}

/// One forward-pass unit of a drained batch: either a single request or
/// a group of cell-graph requests sharing a model.
enum ForwardTask {
    Single(usize),
    CellGroup(Vec<usize>),
}

/// Executes one drained batch. Cell-graph requests that share a model
/// are packed into one block-diagonal [`BatchedCellGraph`] and answered
/// by a single [`CellModel::predict_batch`] trunk evaluation — a few
/// large blocked GEMMs instead of one small GEMM chain per request.
/// Everything else (other model kinds, lone cell requests) runs its own
/// per-item forward. The output is indexed like `work`, and every value
/// is bitwise-identical to the per-item [`LoadedModel::predict`] result
/// under the default `f64` precision (DESIGN.md §15).
fn forward_batch(work: &[(Arc<LoadedModel>, PredictInput)]) -> Vec<Result<Vec<f64>>> {
    // Group cell items by model identity (Arc pointer): requests for
    // the same installed model share weights and can be packed.
    let mut cell_groups: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, (model, input)) in work.iter().enumerate() {
        if matches!(
            (model.as_ref(), input),
            (LoadedModel::Cell(_), PredictInput::Cell { .. })
        ) && input.validate().is_ok()
        {
            cell_groups
                .entry(Arc::as_ptr(model) as usize)
                .or_default()
                .push(i);
        }
    }
    // Order groups by first member so the task list is deterministic
    // regardless of allocator-dependent Arc pointer values.
    let mut groups: Vec<Vec<usize>> = cell_groups
        .into_values()
        .filter(|idxs| idxs.len() > 1)
        .collect();
    groups.sort_unstable_by_key(|idxs| idxs[0]);
    let mut tasks: Vec<ForwardTask> = Vec::new();
    let mut in_group = vec![false; work.len()];
    for idxs in groups {
        for &i in &idxs {
            in_group[i] = true;
        }
        tasks.push(ForwardTask::CellGroup(idxs));
    }
    for (i, grouped) in in_group.iter().enumerate() {
        if !grouped {
            tasks.push(ForwardTask::Single(i));
        }
    }
    let produced = stco_par::par_map(stco_par::ParConfig::current(), &tasks, |task| match task {
        ForwardTask::Single(i) => {
            let (model, input) = &work[*i];
            vec![(*i, model.predict(input))]
        }
        ForwardTask::CellGroup(idxs) => {
            let LoadedModel::Cell(cell) = work[idxs[0]].0.as_ref() else {
                return idxs
                    .iter()
                    .map(|&i| (i, work[i].0.predict(&work[i].1)))
                    .collect();
            };
            let mut graphs: Vec<&CellGraph> = Vec::with_capacity(idxs.len());
            let mut metric_lists: Vec<&[usize]> = Vec::with_capacity(idxs.len());
            for &i in idxs {
                let PredictInput::Cell { graph, metrics } = &work[i].1 else {
                    return idxs
                        .iter()
                        .map(|&i| (i, work[i].0.predict(&work[i].1)))
                        .collect();
                };
                graphs.push(graph);
                metric_lists.push(metrics.as_slice());
            }
            let packed = BatchedCellGraph::pack(&graphs);
            let outs = cell.predict_batch(&packed, &metric_lists);
            idxs.iter().copied().zip(outs.into_iter().map(Ok)).collect()
        }
    });
    // Every index is covered by exactly one task; the placeholder only
    // survives if a task were somehow dropped.
    let mut results: Vec<Result<Vec<f64>>> =
        work.iter().map(|_| Err(ServeError::ShuttingDown)).collect();
    for pairs in produced {
        for (i, r) in pairs {
            results[i] = r;
        }
    }
    results
}
