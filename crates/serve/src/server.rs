//! The std-only TCP front end: a thin handle over the readiness-loop
//! connection multiplexer in [`crate::mux`].
//!
//! [`TcpServer::start`] binds, spins up the acceptor and the fixed I/O
//! event-thread pool, and serves the shared [`ModelService`]. Malformed
//! frames get a typed error reply (`code: "malformed-frame"`); the
//! connection stays usable while the stream is still frame-aligned and
//! closes (after the reply) when a corrupt length prefix desyncs it.
//!
//! A wire `shutdown` request (or [`TcpServer::stop`]) stops accepting,
//! flushes pending replies, and drains the service queues so every
//! accepted request is answered before exit.

use std::sync::Arc;

use crate::mux::{Multiplexer, MuxConfig};
use crate::service::ModelService;
use crate::Result;

/// A running TCP server.
pub struct TcpServer {
    mux: Arc<Multiplexer>,
}

impl TcpServer {
    /// Binds `bind` (use port 0 for an ephemeral port) and starts
    /// serving `service` with default multiplexer tuning.
    ///
    /// # Errors
    ///
    /// [`crate::ServeError::Io`] if the bind fails.
    pub fn start(bind: &str, service: Arc<ModelService>) -> Result<Arc<TcpServer>> {
        Self::start_with(bind, service, MuxConfig::default())
    }

    /// [`TcpServer::start`] with explicit multiplexer tuning.
    ///
    /// # Errors
    ///
    /// [`crate::ServeError::Io`] if the bind fails.
    pub fn start_with(
        bind: &str,
        service: Arc<ModelService>,
        config: MuxConfig,
    ) -> Result<Arc<TcpServer>> {
        let mux = Multiplexer::start(bind, service, config)?;
        Ok(Arc::new(TcpServer { mux }))
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.mux.addr()
    }

    /// Whether a shutdown has been requested.
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.mux.stopping()
    }

    /// Blocks until the server stops (via [`TcpServer::stop`] or a
    /// `shutdown` request). Safe to call from the main thread of a
    /// server binary.
    pub fn wait(&self) {
        self.mux.wait();
    }

    /// Requests shutdown: stops accepting, flushes pending replies,
    /// then drains the service queues. Idempotent; returns once the
    /// front end has wound down.
    pub fn stop(&self) {
        self.mux.stop();
    }
}
