//! The std-only TCP front end.
//!
//! One accept-loop thread plus one thread per connection. Each
//! connection reads frames, dispatches them against the shared
//! [`ModelService`], and writes one reply frame per request. Malformed
//! frames get a typed error reply (`code: "malformed-frame"`) and the
//! connection stays usable when the stream is still frame-aligned.
//!
//! A `shutdown` request (or [`TcpServer::stop`]) flips the stop flag,
//! unblocks the acceptor with a self-connection, then drains the
//! service queue so every accepted request is answered before exit.

use std::io::{BufReader, BufWriter};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::protocol::{read_frame, write_frame, Reply, Request, ServerStats};
use crate::service::ModelService;
use crate::{Result, ServeError};

/// A running TCP server.
pub struct TcpServer {
    service: Arc<ModelService>,
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TcpServer {
    /// Binds `bind` (use port 0 for an ephemeral port) and starts
    /// accepting connections against `service`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the bind fails.
    pub fn start(bind: &str, service: Arc<ModelService>) -> Result<Arc<TcpServer>> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let server = Arc::new(TcpServer {
            service,
            addr,
            stop,
            acceptor: Mutex::new(None),
        });
        let accept_server = Arc::clone(&server);
        let handle = std::thread::Builder::new()
            .name("stco-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_server))
            .map_err(ServeError::Io)?;
        {
            let mut acceptor = server.acceptor.lock().unwrap_or_else(|e| e.into_inner());
            *acceptor = Some(handle);
        }
        stco_obs::event!("serve.listening", addr = addr.to_string());
        Ok(server)
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Whether a shutdown has been requested.
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Blocks until the server stops (via [`TcpServer::stop`] or a
    /// `shutdown` request). Safe to call from the main thread of a
    /// server binary.
    pub fn wait(&self) {
        let handle = {
            let mut acceptor = self.acceptor.lock().unwrap_or_else(|e| e.into_inner());
            acceptor.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Requests shutdown: stops accepting, then drains the service
    /// queue. Idempotent; returns once the acceptor has exited.
    pub fn stop(&self) {
        let first = !self.stop.swap(true, Ordering::SeqCst);
        if first {
            // Unblock the blocking accept() with a throwaway connection.
            if let Ok(conn) = TcpStream::connect(self.addr) {
                drop(conn);
            }
        }
        let handle = {
            let mut acceptor = self.acceptor.lock().unwrap_or_else(|e| e.into_inner());
            acceptor.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
        self.service.shutdown();
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, server: &Arc<TcpServer>) {
    let mut conn_handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if server.stopping() {
            break;
        }
        let Ok(stream) = stream else { continue };
        let conn_server = Arc::clone(server);
        let spawned = std::thread::Builder::new()
            .name("stco-serve-conn".to_string())
            .spawn(move || {
                serve_connection(stream, &conn_server);
            });
        if let Ok(handle) = spawned {
            conn_handles.push(handle);
        }
        conn_handles.retain(|h| !h.is_finished());
    }
    for handle in conn_handles {
        let _ = handle.join();
    }
}

fn serve_connection(stream: TcpStream, server: &Arc<TcpServer>) {
    let _span = stco_obs::span!("serve.connection");
    // Short read timeout so connection threads notice a stop request
    // even while idle in read_frame.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(Some(doc)) => doc,
            Ok(None) => return,
            Err(ServeError::Io(e))
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if server.stopping() {
                    return;
                }
                continue;
            }
            Err(e @ ServeError::Protocol { .. }) => {
                // Typed error back; the stream may be unframed now, so
                // reply and close rather than guess at realignment.
                let _ = write_frame(&mut writer, &Reply::from_error(&e).to_json());
                return;
            }
            Err(_) => return,
        };
        let reply = match Request::from_json(&frame) {
            Ok(request) => dispatch(server, request),
            Err(e) => Reply::from_error(&e),
        };
        let closing = matches!(reply, Reply::ShuttingDown);
        if write_frame(&mut writer, &reply.to_json()).is_err() {
            return;
        }
        if closing {
            return;
        }
    }
}

fn dispatch(server: &Arc<TcpServer>, request: Request) -> Reply {
    match request {
        Request::Ping => Reply::Pong,
        Request::Stats => {
            let metrics = stco_obs::Recorder::global().metrics();
            Reply::Stats(ServerStats {
                queue_depth: server.service.queue_depth(),
                loaded: server.service.loaded(),
                requests: metrics.counter("serve.requests").get(),
                replies: metrics.counter("serve.replies").get(),
                errors: metrics.counter("serve.errors").get(),
                deadline_exceeded: metrics.counter("serve.deadline_exceeded").get(),
                slow_requests: server.service.slow_requests(),
            })
        }
        Request::Metrics => {
            let snaps = stco_obs::Recorder::global().metrics().snapshot();
            Reply::Metrics {
                snapshot: stco_obs::snapshot_json(&snaps),
                text: stco_obs::prometheus_text(&snaps),
            }
        }
        Request::Load { kind, key } => match server.service.load(&kind, key) {
            Ok(model) => Reply::Loaded { model },
            Err(e) => Reply::from_error(&e),
        },
        Request::Shutdown => {
            // Flip the flag and unblock the acceptor from a detached
            // thread — stop() joins the acceptor, and the acceptor may
            // be joining *this* connection thread.
            let stopper = Arc::clone(server);
            let _ = std::thread::Builder::new()
                .name("stco-serve-stop".to_string())
                .spawn(move || stopper.stop());
            Reply::ShuttingDown
        }
        Request::Predict {
            model,
            input,
            deadline_ms,
        } => {
            let deadline = deadline_ms.map(Duration::from_millis);
            match server.service.submit(&model, input, deadline) {
                Ok(values) => Reply::Values(values),
                Err(e) => Reply::from_error(&e),
            }
        }
    }
}
