//! Closed-loop load generation against a running serve endpoint.
//!
//! [`run_sweep`] drives a concurrency sweep: for each step it spawns
//! `concurrency` closed-loop workers (each with its own TCP
//! connection, firing the next request as soon as the previous reply
//! lands) and measures client-side latency per request.
//!
//! # Steady-state measurement
//!
//! Work scales **with** concurrency: every worker runs
//! [`SweepConfig::warmup_per_conn`] unmeasured requests, synchronizes
//! on a barrier, then runs [`SweepConfig::requests_per_conn`] measured
//! requests; the step's wall clock is barrier-to-barrier. The warmup
//! puts connections, shard queues and batch formation in steady state
//! before the clock starts, and the per-connection request count keeps
//! the measured window's duration roughly constant as concurrency
//! grows — a fixed *total* budget would shrink the window until
//! startup/teardown noise dominated, making offered throughput appear
//! to fall at high concurrency.
//!
//! Each step reports:
//!
//! * **achieved throughput** — completed requests over the step's wall
//!   clock;
//! * **offered throughput** — the closed-loop ideal `concurrency /
//!   mean latency` (Little's law); the gap between offered and
//!   achieved shows queueing/coordination overhead;
//! * **client-side p50/p99** — exact order statistics over the step's
//!   per-request latencies (not bucketed);
//! * **sheds** — requests the server refused with the typed
//!   `overloaded` / `queue-full` admission replies. Shedding is the
//!   server protecting its latency, so sheds are tallied separately
//!   from errors;
//! * **server-side rolling p99** — the `serve.latency_seconds`
//!   windowed histogram, fetched over the wire via the `metrics` op
//!   right after the step. Client and server views are measured
//!   independently, so the harness can cross-check them.
//!
//! The client quantiles are exact; the server quantile interpolates
//! inside histogram buckets and only covers the service's
//! enqueue→reply span (no TCP framing), so the two agree only within
//! a tolerance — see `DESIGN.md` §13 for the documented bound.

use std::sync::Barrier;
use std::time::Instant;

use stco_obs::json::JsonValue;

use crate::client::Client;
use crate::service::PredictInput;
use crate::{Result, ServeError};

/// One concurrency sweep against a serve endpoint.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Server address, e.g. `"127.0.0.1:7878"`.
    pub addr: String,
    /// Loaded model id to predict against.
    pub model: String,
    /// Request payloads, cycled round-robin across the sweep.
    pub inputs: Vec<PredictInput>,
    /// Concurrency levels, one step per entry (typically increasing).
    pub steps: Vec<usize>,
    /// Measured requests **per worker connection** — total per-step
    /// work is `concurrency × requests_per_conn`, so the measured
    /// window stays roughly constant as concurrency grows.
    pub requests_per_conn: usize,
    /// Unmeasured warm-up requests per worker before the clock starts.
    pub warmup_per_conn: usize,
    /// Per-request deadline forwarded to the server.
    pub deadline_ms: Option<u64>,
}

/// Measurements from one concurrency step of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadStep {
    /// Closed-loop workers driving this step.
    pub concurrency: usize,
    /// Requests that completed successfully.
    pub ok: usize,
    /// Requests that failed (typed server errors or transport),
    /// excluding sheds.
    pub errors: usize,
    /// Requests the server shed with the typed `overloaded` /
    /// `queue-full` admission replies.
    pub shed: usize,
    /// Step wall-clock in seconds (barrier-to-barrier, warmup
    /// excluded).
    pub wall_seconds: f64,
    /// `concurrency / mean latency` — the closed-loop offered rate.
    pub offered_rps: f64,
    /// `ok / wall_seconds` — what the server actually absorbed.
    pub achieved_rps: f64,
    /// Exact client-side median latency (seconds).
    pub client_p50_seconds: f64,
    /// Exact client-side 99th-percentile latency (seconds).
    pub client_p99_seconds: f64,
    /// Client-side mean latency (seconds).
    pub client_mean_seconds: f64,
    /// Server-side rolling-window p99 from `serve.latency_seconds`,
    /// fetched via the `metrics` op after the step (None if the
    /// window was empty or the metric absent).
    pub server_window_p99_seconds: Option<f64>,
}

/// Exact linear-interpolated quantile of an ascending-sorted sample.
/// Returns `None` on an empty sample.
#[must_use]
pub fn exact_quantile(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Pulls the rolling-window p99 of `serve.latency_seconds` out of a
/// `metrics`-op JSON snapshot. `None` when the metric is missing or
/// its window is empty.
#[must_use]
pub fn window_p99_from_snapshot(snapshot: &JsonValue) -> Option<f64> {
    let JsonValue::Arr(entries) = snapshot.get("metrics")? else {
        return None;
    };
    let latency = entries
        .iter()
        .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("serve.latency_seconds"))?;
    latency
        .get("window")?
        .get("p99")
        .and_then(JsonValue::as_f64)
}

/// Whether a predict failure is the server *shedding* (typed admission
/// rejects) rather than erroring.
fn is_shed(e: &ServeError) -> bool {
    matches!(e, ServeError::Remote { code, .. } if code == "overloaded" || code == "queue-full")
}

/// Runs the full concurrency sweep, one [`LoadStep`] per entry in
/// [`SweepConfig::steps`].
///
/// # Errors
///
/// [`ServeError::Io`] if a worker cannot connect (or dies mid-step),
/// or [`ServeError::Protocol`] on a malformed reply from the admin
/// `metrics` probe. Per-request predict failures do *not* abort the
/// sweep — they land in [`LoadStep::errors`] (or [`LoadStep::shed`]
/// for typed admission rejects).
pub fn run_sweep(config: &SweepConfig) -> Result<Vec<LoadStep>> {
    let _span = stco_obs::span!(
        "serve.load_sweep",
        steps = config.steps.len(),
        requests_per_conn = config.requests_per_conn,
        warmup_per_conn = config.warmup_per_conn
    );
    if config.inputs.is_empty() {
        return Err(ServeError::BadInput {
            context: "load sweep needs at least one input payload".to_string(),
        });
    }
    let mut admin = Client::connect(&config.addr)?;
    let mut out = Vec::with_capacity(config.steps.len());
    for &concurrency in &config.steps {
        let step = run_step(config, concurrency.max(1), &mut admin)?;
        stco_obs::event!(
            "serve.load_step",
            concurrency = step.concurrency,
            ok = step.ok,
            errors = step.errors,
            shed = step.shed,
            achieved_rps = step.achieved_rps,
            client_p99_s = step.client_p99_seconds
        );
        out.push(step);
    }
    Ok(out)
}

/// Per-worker step outcome; `dead` marks a connect failure or panic so
/// the step surfaces a sweep error instead of undercounting.
struct WorkerOutcome {
    latencies: Vec<f64>,
    errors: usize,
    shed: usize,
    dead: bool,
}

fn run_step(config: &SweepConfig, concurrency: usize, admin: &mut Client) -> Result<LoadStep> {
    // Two synchronization points, everyone (workers + coordinator)
    // hits both: end of warmup (clock starts) and end of measured work
    // (clock stops). Workers that fail to connect still hit the
    // barriers so nobody deadlocks.
    let barrier = Barrier::new(concurrency + 1);
    let (wall, outcomes): (f64, Vec<WorkerOutcome>) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|_| {
                let barrier = &barrier;
                scope.spawn(move || {
                    let mut outcome = WorkerOutcome {
                        latencies: Vec::with_capacity(config.requests_per_conn),
                        errors: 0,
                        shed: 0,
                        dead: false,
                    };
                    let mut client = match Client::connect(&config.addr) {
                        Ok(client) => Some(client),
                        Err(_) => {
                            outcome.dead = true;
                            None
                        }
                    };
                    if let Some(client) = client.as_mut() {
                        for i in 0..config.warmup_per_conn {
                            let input = &config.inputs[i % config.inputs.len()];
                            // Warmup outcomes are discarded — only
                            // steady-state requests are measured.
                            let _ = client.predict(&config.model, input, config.deadline_ms);
                        }
                    }
                    barrier.wait();
                    if let Some(client) = client.as_mut() {
                        for i in 0..config.requests_per_conn {
                            let input = &config.inputs[i % config.inputs.len()];
                            let sent = Instant::now();
                            match client.predict(&config.model, input, config.deadline_ms) {
                                Ok(_) => outcome.latencies.push(sent.elapsed().as_secs_f64()),
                                Err(e) if is_shed(&e) => outcome.shed += 1,
                                Err(_) => outcome.errors += 1,
                            }
                        }
                    }
                    barrier.wait();
                    outcome
                })
            })
            .collect();
        barrier.wait();
        let t0 = Instant::now();
        barrier.wait();
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        let outcomes = handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or(WorkerOutcome {
                    latencies: Vec::new(),
                    errors: 0,
                    shed: 0,
                    dead: true,
                })
            })
            .collect();
        (wall, outcomes)
    });

    if outcomes.iter().any(|o| o.dead) {
        return Err(ServeError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            "load worker could not connect or died mid-step",
        )));
    }
    let mut latencies: Vec<f64> = Vec::with_capacity(concurrency * config.requests_per_conn);
    let mut errors = 0usize;
    let mut shed = 0usize;
    for mut outcome in outcomes {
        latencies.append(&mut outcome.latencies);
        errors += outcome.errors;
        shed += outcome.shed;
    }
    latencies.sort_by(f64::total_cmp);
    let ok = latencies.len();
    let mean = if ok == 0 {
        0.0
    } else {
        latencies.iter().sum::<f64>() / ok as f64
    };
    let (snapshot, _text) = admin.metrics()?;
    Ok(LoadStep {
        concurrency,
        ok,
        errors,
        shed,
        wall_seconds: wall,
        offered_rps: if mean > 0.0 {
            concurrency as f64 / mean
        } else {
            0.0
        },
        achieved_rps: ok as f64 / wall,
        client_p50_seconds: exact_quantile(&latencies, 0.50).unwrap_or(0.0),
        client_p99_seconds: exact_quantile(&latencies, 0.99).unwrap_or(0.0),
        client_mean_seconds: mean,
        server_window_p99_seconds: window_p99_from_snapshot(&snapshot),
    })
}

/// Renders a sweep as the `BENCH_serving.json` document
/// (`stco-serving-curve/v2` schema): top-level run facts — thread
/// count, worker shard count, whether the f64 bitwise gate applies —
/// plus one object per step, including its shed count.
#[must_use]
pub fn sweep_to_json(
    threads: usize,
    shards: usize,
    bitwise_identical: bool,
    steps: &[LoadStep],
) -> JsonValue {
    let steps_json: Vec<JsonValue> = steps
        .iter()
        .map(|s| {
            let mut fields = vec![
                (
                    "concurrency".to_string(),
                    JsonValue::Num(s.concurrency as f64),
                ),
                ("ok".to_string(), JsonValue::Num(s.ok as f64)),
                ("errors".to_string(), JsonValue::Num(s.errors as f64)),
                ("shed".to_string(), JsonValue::Num(s.shed as f64)),
                ("wall_seconds".to_string(), JsonValue::Num(s.wall_seconds)),
                ("offered_rps".to_string(), JsonValue::Num(s.offered_rps)),
                ("achieved_rps".to_string(), JsonValue::Num(s.achieved_rps)),
                (
                    "client_p50_seconds".to_string(),
                    JsonValue::Num(s.client_p50_seconds),
                ),
                (
                    "client_p99_seconds".to_string(),
                    JsonValue::Num(s.client_p99_seconds),
                ),
                (
                    "client_mean_seconds".to_string(),
                    JsonValue::Num(s.client_mean_seconds),
                ),
            ];
            fields.push((
                "server_window_p99_seconds".to_string(),
                s.server_window_p99_seconds
                    .map_or(JsonValue::Null, JsonValue::Num),
            ));
            JsonValue::Obj(fields)
        })
        .collect();
    JsonValue::Obj(vec![
        (
            "schema".to_string(),
            JsonValue::Str("stco-serving-curve/v2".to_string()),
        ),
        ("threads".to_string(), JsonValue::Num(threads as f64)),
        ("shards".to_string(), JsonValue::Num(shards as f64)),
        (
            "bitwise_identical".to_string(),
            JsonValue::Bool(bitwise_identical),
        ),
        ("steps".to_string(), JsonValue::Arr(steps_json)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quantile_empty_is_none() {
        assert_eq!(exact_quantile(&[], 0.5), None);
    }

    #[test]
    fn exact_quantile_single_sample() {
        assert_eq!(exact_quantile(&[0.25], 0.0), Some(0.25));
        assert_eq!(exact_quantile(&[0.25], 0.99), Some(0.25));
    }

    #[test]
    fn exact_quantile_interpolates() {
        let sorted = [0.0, 1.0, 2.0, 3.0];
        assert_eq!(exact_quantile(&sorted, 0.0), Some(0.0));
        assert_eq!(exact_quantile(&sorted, 1.0), Some(3.0));
        assert_eq!(exact_quantile(&sorted, 0.5), Some(1.5));
        let p99 = exact_quantile(&sorted, 0.99).unwrap_or(f64::NAN);
        assert!((p99 - 2.97).abs() < 1e-12, "p99 was {p99}");
    }

    #[test]
    fn exact_quantile_clamps_q() {
        let sorted = [1.0, 2.0];
        assert_eq!(exact_quantile(&sorted, -1.0), Some(1.0));
        assert_eq!(exact_quantile(&sorted, 2.0), Some(2.0));
    }

    #[test]
    fn window_p99_extraction() {
        let snapshot = JsonValue::Obj(vec![(
            "metrics".to_string(),
            JsonValue::Arr(vec![JsonValue::Obj(vec![
                (
                    "name".to_string(),
                    JsonValue::Str("serve.latency_seconds".to_string()),
                ),
                (
                    "window".to_string(),
                    JsonValue::Obj(vec![("p99".to_string(), JsonValue::Num(0.042))]),
                ),
            ])]),
        )]);
        assert_eq!(window_p99_from_snapshot(&snapshot), Some(0.042));
        assert_eq!(window_p99_from_snapshot(&JsonValue::Obj(vec![])), None);
    }

    #[test]
    fn shed_classification_covers_both_admission_codes() {
        let overloaded = ServeError::Remote {
            code: "overloaded".to_string(),
            message: String::new(),
        };
        let queue_full = ServeError::Remote {
            code: "queue-full".to_string(),
            message: String::new(),
        };
        let other = ServeError::Remote {
            code: "bad-input".to_string(),
            message: String::new(),
        };
        assert!(is_shed(&overloaded));
        assert!(is_shed(&queue_full));
        assert!(!is_shed(&other));
        assert!(!is_shed(&ServeError::DeadlineExceeded));
    }

    #[test]
    fn sweep_json_has_schema_and_steps() {
        let steps = vec![LoadStep {
            concurrency: 8,
            ok: 64,
            errors: 0,
            shed: 3,
            wall_seconds: 0.5,
            offered_rps: 130.0,
            achieved_rps: 128.0,
            client_p50_seconds: 0.01,
            client_p99_seconds: 0.05,
            client_mean_seconds: 0.015,
            server_window_p99_seconds: Some(0.048),
        }];
        let doc = sweep_to_json(4, 2, true, &steps);
        assert_eq!(
            doc.get("schema").and_then(JsonValue::as_str),
            Some("stco-serving-curve/v2")
        );
        assert_eq!(doc.get("threads").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(doc.get("shards").and_then(JsonValue::as_u64), Some(2));
        let rendered_len = match doc.get("steps") {
            Some(JsonValue::Arr(rendered)) => {
                assert_eq!(
                    rendered
                        .first()
                        .and_then(|s| s.get("concurrency"))
                        .and_then(JsonValue::as_u64),
                    Some(8)
                );
                assert_eq!(
                    rendered
                        .first()
                        .and_then(|s| s.get("shed"))
                        .and_then(JsonValue::as_u64),
                    Some(3)
                );
                rendered.len()
            }
            _ => 0,
        };
        assert_eq!(rendered_len, 1);
        // The document must survive a render/parse cycle.
        let reparsed = JsonValue::parse(&doc.render()).ok();
        assert_eq!(
            reparsed
                .as_ref()
                .and_then(|d| d.get("steps"))
                .and_then(|s| match s {
                    JsonValue::Arr(a) => a.first(),
                    _ => None,
                })
                .and_then(|s| s.get("client_p99_seconds"))
                .and_then(JsonValue::as_f64),
            Some(0.05)
        );
    }
}
