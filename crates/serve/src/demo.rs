//! A tiny, deterministic "demo" cell model used by the quickstart bins
//! and the CI serving-smoke job: small enough to train in well under a
//! second, real enough to exercise the full export → registry → serve
//! path.

use stco_cells::encode::{encode_cell, CellGraph, EncodingContext};
use stco_cells::library::{CellKind, CellType};
use stco_compact::tech::TechnologyCard;
use stco_nn::train::TrainConfig;
use stco_store::ArtifactKey;
use stco_surrogate::cell_model::{CellModel, CellModelConfig, CellSample, METRICS};
use stco_surrogate::SurrogateError;
use stco_tcad::materials::Technology;

/// Cells covered by the demo model.
pub const DEMO_CELLS: [CellKind; 3] = [CellKind::Inv, CellKind::Nand2, CellKind::Nor2];

/// The demo model configuration.
#[must_use]
pub fn demo_config() -> CellModelConfig {
    CellModelConfig {
        hidden: 8,
        head_hidden: 8,
        ..CellModelConfig::default()
    }
}

/// The demo training configuration.
#[must_use]
pub fn demo_train_config() -> TrainConfig {
    TrainConfig {
        epochs: 4,
        batch_size: 4,
        patience: None,
        ..TrainConfig::default()
    }
}

/// The encoded graph of one demo cell (LTPS reference card, fixed
/// slew/load context) — the same graph on every run, so serving inputs
/// built by separate processes match bitwise.
#[must_use]
pub fn demo_graph(kind: CellKind) -> CellGraph {
    let base = TechnologyCard::reference(Technology::Ltps);
    let cell = CellType::by_kind(kind);
    let built = cell.build(&base, 1.0);
    let mut ctx = EncodingContext::default();
    for pin in &cell.inputs {
        ctx.input_slew.insert((*pin).to_string(), 2.0e-9);
        ctx.current_state.insert((*pin).to_string(), 0.0);
        ctx.next_state.insert((*pin).to_string(), 1.0);
    }
    for pin in &cell.outputs {
        ctx.output_load.insert((*pin).to_string(), 1.0e-14);
    }
    encode_cell(&built, &ctx)
}

/// The demo training set: every demo cell × the first three metrics,
/// with synthetic-but-structured target values.
#[must_use]
pub fn demo_samples() -> Vec<CellSample> {
    let mut out = Vec::new();
    for (ci, kind) in DEMO_CELLS.iter().enumerate() {
        let graph = demo_graph(*kind);
        for metric in 0..3usize.min(METRICS.len()) {
            out.push(CellSample {
                graph: graph.clone(),
                metric,
                value: 1.0e-10 * (1.0 + ci as f64) * (1.0 + metric as f64),
            });
        }
    }
    out
}

/// The registry key the demo artifact is stored under — a pure
/// function of the demo configs, so every process resolves the same
/// key.
#[must_use]
pub fn demo_key() -> ArtifactKey {
    ArtifactKey::from_parts(
        CellModel::ARTIFACT_KIND,
        &[
            "serve-demo-v1",
            &format!("{:?}", demo_config()),
            &format!("{:?}", demo_train_config()),
        ],
    )
}

/// Trains the demo model from scratch (deterministic: same weights
/// every run).
///
/// # Errors
///
/// Propagates training failures.
pub fn train_demo_model() -> std::result::Result<CellModel, SurrogateError> {
    let mut model = CellModel::new(demo_config());
    model.train(&demo_samples(), &[], &demo_train_config())?;
    Ok(model)
}
