//! The serving stack's core guarantees:
//!
//! * batched replies are bitwise-identical to serial in-process
//!   `predict`/`predict_many` calls, at every thread count;
//! * backpressure, deadlines and shutdown behave as typed errors, not
//!   hangs or panics;
//! * the TCP protocol round-trips inputs/replies exactly and answers
//!   malformed frames with typed error replies.

use std::sync::Arc;
use std::time::Duration;

use stco_cells::library::CellKind;
use stco_serve::demo::{demo_graph, demo_key, train_demo_model, DEMO_CELLS};
use stco_serve::protocol::{read_frame, write_frame, Reply, Request};
use stco_serve::service::{BatchConfig, LoadedModel, ModelService, PredictInput};
use stco_serve::{Client, ServeError, TcpServer};
use stco_store::Registry;
use stco_surrogate::cell_model::{CellModel, METRICS};

fn demo_service(batch: BatchConfig) -> (Arc<ModelService>, CellModel, String) {
    let model = train_demo_model().expect("train demo model");
    let service = ModelService::start(None, batch);
    let id = "cell-model:demo".to_string();
    service.install(
        &id,
        LoadedModel::Cell(CellModel::from_artifact(&model.to_artifact()).expect("rehydrate")),
    );
    (service, model, id)
}

fn demo_inputs() -> Vec<(CellKind, Vec<usize>)> {
    let all: Vec<usize> = (0..METRICS.len()).collect();
    let mut out = Vec::new();
    for kind in DEMO_CELLS {
        out.push((kind, all.clone()));
        out.push((kind, vec![0]));
        out.push((kind, vec![2, 5, 8]));
    }
    out
}

fn assert_batched_matches_serial(threads: usize) {
    stco_par::set_global_threads(threads);
    let (service, model, id) = demo_service(BatchConfig {
        max_batch: 4,
        max_linger: Duration::from_millis(5),
        ..BatchConfig::default()
    });

    let inputs = demo_inputs();
    let expected: Vec<Vec<u64>> = inputs
        .iter()
        .map(|(kind, metrics)| {
            model
                .predict_many(&demo_graph(*kind), metrics)
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();

    // Fire all requests concurrently so they coalesce into batches.
    let got: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .iter()
            .map(|(kind, metrics)| {
                let service = Arc::clone(&service);
                let id = id.clone();
                let input = PredictInput::Cell {
                    graph: demo_graph(*kind),
                    metrics: metrics.clone(),
                };
                scope.spawn(move || {
                    service
                        .submit(&id, input, None)
                        .expect("predict")
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    assert_eq!(
        got, expected,
        "batched replies must be bitwise-identical to serial predict_many at {threads} threads"
    );
    service.shutdown();
    stco_par::set_global_threads(0);
}

#[test]
fn batched_replies_match_serial_single_thread() {
    assert_batched_matches_serial(1);
}

#[test]
fn batched_replies_match_serial_four_threads() {
    assert_batched_matches_serial(4);
}

/// The bitwise gate must survive sharding: the same model installed
/// under many ids spread over 3 shards, hammered concurrently, still
/// answers bit-for-bit what serial `predict_many` computes — shard
/// workers share nothing that could reorder reductions.
fn assert_sharded_matches_serial(threads: usize) {
    stco_par::set_global_threads(threads);
    let (service, model, _id) = demo_service(BatchConfig {
        shards: 3,
        max_batch: 4,
        max_linger: Duration::from_millis(5),
        ..BatchConfig::default()
    });

    // Aliases of the same model, enough that several shards own one.
    let aliases: Vec<String> = (0..8).map(|i| format!("cell-model:alias{i}")).collect();
    for alias in &aliases {
        service.install(
            alias,
            LoadedModel::Cell(CellModel::from_artifact(&model.to_artifact()).expect("rehydrate")),
        );
    }
    let homes: std::collections::BTreeSet<usize> =
        aliases.iter().map(|a| service.shard_for(a)).collect();
    assert!(
        homes.len() >= 2,
        "8 aliases over 3 shards must span at least 2 shards: {homes:?}"
    );

    let inputs = demo_inputs();
    let expected: Vec<Vec<u64>> = inputs
        .iter()
        .map(|(kind, metrics)| {
            model
                .predict_many(&demo_graph(*kind), metrics)
                .iter()
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();

    // Each request targets a different alias, so batches form on
    // several shards at once.
    let got: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(i, (kind, metrics))| {
                let service = Arc::clone(&service);
                let id = aliases[i % aliases.len()].clone();
                let input = PredictInput::Cell {
                    graph: demo_graph(*kind),
                    metrics: metrics.clone(),
                };
                scope.spawn(move || {
                    service
                        .submit(&id, input, None)
                        .expect("predict")
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });

    assert_eq!(
        got, expected,
        "sharded replies must be bitwise-identical to serial predict_many at {threads} threads"
    );
    service.shutdown();
    stco_par::set_global_threads(0);
}

#[test]
fn sharded_replies_match_serial_single_thread() {
    assert_sharded_matches_serial(1);
}

#[test]
fn sharded_replies_match_serial_four_threads() {
    assert_sharded_matches_serial(4);
}

#[test]
fn unknown_model_and_bad_input_are_typed() {
    let (service, _model, id) = demo_service(BatchConfig::default());
    let err = service
        .submit(
            "cell-model:nope",
            PredictInput::Cell {
                graph: demo_graph(CellKind::Inv),
                metrics: vec![0],
            },
            None,
        )
        .expect_err("unknown model");
    assert!(matches!(err, ServeError::UnknownModel { .. }), "{err}");

    let err = service
        .submit(
            &id,
            PredictInput::Cell {
                graph: demo_graph(CellKind::Inv),
                metrics: vec![METRICS.len()],
            },
            None,
        )
        .expect_err("metric out of range");
    assert!(matches!(err, ServeError::BadInput { .. }), "{err}");

    let err = service
        .submit(
            &id,
            PredictInput::Cell {
                graph: demo_graph(CellKind::Inv),
                metrics: vec![],
            },
            None,
        )
        .expect_err("no metrics");
    assert!(matches!(err, ServeError::BadInput { .. }), "{err}");
    service.shutdown();
}

#[test]
fn deadline_expires_in_queue() {
    let (service, _model, id) = demo_service(BatchConfig {
        // Long linger so a lone request sits in the queue past its
        // deadline before the first batch forms.
        max_batch: 64,
        max_linger: Duration::from_millis(250),
        ..BatchConfig::default()
    });
    let err = service
        .submit(
            &id,
            PredictInput::Cell {
                graph: demo_graph(CellKind::Inv),
                metrics: vec![0],
            },
            Some(Duration::from_millis(0)),
        )
        .expect_err("deadline must expire");
    assert!(matches!(err, ServeError::DeadlineExceeded), "{err}");
    service.shutdown();
}

#[test]
fn shutdown_drains_queued_requests_then_rejects() {
    let (service, model, id) = demo_service(BatchConfig {
        max_batch: 4,
        max_linger: Duration::from_millis(50),
        ..BatchConfig::default()
    });
    let expected: Vec<u64> = model
        .predict_many(&demo_graph(CellKind::Inv), &[0, 1])
        .iter()
        .map(|v| v.to_bits())
        .collect();

    let results: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let service = Arc::clone(&service);
                let id = id.clone();
                scope.spawn(move || {
                    service
                        .submit(
                            &id,
                            PredictInput::Cell {
                                graph: demo_graph(CellKind::Inv),
                                metrics: vec![0, 1],
                            },
                            None,
                        )
                        .expect("queued request must be answered on shutdown")
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        // Shut down only once every submitter has either enqueued or
        // already been answered (a linger expiry may drain early —
        // also fine); shutting down sooner could bounce a late
        // enqueue with `ShuttingDown`.
        let mut tries = 0;
        while service.queue_depth() < 3 && !handles.iter().all(|h| h.is_finished()) && tries < 500 {
            std::thread::sleep(Duration::from_millis(1));
            tries += 1;
        }
        service.shutdown();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    for r in results {
        assert_eq!(r, expected);
    }

    let err = service
        .submit(
            &id,
            PredictInput::Cell {
                graph: demo_graph(CellKind::Inv),
                metrics: vec![0],
            },
            None,
        )
        .expect_err("post-shutdown submit");
    assert!(matches!(err, ServeError::ShuttingDown), "{err}");
}

#[test]
fn backpressure_rejects_when_queue_is_full() {
    let (service, _model, id) = demo_service(BatchConfig {
        max_batch: 64,
        max_linger: Duration::from_secs(1),
        max_pending: 2,
        ..BatchConfig::default()
    });
    // Fill the queue from threads that will block on their replies.
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let service = Arc::clone(&service);
            let id = id.clone();
            scope.spawn(move || {
                let _ = service.submit(
                    &id,
                    PredictInput::Cell {
                        graph: demo_graph(CellKind::Inv),
                        metrics: vec![0],
                    },
                    None,
                );
            });
        }
        // Wait until both are enqueued.
        let mut tries = 0;
        while service.queue_depth() < 2 && tries < 200 {
            std::thread::sleep(Duration::from_millis(1));
            tries += 1;
        }
        assert_eq!(service.queue_depth(), 2, "queue must fill");
        let err = service
            .submit(
                &id,
                PredictInput::Cell {
                    graph: demo_graph(CellKind::Inv),
                    metrics: vec![0],
                },
                None,
            )
            .expect_err("third submit must bounce");
        assert!(matches!(err, ServeError::QueueFull { depth: 2 }), "{err}");
        service.shutdown();
    });
}

#[test]
fn tcp_roundtrip_matches_in_process_predictions() {
    let model = train_demo_model().expect("train demo model");
    let dir = std::env::temp_dir().join(format!("stco-serve-test-{}", std::process::id()));
    let registry = Registry::open(&dir).expect("open registry");
    let key = demo_key();
    registry.put(key, &model.to_artifact()).expect("export");

    let service = ModelService::start(Some(registry), BatchConfig::default());
    let server = TcpServer::start("127.0.0.1:0", service).expect("bind");
    let addr = server.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    client.ping().expect("ping");
    let id = client.load(CellModel::ARTIFACT_KIND, key).expect("load");
    assert_eq!(id, ModelService::model_id(CellModel::ARTIFACT_KIND, key));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.loaded, vec![id.clone()]);

    let metrics: Vec<usize> = (0..METRICS.len()).collect();
    for kind in DEMO_CELLS {
        let graph = demo_graph(kind);
        let expected: Vec<u64> = model
            .predict_many(&graph, &metrics)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        let got: Vec<u64> = client
            .predict(
                &id,
                &PredictInput::Cell {
                    graph,
                    metrics: metrics.clone(),
                },
                Some(5_000),
            )
            .expect("predict")
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(
            got, expected,
            "TCP replies must be bitwise-exact for {kind:?}"
        );
    }

    // Unknown model over the wire is a typed remote error.
    let err = client
        .predict(
            "cell-model:ffffffffffffffff",
            &PredictInput::Cell {
                graph: demo_graph(CellKind::Inv),
                metrics: vec![0],
            },
            None,
        )
        .expect_err("unknown model");
    match err {
        ServeError::Remote { code, .. } => assert_eq!(code, "unknown-model"),
        other => panic!("expected remote error, got {other}"),
    }

    client.shutdown().expect("shutdown");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_frames_get_typed_error_replies() {
    use std::io::{Read, Write};

    let (service, _model, _id) = demo_service(BatchConfig::default());
    let server = TcpServer::start("127.0.0.1:0", service).expect("bind");
    let addr = server.addr();

    // Valid frame, bogus JSON shape: connection survives, typed reply.
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        write_frame(
            &mut stream,
            &stco_obs::json::JsonValue::Obj(vec![(
                "op".to_string(),
                stco_obs::json::JsonValue::Str("warp".to_string()),
            )]),
        )
        .expect("write");
        let reply = read_frame(&mut stream).expect("read").expect("reply");
        match Reply::from_json(&reply).expect("decode") {
            Reply::Error { code, .. } => assert_eq!(code, "malformed-frame"),
            other => panic!("expected error reply, got {other:?}"),
        }
        // Same connection still answers a valid request.
        write_frame(&mut stream, &Request::Ping.to_json()).expect("write");
        let reply = read_frame(&mut stream).expect("read").expect("reply");
        assert_eq!(Reply::from_json(&reply).expect("decode"), Reply::Pong);
    }

    // Frame body that is not JSON at all: typed reply, then close.
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        let body = b"this is not json";
        stream
            .write_all(&(body.len() as u32).to_be_bytes())
            .expect("prefix");
        stream.write_all(body).expect("body");
        stream.flush().expect("flush");
        let reply = read_frame(&mut stream).expect("read").expect("reply");
        match Reply::from_json(&reply).expect("decode") {
            Reply::Error { code, .. } => assert_eq!(code, "malformed-frame"),
            other => panic!("expected error reply, got {other:?}"),
        }
    }

    // Oversized length prefix: typed reply, no giant allocation.
    {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        stream.write_all(&u32::MAX.to_be_bytes()).expect("prefix");
        stream.flush().expect("flush");
        let reply = read_frame(&mut stream).expect("read").expect("reply");
        match Reply::from_json(&reply).expect("decode") {
            Reply::Error { code, .. } => assert_eq!(code, "malformed-frame"),
            other => panic!("expected error reply, got {other:?}"),
        }
        // Server closes this connection (stream is unframed now).
        let mut buf = [0u8; 1];
        let n = stream.read(&mut buf).unwrap_or(0);
        assert_eq!(n, 0, "connection must close after an unframed error");
    }

    server.stop();
}

#[test]
fn wire_json_roundtrips_inputs_exactly() {
    let inputs = [
        PredictInput::Cell {
            graph: demo_graph(CellKind::Nand2),
            metrics: vec![0, 4, 8],
        },
        PredictInput::Poisson {
            graph: stco_nn::gnn::GraphData {
                node_features: stco_numerics::Matrix::from_vec(
                    2,
                    stco_surrogate::encoding::NODE_DIM,
                    (0..2 * stco_surrogate::encoding::NODE_DIM)
                        .map(|i| (i as f64) * 0.125 - 1.0)
                        .collect(),
                ),
                edges: vec![(0, 1), (1, 0)],
                edge_features: stco_numerics::Matrix::from_vec(
                    2,
                    stco_surrogate::encoding::EDGE_DIM,
                    vec![0.5, -0.25, 1.0, -0.5, 0.25, -1.0],
                ),
            },
        },
    ];
    for input in &inputs {
        let request = Request::Predict {
            model: "m".to_string(),
            input: input.clone(),
            deadline_ms: Some(123),
        };
        let rendered = request.to_json().render();
        let parsed = stco_obs::json::JsonValue::parse(&rendered).expect("parse");
        let back = Request::from_json(&parsed).expect("decode");
        let Request::Predict {
            input: back_input, ..
        } = back
        else {
            panic!("decoded to a different op");
        };
        match (input, &back_input) {
            (
                PredictInput::Cell { graph, metrics },
                PredictInput::Cell {
                    graph: g2,
                    metrics: m2,
                },
            ) => {
                assert_eq!(metrics, m2);
                assert_eq!(graph.kinds, g2.kinds);
                assert_eq!(graph.labels, g2.labels);
                assert_eq!(graph.edges, g2.edges);
                let a: Vec<u64> = graph.features.iter().map(|v| v.to_bits()).collect();
                let b: Vec<u64> = g2.features.iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, b, "features must survive the wire bitwise");
            }
            (PredictInput::Poisson { graph }, PredictInput::Poisson { graph: g2 }) => {
                assert_eq!(graph.edges, g2.edges);
                assert_eq!(graph.node_features, g2.node_features);
                assert_eq!(graph.edge_features, g2.edge_features);
            }
            _ => panic!("input changed task on the wire"),
        }
    }
}
