//! Serving telemetry guarantees:
//!
//! * `stats` and `metrics` replies round-trip through the wire format
//!   exactly, including the slow-request log;
//! * the service records per-phase timings into a worst-K slow log;
//! * the `metrics` op exposes the full registry (JSON snapshot plus
//!   Prometheus text) over TCP, and counters in `stats` move with
//!   traffic.

use std::time::Duration;

use stco_cells::library::CellKind;
use stco_obs::json::JsonValue;
use stco_serve::demo::{demo_graph, demo_key, train_demo_model};
use stco_serve::protocol::{Reply, Request, ServerStats};
use stco_serve::service::{BatchConfig, LoadedModel, ModelService, PredictInput, SlowRequest};
use stco_serve::{Client, TcpServer};
use stco_store::Registry;
use stco_surrogate::cell_model::{CellModel, METRICS};

fn demo_slow() -> SlowRequest {
    SlowRequest {
        trace_id: 42,
        batch_size: 3,
        queue_seconds: 0.001,
        assembly_seconds: 0.0002,
        forward_seconds: 0.0125,
        reply_seconds: 0.00005,
        total_seconds: 0.014,
    }
}

#[test]
fn stats_reply_roundtrips_with_slow_requests() {
    let reply = Reply::Stats(ServerStats {
        queue_depth: 7,
        shards: 2,
        shard_queue_depths: vec![4, 3],
        shed: 5,
        loaded: vec!["cell-model:demo".to_string()],
        requests: 120,
        replies: 118,
        errors: 1,
        deadline_exceeded: 1,
        slow_requests: vec![demo_slow()],
    });
    let doc = reply.to_json();
    let parsed = Reply::from_json(&doc).expect("parse stats reply");
    assert_eq!(parsed, reply, "stats reply must round-trip exactly");
}

#[test]
fn metrics_request_and_reply_roundtrip() {
    let request = Request::Metrics;
    let parsed = Request::from_json(&request.to_json()).expect("parse metrics request");
    assert!(
        matches!(parsed, Request::Metrics),
        "metrics request must round-trip"
    );

    let reply = Reply::Metrics {
        snapshot: JsonValue::Obj(vec![(
            "metrics".to_string(),
            JsonValue::Arr(vec![JsonValue::Obj(vec![
                ("name".to_string(), JsonValue::Str("serve.requests".into())),
                ("kind".to_string(), JsonValue::Str("counter".into())),
                ("value".to_string(), JsonValue::Num(3.0)),
            ])]),
        )]),
        text: "serve_requests 3\n".to_string(),
    };
    let parsed = Reply::from_json(&reply.to_json()).expect("parse metrics reply");
    assert_eq!(parsed, reply, "metrics reply must round-trip exactly");
}

#[test]
fn service_records_worst_k_slow_requests() {
    let model = train_demo_model().expect("train demo model");
    let service = ModelService::start(
        None,
        BatchConfig {
            max_batch: 4,
            max_linger: Duration::from_millis(2),
            slow_log_k: 4,
            ..BatchConfig::default()
        },
    );
    let id = "cell-model:slowlog".to_string();
    service.install(
        &id,
        LoadedModel::Cell(CellModel::from_artifact(&model.to_artifact()).expect("rehydrate")),
    );

    let metrics: Vec<usize> = (0..METRICS.len()).collect();
    for _ in 0..10 {
        service
            .submit(
                &id,
                PredictInput::Cell {
                    graph: demo_graph(CellKind::Inv),
                    metrics: metrics.clone(),
                },
                None,
            )
            .expect("predict");
    }
    let slow = service.slow_requests();
    assert!(!slow.is_empty(), "slow log must record completed requests");
    assert!(
        slow.len() <= 4,
        "slow log capped at k={}, got {}",
        4,
        slow.len()
    );
    for pair in slow.windows(2) {
        assert!(
            pair[0].total_seconds >= pair[1].total_seconds,
            "slow log must be sorted worst-first"
        );
    }
    for entry in &slow {
        assert!(
            entry.total_seconds > 0.0,
            "total must be positive: {entry:?}"
        );
        assert!(entry.batch_size >= 1, "batch size must be at least 1");
        assert!(entry.queue_seconds >= 0.0);
        assert!(entry.forward_seconds >= 0.0);
        assert!(
            entry.total_seconds + 1e-9
                >= entry.queue_seconds + entry.forward_seconds + entry.reply_seconds,
            "total covers queue+forward+reply: {entry:?}"
        );
    }
    service.shutdown();
}

#[test]
fn metrics_op_exposes_registry_over_tcp() {
    let model = train_demo_model().expect("train demo model");
    let dir = std::env::temp_dir().join(format!("stco-serve-telemetry-{}", std::process::id()));
    let registry = Registry::open(&dir).expect("open registry");
    let key = demo_key();
    registry.put(key, &model.to_artifact()).expect("export");

    let service = ModelService::start(Some(registry), BatchConfig::default());
    let server = TcpServer::start("127.0.0.1:0", service).expect("bind");
    let addr = server.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    let id = client.load(CellModel::ARTIFACT_KIND, key).expect("load");
    let metrics: Vec<usize> = (0..METRICS.len()).collect();
    for _ in 0..6 {
        client
            .predict(
                &id,
                &PredictInput::Cell {
                    graph: demo_graph(CellKind::Inv),
                    metrics: metrics.clone(),
                },
                Some(5_000),
            )
            .expect("predict");
    }

    let stats = client.stats().expect("stats");
    assert!(stats.requests >= 6, "request counter must move: {stats:?}");
    assert!(stats.replies >= 6, "reply counter must move: {stats:?}");
    assert!(
        !stats.slow_requests.is_empty(),
        "slow log must be exposed via stats"
    );

    let (snapshot, text) = client.metrics().expect("metrics");
    let JsonValue::Arr(entries) = snapshot.get("metrics").expect("metrics array") else {
        panic!("snapshot.metrics must be an array");
    };
    let names: Vec<&str> = entries
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    for required in [
        "serve.latency_seconds",
        "serve.batch_size",
        "serve.queue_wait_seconds",
        "serve.requests",
        "serve.replies",
    ] {
        assert!(
            names.contains(&required),
            "snapshot must include {required}, got {names:?}"
        );
    }
    let mut sorted = names.clone();
    sorted.sort_unstable();
    assert_eq!(names, sorted, "snapshot must be name-sorted");

    let latency = entries
        .iter()
        .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("serve.latency_seconds"))
        .expect("latency entry");
    assert_eq!(
        latency.get("kind").and_then(JsonValue::as_str),
        Some("windowed_histogram"),
        "latency must be a windowed histogram"
    );
    assert!(
        latency
            .get("count")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            >= 6,
        "latency histogram must have observations"
    );

    assert!(
        text.contains("# TYPE serve_requests counter"),
        "Prometheus text must declare serve_requests: {text}"
    );
    assert!(
        text.contains("serve_latency_seconds_count"),
        "Prometheus text must carry latency series: {text}"
    );

    client.shutdown().expect("shutdown");
    server.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
