//! Partial-frame torture tests for the wire protocol.
//!
//! The nonblocking multiplexer receives whatever byte runs the kernel
//! hands it, so [`FrameDecoder`] must tolerate input split at *any*
//! boundary — mid-prefix, mid-body, several frames in one read. These
//! tests drive it with:
//!
//! * a one-byte-at-a-time feed of a mixed request stream (the worst
//!   possible fragmentation), checked against the blocking
//!   [`read_frame`] oracle;
//! * randomized chunk splits over randomized float payloads (proptest);
//! * recoverable bad bodies (non-UTF-8, empty, non-JSON) vs the fatal
//!   oversized length prefix;
//! * a live TCP server fed one byte per write, and a pipelined burst of
//!   predicts whose replies must come back in submission order,
//!   bitwise-equal to in-process `predict_many`.

use std::io::Write;

use proptest::prelude::*;
use stco_cells::library::CellKind;
use stco_obs::json::JsonValue;
use stco_serve::demo::{demo_graph, train_demo_model};
use stco_serve::protocol::{encode_frame, read_frame, FrameDecoder, Reply, Request};
use stco_serve::service::{BatchConfig, LoadedModel, ModelService, PredictInput};
use stco_serve::TcpServer;
use stco_surrogate::cell_model::{CellModel, METRICS};

/// A mixed request stream covering every op shape (predict carries
/// floats that only survive shortest-roundtrip rendering).
fn mixed_docs() -> Vec<JsonValue> {
    let metrics: Vec<usize> = (0..METRICS.len()).collect();
    vec![
        Request::Ping.to_json(),
        Request::Stats.to_json(),
        Request::Drain { shard: 3 }.to_json(),
        Request::Resume { shard: 3 }.to_json(),
        Request::Predict {
            model: "cell-model:demo".to_string(),
            input: PredictInput::Cell {
                graph: demo_graph(CellKind::Nand2),
                metrics,
            },
            deadline_ms: Some(250),
        }
        .to_json(),
        Request::Metrics.to_json(),
    ]
}

/// Feeds `wire` into a fresh decoder in the given chunk sizes and
/// returns the decoded items.
fn feed_chunked(wire: &[u8], chunks: impl Iterator<Item = usize>) -> Vec<JsonValue> {
    let mut decoder = FrameDecoder::new();
    let mut out = Vec::new();
    let mut offset = 0usize;
    for chunk in chunks {
        if offset >= wire.len() {
            break;
        }
        let end = (offset + chunk.max(1)).min(wire.len());
        decoder
            .push(&wire[offset..end], &mut out)
            .expect("well-formed stream never fails push");
        offset = end;
    }
    if offset < wire.len() {
        decoder
            .push(&wire[offset..], &mut out)
            .expect("well-formed stream never fails push");
    }
    assert!(
        !decoder.mid_frame(),
        "decoder must end at a frame boundary after a whole stream"
    );
    out.into_iter()
        .map(|item| item.expect("every frame in the stream is well-formed"))
        .collect()
}

#[test]
fn one_byte_feed_matches_blocking_oracle() {
    let docs = mixed_docs();
    let mut wire = Vec::new();
    for doc in &docs {
        wire.extend_from_slice(&encode_frame(doc).expect("encode"));
    }

    // Oracle: the blocking reader over the same bytes.
    let mut cursor = std::io::Cursor::new(wire.clone());
    let mut oracle = Vec::new();
    while let Some(doc) = read_frame(&mut cursor).expect("oracle read") {
        oracle.push(doc);
    }
    assert_eq!(oracle.len(), docs.len());

    // Worst fragmentation: one byte per push.
    let decoded = feed_chunked(&wire, std::iter::repeat(1));
    assert_eq!(
        decoded, oracle,
        "byte-at-a-time decode must match the blocking reader"
    );
    assert_eq!(decoded, docs, "and the original documents");
}

#[test]
fn bad_bodies_are_recoverable_but_oversize_prefix_is_fatal() {
    let ping = encode_frame(&Request::Ping.to_json()).expect("encode");

    // Aligned frame with a non-UTF-8 body, then a good ping: the bad
    // frame surfaces as an Err *item* and the stream keeps going.
    let mut wire = vec![0, 0, 0, 2, 0xFF, 0xFE];
    wire.extend_from_slice(&ping);
    let mut decoder = FrameDecoder::new();
    let mut out = Vec::new();
    decoder
        .push(&wire, &mut out)
        .expect("bad bodies must not fail the push");
    assert_eq!(out.len(), 2);
    assert!(out[0].is_err(), "non-UTF-8 body is an Err item");
    assert!(out[1].is_ok(), "stream recovers at the next frame");

    // Same for an empty body and a non-JSON body.
    for bad in [&b""[..], &b"not json"[..]] {
        let mut wire = (u32::try_from(bad.len()).expect("small"))
            .to_be_bytes()
            .to_vec();
        wire.extend_from_slice(bad);
        wire.extend_from_slice(&ping);
        let mut decoder = FrameDecoder::new();
        let mut out = Vec::new();
        decoder.push(&wire, &mut out).expect("recoverable");
        assert!(out[0].is_err() && out[1].is_ok(), "{bad:?}");
    }

    // An oversized prefix desynchronizes the stream: fatal, even when
    // it arrives one byte at a time.
    let mut decoder = FrameDecoder::new();
    let mut out = Vec::new();
    let prefix = u32::MAX.to_be_bytes();
    let mut fatal = false;
    for b in prefix {
        if decoder.push(&[b], &mut out).is_err() {
            fatal = true;
            break;
        }
    }
    assert!(fatal, "oversized length prefix must fail the push");
    assert!(out.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random float payloads through random chunk splits: the decoder
    /// must reproduce every document bit-for-bit regardless of where
    /// the reads land.
    #[test]
    fn random_splits_preserve_float_payloads(
        payloads in prop::collection::vec(prop::collection::vec(-1e12..1e12f64, 1..9), 1..6),
        chunks in prop::collection::vec(1usize..23, 1..256),
    ) {
        let docs: Vec<JsonValue> = payloads
            .iter()
            .map(|values| Reply::Values(values.clone()).to_json())
            .collect();
        let mut wire = Vec::new();
        for doc in &docs {
            wire.extend_from_slice(&encode_frame(doc).expect("encode"));
        }
        let decoded = feed_chunked(&wire, chunks.into_iter());
        prop_assert_eq!(decoded.len(), docs.len());
        for (got, want) in decoded.iter().zip(&payloads) {
            let Ok(Reply::Values(values)) = Reply::from_json(got) else {
                return Err(TestCaseError::fail("decoded frame is not a values reply"));
            };
            prop_assert_eq!(values.len(), want.len());
            for (g, w) in values.iter().zip(want) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "floats must survive bitwise");
            }
        }
    }
}

/// Starts an in-process server with the demo model installed.
fn demo_server() -> (std::sync::Arc<TcpServer>, String, CellModel) {
    let model = train_demo_model().expect("train demo model");
    let rehydrated = CellModel::from_artifact(&model.to_artifact()).expect("rehydrate");
    let service = ModelService::start(None, BatchConfig::default());
    let id = "cell-model:torture".to_string();
    service.install(&id, LoadedModel::Cell(rehydrated));
    let server = TcpServer::start("127.0.0.1:0", service).expect("bind");
    (server, id, model)
}

#[test]
fn tcp_server_tolerates_one_byte_writes() {
    let (server, _id, _model) = demo_server();
    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    let frame = encode_frame(&Request::Ping.to_json()).expect("encode");
    for &byte in &frame {
        stream.write_all(&[byte]).expect("write one byte");
        stream.flush().expect("flush");
    }
    let reply = read_frame(&mut stream)
        .expect("read reply")
        .expect("reply frame");
    assert!(
        matches!(Reply::from_json(&reply), Ok(Reply::Pong)),
        "one-byte-fed ping must still pong: {reply:?}"
    );
    server.stop();
}

#[test]
fn pipelined_predicts_reply_in_submission_order() {
    let (server, id, model) = demo_server();
    let kinds = [
        CellKind::Inv,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Inv,
        CellKind::Nand2,
    ];
    // Distinct metric sets so out-of-order replies cannot pass by luck.
    let requests: Vec<(Vec<usize>, CellKind)> = kinds
        .iter()
        .enumerate()
        .map(|(i, &kind)| {
            let metrics: Vec<usize> = (0..METRICS.len()).filter(|m| m % (i + 1) == 0).collect();
            (metrics, kind)
        })
        .collect();

    let mut stream = std::net::TcpStream::connect(server.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // Burst every request down the pipe before reading a single reply.
    let mut burst = Vec::new();
    for (metrics, kind) in &requests {
        let doc = Request::Predict {
            model: id.clone(),
            input: PredictInput::Cell {
                graph: demo_graph(*kind),
                metrics: metrics.clone(),
            },
            deadline_ms: Some(10_000),
        }
        .to_json();
        burst.extend_from_slice(&encode_frame(&doc).expect("encode"));
    }
    stream.write_all(&burst).expect("write burst");
    stream.flush().expect("flush");

    for (i, (metrics, kind)) in requests.iter().enumerate() {
        let reply = read_frame(&mut stream)
            .expect("read reply")
            .expect("reply frame");
        let Ok(Reply::Values(values)) = Reply::from_json(&reply) else {
            panic!("reply {i} is not values: {reply:?}");
        };
        let expected = model.predict_many(&demo_graph(*kind), metrics);
        assert_eq!(values.len(), expected.len(), "reply {i} length");
        for (g, e) in values.iter().zip(&expected) {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "pipelined reply {i} must be bitwise-identical and in order"
            );
        }
    }

    // The connection is still healthy after the burst.
    let ping = encode_frame(&Request::Ping.to_json()).expect("encode");
    stream.write_all(&ping).expect("ping");
    let reply = read_frame(&mut stream).expect("read").expect("pong frame");
    assert!(matches!(Reply::from_json(&reply), Ok(Reply::Pong)));

    // Half a frame then a hangup must not wedge the server: a fresh
    // connection still works afterwards.
    drop(stream);
    let mut partial = std::net::TcpStream::connect(server.addr()).expect("connect");
    partial.write_all(&ping[..3]).expect("partial prefix");
    drop(partial);
    let mut fresh = std::net::TcpStream::connect(server.addr()).expect("connect");
    fresh.write_all(&ping).expect("ping");
    fresh.flush().expect("flush");
    let reply = read_frame(&mut fresh).expect("read").expect("pong frame");
    assert!(matches!(Reply::from_json(&reply), Ok(Reply::Pong)));

    server.stop();
}
