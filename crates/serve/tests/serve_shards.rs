//! Sharded-service guarantees: consistent-hash routing, per-shard
//! graceful drain (in-flight work completes, new work typed-rejected),
//! the shedding watermarks, and the drain/resume ops over the wire.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use stco_cells::library::CellKind;
use stco_serve::demo::{demo_graph, train_demo_model};
use stco_serve::service::{BatchConfig, LoadedModel, ModelService, PredictInput};
use stco_serve::{Client, ServeError, TcpServer};
use stco_surrogate::cell_model::{CellModel, METRICS};

fn demo_loaded() -> LoadedModel {
    let model = train_demo_model().expect("train demo model");
    LoadedModel::Cell(CellModel::from_artifact(&model.to_artifact()).expect("rehydrate"))
}

fn demo_input() -> PredictInput {
    PredictInput::Cell {
        graph: demo_graph(CellKind::Inv),
        metrics: (0..METRICS.len()).collect(),
    }
}

/// Installs aliases of the demo model until `shard` owns at least one,
/// returning an id routed to that shard.
fn id_on_shard(service: &ModelService, shard: usize) -> String {
    for i in 0..4096 {
        let id = format!("cell-model:alias{i}");
        if service.shard_for(&id) == shard {
            service.install(&id, demo_loaded());
            return id;
        }
    }
    panic!("no alias landed on shard {shard} in 4096 tries");
}

#[test]
fn routing_is_stable_and_spreads_across_shards() {
    let service = ModelService::start(
        None,
        BatchConfig {
            shards: 3,
            ..BatchConfig::default()
        },
    );
    assert_eq!(service.shard_count(), 3);

    let ids: Vec<String> = (0..64).map(|i| format!("cell-model:{i:016x}")).collect();
    let homes: Vec<usize> = ids.iter().map(|id| service.shard_for(id)).collect();
    // Stable: the same id maps to the same shard every time.
    for (id, &home) in ids.iter().zip(&homes) {
        assert!(home < 3);
        assert_eq!(service.shard_for(id), home, "routing must be deterministic");
    }
    // Spread: 64 ids over 3 shards must hit more than one shard.
    let distinct: std::collections::BTreeSet<usize> = homes.iter().copied().collect();
    assert!(
        distinct.len() >= 2,
        "consistent hashing must spread models: {homes:?}"
    );
    service.shutdown();
}

#[test]
fn single_shard_routes_everything_to_zero() {
    let service = ModelService::start(
        None,
        BatchConfig {
            shards: 1,
            ..BatchConfig::default()
        },
    );
    for i in 0..16 {
        assert_eq!(service.shard_for(&format!("cell-model:{i}")), 0);
    }
    service.shutdown();
}

#[test]
fn drain_completes_inflight_work_and_rejects_new_submits() {
    let service = ModelService::start(
        None,
        BatchConfig {
            shards: 2,
            max_batch: 4,
            max_linger: Duration::from_millis(1),
            ..BatchConfig::default()
        },
    );
    let target = 1usize;
    let id = id_on_shard(&service, target);

    // Queue a burst asynchronously, then drain: every queued request
    // must still be answered (drain refuses new work, not accepted work).
    let answered = Arc::new(AtomicUsize::new(0));
    let failed = Arc::new(AtomicUsize::new(0));
    for _ in 0..12 {
        let answered = Arc::clone(&answered);
        let failed = Arc::clone(&failed);
        service.submit_async(
            &id,
            demo_input(),
            Some(Duration::from_secs(10)),
            Box::new(move |outcome| {
                match outcome {
                    Ok(_) => answered.fetch_add(1, Ordering::SeqCst),
                    Err(_) => failed.fetch_add(1, Ordering::SeqCst),
                };
            }),
        );
    }
    service.drain_shard(target).expect("drain");
    assert_eq!(
        answered.load(Ordering::SeqCst),
        12,
        "drain must answer all accepted requests ({} failed)",
        failed.load(Ordering::SeqCst)
    );
    assert_eq!(service.shard_queue_depths()[target], 0);

    // New work on the drained shard gets the typed rejection...
    match service.submit(&id, demo_input(), None) {
        Err(ServeError::Draining { shard }) => assert_eq!(shard, target),
        other => panic!("drained shard must reject with Draining, got {other:?}"),
    }
    // ...while other shards keep serving.
    let other_id = id_on_shard(&service, 0);
    service
        .submit(&other_id, demo_input(), None)
        .expect("undrained shard keeps serving");

    // Resume reopens the shard.
    service.resume_shard(target).expect("resume");
    service
        .submit(&id, demo_input(), None)
        .expect("resumed shard serves again");
    service.shutdown();
}

#[test]
fn shedding_watermarks_reject_with_overloaded_and_count_sheds() {
    // Tiny watermarks + a long linger so the queue backs up: the worker
    // waits for a full batch of 64 while we stuff the queue past
    // shed_high = 4.
    let service = ModelService::start(
        None,
        BatchConfig {
            shards: 1,
            max_batch: 64,
            max_linger: Duration::from_secs(5),
            max_pending: 1024,
            shed_high: 4,
            shed_low: 2,
            ..BatchConfig::default()
        },
    );
    let id = "cell-model:shed".to_string();
    service.install(&id, demo_loaded());

    let shed_before = stco_obs::Recorder::global()
        .metrics()
        .counter("serve.shed_total")
        .get();

    type Outcomes = Arc<Mutex<Vec<Result<Vec<f64>, ServeError>>>>;
    let outcomes: Outcomes = Arc::new(Mutex::new(Vec::new()));
    let mut saw_overloaded = false;
    for _ in 0..32 {
        let sink = Arc::clone(&outcomes);
        service.submit_async(
            &id,
            demo_input(),
            Some(Duration::from_secs(10)),
            Box::new(move |outcome| {
                sink.lock().unwrap_or_else(|e| e.into_inner()).push(outcome);
            }),
        );
        // Rejections are delivered inline, so we can watch them appear
        // while stuffing.
        let snapshot = outcomes.lock().unwrap_or_else(|e| e.into_inner());
        if snapshot
            .iter()
            .any(|o| matches!(o, Err(ServeError::Overloaded { .. })))
        {
            saw_overloaded = true;
        }
    }
    assert!(
        saw_overloaded,
        "stuffing 32 requests past shed_high=4 must trip the shedder"
    );
    let shed_after = stco_obs::Recorder::global()
        .metrics()
        .counter("serve.shed_total")
        .get();
    assert!(
        shed_after > shed_before,
        "serve.shed_total must count sheds ({shed_before} -> {shed_after})"
    );

    // Shutdown answers everything that was accepted.
    service.shutdown();
    let outcomes = outcomes.lock().unwrap_or_else(|e| e.into_inner());
    assert_eq!(outcomes.len(), 32, "every submit must be answered");
}

#[test]
fn drain_and_resume_roundtrip_over_the_wire() {
    let service = ModelService::start(
        None,
        BatchConfig {
            shards: 2,
            ..BatchConfig::default()
        },
    );
    let target = 1usize;
    let id = id_on_shard(&service, target);
    let server = TcpServer::start("127.0.0.1:0", service).expect("bind");
    let addr = server.addr().to_string();

    let mut client = Client::connect(&addr).expect("connect");
    client.drain(target).expect("drain over the wire");

    // A predict routed to the drained shard gets the typed code.
    match client.predict(&id, &demo_input(), Some(5_000)) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, "draining"),
        other => panic!("drained shard must answer 'draining' over TCP, got {other:?}"),
    }
    // Out-of-range shard indexes are typed errors, not hangups.
    assert!(client.drain(7).is_err(), "shard 7 does not exist");

    client.resume(target).expect("resume over the wire");
    client
        .predict(&id, &demo_input(), Some(5_000))
        .expect("resumed shard serves over TCP");

    // Stats reflect the shard topology.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.shards, 2);
    assert_eq!(stats.shard_queue_depths.len(), 2);

    client.shutdown().expect("shutdown");
    server.wait();
}
