//! `stco-obs`: the observability substrate of the fast-stco workspace.
//!
//! The paper's headline claim is *runtime* (Table I's 1.9×–14.1×
//! full-loop speedup), so this crate makes runtime a first-class,
//! inspectable quantity instead of scattered `Instant::now()` pairs:
//!
//! * **Spans** ([`recorder`]) — hierarchical wall-clock regions with
//!   key/value fields, emitted through a process-global [`Recorder`] to
//!   pluggable [`sink::Sink`]s (in-memory ring buffer, JSONL file,
//!   stderr pretty-printer). The [`span!`]/[`event!`] macros compile to
//!   a single atomic load when no sink is installed.
//! * **Metrics** ([`metrics`]) — named counters, gauges and lock-free
//!   fixed-bucket histograms with percentile summaries
//!   (`tcad.newton_iters`, `nn.epoch_loss`, `spice.timestep_rejects`,
//!   `rl.episode_reward`, `flow.stage_seconds{stage=…}`), including
//!   sliding-window histograms ([`metrics::WindowedHistogram`]) for
//!   rolling quantiles like a server's live p99.
//! * **Exposition** ([`exposition`]) — renders a metrics snapshot as a
//!   JSON document or Prometheus-style text for admin endpoints.
//! * **Profiles** ([`profile`]) — folds a recorded span stream into a
//!   per-stage/per-substage table (Markdown + JSON), the breakdown that
//!   justifies each Table I row.
//!
//! Naming scheme: `crate.operation` for spans and events
//! (`tcad.solve_poisson`, `system.place`), `crate.quantity` for metrics,
//! with `{key=value}` suffixes for low-cardinality labels
//! (`flow.stage_seconds{stage=device}`). Stage spans are named
//! `flow.stage` with a `stage` field so profiles fold them per stage.
//!
//! The crate is dependency-free (std only) so every layer of the
//! workspace can depend on it.

pub mod exposition;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod record;
pub mod recorder;
pub mod sink;

pub use exposition::{prometheus_text, snapshot_json};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, WindowConfig, WindowedHistogram};
pub use profile::{Profile, ProfileNode};
pub use record::{FieldValue, Record};
pub use recorder::{Recorder, SpanGuard};
pub use sink::{JsonlSink, RingBufferHandle, RingBufferSink, Sink, StderrSink};

/// Errors from observability plumbing (sink I/O, JSON parsing).
#[derive(Debug)]
pub enum ObsError {
    /// Sink I/O failure.
    Io(std::io::Error),
    /// Malformed JSON while decoding a trace.
    Json {
        /// Byte offset of the failure.
        offset: usize,
        /// What went wrong.
        context: String,
    },
    /// A trace record stream violated span nesting invariants.
    BadTrace {
        /// What went wrong.
        context: String,
    },
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Io(e) => write!(f, "observability I/O: {e}"),
            ObsError::Json { offset, context } => {
                write!(f, "trace JSON error at byte {offset}: {context}")
            }
            ObsError::BadTrace { context } => write!(f, "bad trace: {context}"),
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ObsError {
    fn from(e: std::io::Error) -> Self {
        ObsError::Io(e)
    }
}

/// Result alias for observability routines.
pub type Result<T> = std::result::Result<T, ObsError>;

/// Opens a span on the global recorder.
///
/// ```
/// let _span = stco_obs::span!("tcad.solve_poisson", gate = 2.0, drain = 1.0);
/// ```
///
/// The guard closes the span (recording elapsed wall-clock) on drop, or
/// explicitly via [`SpanGuard::close`] which returns the elapsed seconds.
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::Recorder::global().span(
            $name,
            &[$((stringify!($key), $crate::FieldValue::from($value))),*],
        )
    };
}

/// Emits a point-in-time event on the global recorder, attached to the
/// innermost open span of the current thread.
///
/// Field expressions are only evaluated when a sink is installed, so the
/// disabled cost is one atomic load.
#[macro_export]
macro_rules! event {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::Recorder::global().enabled() {
            $crate::Recorder::global().event(
                $name,
                &[$((stringify!($key), $crate::FieldValue::from($value))),*],
            );
        }
    };
}
