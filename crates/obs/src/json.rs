//! Minimal JSON value model, writer and parser — enough to serialize
//! trace records as JSONL and read them back, with no external
//! dependencies.
//!
//! Numbers are `f64`; integers round-trip exactly up to 2⁵³, far beyond
//! any id or nanosecond timestamp a trace produces in practice.

use crate::record::{FieldValue, Record};
use crate::ObsError;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object (insertion-ordered).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64 if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Renders compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(v) => {
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *v as i64));
                } else {
                    out.push_str(&format!("{v}"));
                }
            }
            JsonValue::Str(s) => render_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (must consume the whole input).
    ///
    /// # Errors
    ///
    /// Returns [`ObsError::Json`] on malformed input.
    pub fn parse(input: &str) -> crate::Result<JsonValue> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing data"));
        }
        Ok(value)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, context: &str) -> ObsError {
    ObsError::Json {
        offset,
        context: context.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, byte: u8) -> crate::Result<()> {
    if *pos < b.len() && b[*pos] == byte {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, "unexpected byte"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> crate::Result<JsonValue> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(b, pos, "null", JsonValue::Null),
        Some(b't') => parse_lit(b, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", JsonValue::Bool(false)),
        Some(b'"') => Ok(JsonValue::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(pairs));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: JsonValue) -> crate::Result<JsonValue> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, "bad literal"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> crate::Result<String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| err(*pos, "bad \\u escape"))?,
                            16,
                        )
                        .map_err(|_| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| err(*pos, "bad UTF-8"))?;
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> crate::Result<JsonValue> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| err(start, "bad number"))
}

fn fields_to_json(fields: &[(String, FieldValue)]) -> JsonValue {
    JsonValue::Obj(
        fields
            .iter()
            .map(|(k, v)| {
                let jv = match v {
                    FieldValue::F64(x) => JsonValue::Num(*x),
                    FieldValue::I64(x) => JsonValue::Num(*x as f64),
                    FieldValue::U64(x) => JsonValue::Num(*x as f64),
                    FieldValue::Bool(x) => JsonValue::Bool(*x),
                    FieldValue::Str(x) => JsonValue::Str(x.clone()),
                };
                (k.clone(), jv)
            })
            .collect(),
    )
}

fn fields_from_json(v: Option<&JsonValue>) -> Vec<(String, FieldValue)> {
    match v {
        Some(JsonValue::Obj(pairs)) => pairs
            .iter()
            .map(|(k, v)| {
                let fv = match v {
                    JsonValue::Bool(b) => FieldValue::Bool(*b),
                    JsonValue::Str(s) => FieldValue::Str(s.clone()),
                    JsonValue::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < 9.0e15 => {
                        FieldValue::U64(*n as u64)
                    }
                    JsonValue::Num(n) if n.fract() == 0.0 && *n < 0.0 && *n > -9.0e15 => {
                        FieldValue::I64(*n as i64)
                    }
                    JsonValue::Num(n) => FieldValue::F64(*n),
                    _ => FieldValue::Str(v.render()),
                };
                (k.clone(), fv)
            })
            .collect(),
        _ => Vec::new(),
    }
}

/// Encodes a record as one JSONL line (no trailing newline).
pub fn record_to_json(record: &Record) -> JsonValue {
    match record {
        Record::SpanStart {
            id,
            parent,
            name,
            fields,
            t_ns,
            thread,
        } => JsonValue::Obj(vec![
            ("type".into(), JsonValue::Str("span_start".into())),
            ("id".into(), JsonValue::Num(*id as f64)),
            (
                "parent".into(),
                parent.map_or(JsonValue::Null, |p| JsonValue::Num(p as f64)),
            ),
            ("name".into(), JsonValue::Str(name.clone())),
            ("fields".into(), fields_to_json(fields)),
            ("t_ns".into(), JsonValue::Num(*t_ns as f64)),
            ("thread".into(), JsonValue::Num(*thread as f64)),
        ]),
        Record::SpanEnd {
            id,
            t_ns,
            elapsed_ns,
        } => JsonValue::Obj(vec![
            ("type".into(), JsonValue::Str("span_end".into())),
            ("id".into(), JsonValue::Num(*id as f64)),
            ("t_ns".into(), JsonValue::Num(*t_ns as f64)),
            ("elapsed_ns".into(), JsonValue::Num(*elapsed_ns as f64)),
        ]),
        Record::Event {
            span,
            name,
            fields,
            t_ns,
            thread,
        } => JsonValue::Obj(vec![
            ("type".into(), JsonValue::Str("event".into())),
            (
                "span".into(),
                span.map_or(JsonValue::Null, |s| JsonValue::Num(s as f64)),
            ),
            ("name".into(), JsonValue::Str(name.clone())),
            ("fields".into(), fields_to_json(fields)),
            ("t_ns".into(), JsonValue::Num(*t_ns as f64)),
            ("thread".into(), JsonValue::Num(*thread as f64)),
        ]),
    }
}

/// Decodes one JSONL line back into a record.
///
/// # Errors
///
/// Returns [`ObsError::Json`] on malformed JSON or a missing/mistyped
/// required key.
pub fn record_from_json(line: &str) -> crate::Result<Record> {
    let v = JsonValue::parse(line)?;
    let ty = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| err(0, "missing type"))?;
    let u = |key: &str| -> crate::Result<u64> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| err(0, "missing integer key"))
    };
    let opt_u = |key: &str| -> Option<u64> { v.get(key).and_then(JsonValue::as_u64) };
    let name = || -> crate::Result<String> {
        Ok(v.get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err(0, "missing name"))?
            .to_string())
    };
    match ty {
        "span_start" => Ok(Record::SpanStart {
            id: u("id")?,
            parent: opt_u("parent"),
            name: name()?,
            fields: fields_from_json(v.get("fields")),
            t_ns: u("t_ns")?,
            thread: u("thread")?,
        }),
        "span_end" => Ok(Record::SpanEnd {
            id: u("id")?,
            t_ns: u("t_ns")?,
            elapsed_ns: u("elapsed_ns")?,
        }),
        "event" => Ok(Record::Event {
            span: opt_u("span"),
            name: name()?,
            fields: fields_from_json(v.get("fields")),
            t_ns: u("t_ns")?,
            thread: u("thread")?,
        }),
        other => Err(ObsError::Json {
            offset: 0,
            context: format!("unknown record type {other:?}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for src in [
            "null",
            "true",
            "false",
            "3",
            "-2.5",
            "\"a\\nb\"",
            "[]",
            "{}",
        ] {
            let v = JsonValue::parse(src).expect(src);
            let again = JsonValue::parse(&v.render()).expect("re-parse");
            assert_eq!(v, again, "{src}");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let src = r#"{"a":[1,2,{"b":"x","c":null}],"d":true}"#;
        let v = JsonValue::parse(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(v.get("d"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn malformed_inputs_error() {
        for src in ["", "{", "[1,", "\"open", "tru", "{\"a\"}", "1 2"] {
            assert!(JsonValue::parse(src).is_err(), "{src:?} should fail");
        }
    }

    #[test]
    fn record_roundtrip_all_variants() {
        let records = vec![
            Record::SpanStart {
                id: 7,
                parent: Some(3),
                name: "flow.stage".into(),
                fields: vec![
                    ("stage".into(), FieldValue::Str("device".into())),
                    ("gate".into(), FieldValue::F64(2.5)),
                    ("iters".into(), FieldValue::U64(12)),
                    ("delta".into(), FieldValue::I64(-3)),
                    ("ok".into(), FieldValue::Bool(true)),
                ],
                t_ns: 123_456_789,
                thread: 1,
            },
            Record::SpanEnd {
                id: 7,
                t_ns: 223_456_789,
                elapsed_ns: 100_000_000,
            },
            Record::Event {
                span: None,
                name: "tcad.newton_iter".into(),
                fields: vec![("max_dx".into(), FieldValue::F64(1.5e-7))],
                t_ns: 150_000_000,
                thread: 2,
            },
        ];
        for r in &records {
            let line = record_to_json(r).render();
            let back = record_from_json(&line).expect("decodes");
            // F64 fields with integral values decode as U64/I64; compare
            // via a normalized f64 view where exact enum equality is not
            // guaranteed. Here all F64 fields are fractional, so exact
            // equality holds.
            assert_eq!(&back, r, "line {line}");
        }
    }
}
