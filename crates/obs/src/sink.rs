//! Record sinks: where emitted spans/events go.
//!
//! * [`RingBufferSink`] — bounded in-memory buffer with a shareable
//!   read handle; what profiles are usually folded from.
//! * [`JsonlSink`] — streams every record as one JSON object per line;
//!   the `--trace` artifact under `results/`.
//! * [`StderrSink`] — human-readable live view, indented by span depth.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::json::record_to_json;
use crate::record::Record;

/// A destination for trace records. Called under the recorder's sink
/// lock — implementations should stay quick.
pub trait Sink: Send {
    /// Receives one record.
    fn record(&mut self, record: &Record);

    /// Flushes buffered output (no-op by default).
    fn flush(&mut self) {}
}

#[derive(Debug, Default)]
struct RingInner {
    records: VecDeque<Record>,
    capacity: usize,
    dropped: u64,
}

/// Read handle onto a [`RingBufferSink`]'s storage.
#[derive(Debug, Clone)]
pub struct RingBufferHandle(Arc<Mutex<RingInner>>);

impl RingBufferHandle {
    /// Snapshot of the buffered records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        let inner = self.0.lock().expect("ring buffer poisoned");
        inner.records.iter().cloned().collect()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.0.lock().expect("ring buffer poisoned").records.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.0.lock().expect("ring buffer poisoned").dropped
    }

    /// Clears the buffer (keeps capacity).
    pub fn clear(&self) {
        let mut inner = self.0.lock().expect("ring buffer poisoned");
        inner.records.clear();
        inner.dropped = 0;
    }
}

/// Bounded in-memory sink; evicts oldest records once full.
#[derive(Debug)]
pub struct RingBufferSink(RingBufferHandle);

impl RingBufferSink {
    /// Creates the sink plus its read handle.
    pub fn with_capacity(capacity: usize) -> (RingBufferSink, RingBufferHandle) {
        let handle = RingBufferHandle(Arc::new(Mutex::new(RingInner {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
            dropped: 0,
        })));
        (RingBufferSink(handle.clone()), handle)
    }
}

impl Sink for RingBufferSink {
    fn record(&mut self, record: &Record) {
        let mut inner = self.0 .0.lock().expect("ring buffer poisoned");
        if inner.records.len() >= inner.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(record.clone());
    }
}

/// Streams records to a file as JSON Lines.
#[derive(Debug)]
pub struct JsonlSink {
    writer: BufWriter<File>,
    path: PathBuf,
}

impl JsonlSink {
    /// Creates/truncates the file at `path` (creating parent dirs).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn create(path: impl AsRef<Path>) -> crate::Result<JsonlSink> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
            path: path.to_path_buf(),
        })
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Reads a JSONL trace file back into records.
    ///
    /// # Errors
    ///
    /// Propagates I/O and per-line JSON failures.
    pub fn read_records(path: impl AsRef<Path>) -> crate::Result<Vec<Record>> {
        let text = std::fs::read_to_string(path)?;
        text.lines()
            .filter(|l| !l.trim().is_empty())
            .map(crate::json::record_from_json)
            .collect()
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, record: &Record) {
        let line = record_to_json(record).render();
        // Trace output is best-effort: a full disk must not take the
        // simulation down with it.
        let _ = writeln!(self.writer, "{line}");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Pretty-prints records to stderr, indented by span depth per thread.
#[derive(Debug, Default)]
pub struct StderrSink {
    depth: HashMap<u64, usize>,
    span_thread: HashMap<u64, u64>,
}

impl StderrSink {
    /// Creates the sink.
    pub fn new() -> StderrSink {
        StderrSink::default()
    }

    fn indent(depth: usize) -> String {
        "  ".repeat(depth)
    }
}

impl Sink for StderrSink {
    fn record(&mut self, record: &Record) {
        match record {
            Record::SpanStart {
                id,
                name,
                fields,
                thread,
                ..
            } => {
                let depth = self.depth.entry(*thread).or_insert(0);
                let pad = Self::indent(*depth);
                *depth += 1;
                self.span_thread.insert(*id, *thread);
                let fields: Vec<String> = fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                // stco-check: allow(no-print, StderrSink is the terminal print destination)
                eprintln!("{pad}▶ {name} {}", fields.join(" "));
            }
            Record::SpanEnd { id, elapsed_ns, .. } => {
                let thread = self.span_thread.remove(id).unwrap_or(0);
                let depth = self.depth.entry(thread).or_insert(1);
                *depth = depth.saturating_sub(1);
                let pad = Self::indent(*depth);
                // stco-check: allow(no-print, StderrSink is the terminal print destination)
                eprintln!("{pad}◀ {:.6} s", *elapsed_ns as f64 / 1e9);
            }
            Record::Event {
                name,
                fields,
                thread,
                ..
            } => {
                let depth = self.depth.get(thread).copied().unwrap_or(0);
                let pad = Self::indent(depth);
                let fields: Vec<String> = fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
                // stco-check: allow(no-print, StderrSink is the terminal print destination)
                eprintln!("{pad}· {name} {}", fields.join(" "));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FieldValue;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::SpanStart {
                id: 1,
                parent: None,
                name: "a".into(),
                fields: vec![("k".into(), FieldValue::U64(3))],
                t_ns: 10,
                thread: 1,
            },
            Record::Event {
                span: Some(1),
                name: "e".into(),
                fields: vec![],
                t_ns: 20,
                thread: 1,
            },
            Record::SpanEnd {
                id: 1,
                t_ns: 30,
                elapsed_ns: 20,
            },
        ]
    }

    #[test]
    fn ring_buffer_stores_and_evicts() {
        let (mut sink, handle) = RingBufferSink::with_capacity(2);
        for r in sample_records() {
            sink.record(&r);
        }
        assert_eq!(handle.len(), 2, "capacity 2 keeps newest 2");
        assert_eq!(handle.dropped(), 1);
        // Oldest evicted: first stored record is the event.
        assert!(matches!(handle.records()[0], Record::Event { .. }));
        handle.clear();
        assert!(handle.is_empty());
    }

    #[test]
    fn jsonl_writes_and_reads_back() {
        let dir = std::env::temp_dir().join("stco_obs_sink_test");
        let path = dir.join("trace.jsonl");
        let records = sample_records();
        {
            let mut sink = JsonlSink::create(&path).expect("creates");
            assert_eq!(sink.path(), path.as_path());
            for r in &records {
                sink.record(r);
            }
            sink.flush();
        }
        let back = JsonlSink::read_records(&path).expect("reads");
        assert_eq!(back, records);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stderr_sink_tracks_depth() {
        let mut sink = StderrSink::new();
        for r in sample_records() {
            sink.record(&r);
        }
        // Depth returns to zero after the span closes.
        assert_eq!(sink.depth.get(&1).copied(), Some(0));
        assert!(sink.span_thread.is_empty());
    }
}
