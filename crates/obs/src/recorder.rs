//! The process-global [`Recorder`]: span/event emission, sink fan-out
//! and the single wall clock every record shares.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::metrics::MetricsRegistry;
use crate::record::{FieldValue, Record};
use crate::sink::Sink;

static GLOBAL: OnceLock<Recorder> = OnceLock::new();
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Stack of open span ids on this thread (parent attribution).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Dense per-thread id (std ThreadId is opaque).
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
}

/// Thread-safe recorder: hands out span guards, stamps records against
/// one epoch and fans them out to installed sinks.
pub struct Recorder {
    epoch: Instant,
    next_id: AtomicU64,
    has_sinks: AtomicBool,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.enabled())
            .finish_non_exhaustive()
    }
}

impl Recorder {
    fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            has_sinks: AtomicBool::new(false),
            sinks: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The process-global recorder (created on first use).
    pub fn global() -> &'static Recorder {
        GLOBAL.get_or_init(Recorder::new)
    }

    /// Whether any sink is installed (the macros' fast-path check).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.has_sinks.load(Ordering::Relaxed)
    }

    /// The metrics registry (always live, sinks or not).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Nanoseconds since the recorder's epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Installs a sink; every subsequent record is fanned out to it.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        let mut sinks = self.sinks.lock().expect("sink registry poisoned");
        sinks.push(sink);
        self.has_sinks.store(true, Ordering::Relaxed);
    }

    /// Removes every sink (flushing each) — used by bench bins between
    /// sections and by tests for isolation.
    pub fn clear_sinks(&self) {
        let mut sinks = self.sinks.lock().expect("sink registry poisoned");
        for sink in sinks.iter_mut() {
            sink.flush();
        }
        sinks.clear();
        self.has_sinks.store(false, Ordering::Relaxed);
    }

    /// Flushes every installed sink.
    pub fn flush(&self) {
        let mut sinks = self.sinks.lock().expect("sink registry poisoned");
        for sink in sinks.iter_mut() {
            sink.flush();
        }
    }

    fn emit(&self, record: &Record) {
        if !self.enabled() {
            return;
        }
        let mut sinks = self.sinks.lock().expect("sink registry poisoned");
        for sink in sinks.iter_mut() {
            sink.record(record);
        }
    }

    /// The innermost open span on the calling thread, if any.
    ///
    /// Capture this before handing work to another thread, then open the
    /// worker's spans with [`Recorder::span_with_parent`] so the trace
    /// tree stays connected across the thread boundary.
    pub fn current_span(&self) -> Option<u64> {
        SPAN_STACK.with(|s| s.borrow().last().copied())
    }

    /// Opens a span. The returned guard closes it on drop; keep it alive
    /// for the duration of the region (`let _span = …`, not `let _ = …`).
    ///
    /// Spans always measure wall-clock (so callers may rely on
    /// [`SpanGuard::close`] returning real elapsed time) but only emit
    /// records when a sink is installed.
    pub fn span(
        &'static self,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
    ) -> SpanGuard {
        self.span_inner(name, fields, None)
    }

    /// Opens a span whose parent is `parent` rather than this thread's
    /// innermost open span — the cross-thread variant of
    /// [`Recorder::span`] used by worker threads so their spans nest
    /// under the span that spawned the parallel region.
    ///
    /// The new span still becomes the innermost span of the *calling*
    /// thread, so nested spans and events opened by the worker attach
    /// underneath it as usual.
    pub fn span_with_parent(
        &'static self,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
        parent: Option<u64>,
    ) -> SpanGuard {
        self.span_inner(name, fields, Some(parent))
    }

    fn span_inner(
        &'static self,
        name: &'static str,
        fields: &[(&'static str, FieldValue)],
        parent_override: Option<Option<u64>>,
    ) -> SpanGuard {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let stack_parent = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.last().copied();
            s.push(id);
            parent
        });
        let parent = parent_override.unwrap_or(stack_parent);
        let start = Instant::now();
        if self.enabled() {
            let record = Record::SpanStart {
                id,
                parent,
                name: name.to_string(),
                fields: fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                t_ns: self.now_ns(),
                thread: THREAD_ID.with(|t| *t),
            };
            self.emit(&record);
        }
        SpanGuard {
            recorder: self,
            id,
            start,
            closed: false,
        }
    }

    /// Emits an event attached to the innermost open span of this thread.
    pub fn event(&self, name: &str, fields: &[(&'static str, FieldValue)]) {
        if !self.enabled() {
            return;
        }
        let span = SPAN_STACK.with(|s| s.borrow().last().copied());
        let record = Record::Event {
            span,
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            t_ns: self.now_ns(),
            thread: THREAD_ID.with(|t| *t),
        };
        self.emit(&record);
    }
}

/// An open span; closing (drop or [`SpanGuard::close`]) records the
/// elapsed wall-clock.
#[derive(Debug)]
pub struct SpanGuard {
    recorder: &'static Recorder,
    id: u64,
    start: Instant,
    closed: bool,
}

impl SpanGuard {
    /// The span's id (for cross-referencing in sinks).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Seconds since the span opened (span still open).
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Closes the span now and returns the elapsed seconds — the same
    /// quantity the `SpanEnd` record carries, so table rows built from
    /// the return value and profiles folded from the trace agree exactly.
    pub fn close(mut self) -> f64 {
        self.finish()
    }

    fn finish(&mut self) -> f64 {
        if self.closed {
            return 0.0;
        }
        self.closed = true;
        let elapsed = self.start.elapsed();
        // Pop this id wherever it sits — tolerates out-of-order drops.
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|&x| x == self.id) {
                s.remove(pos);
            }
        });
        if self.recorder.enabled() {
            let record = Record::SpanEnd {
                id: self.id,
                t_ns: self.recorder.now_ns(),
                elapsed_ns: elapsed.as_nanos() as u64,
            };
            self.recorder.emit(&record);
        }
        elapsed.as_secs_f64()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::RingBufferSink;

    // Recorder state is process-global; keep all recorder tests in one
    // function so parallel test threads don't fight over sinks.
    #[test]
    fn spans_nest_events_attach_and_close_reports_elapsed() {
        let recorder = Recorder::global();
        recorder.clear_sinks();
        let (sink, handle) = RingBufferSink::with_capacity(128);
        recorder.add_sink(Box::new(sink));

        let outer = recorder.span("test.outer", &[("k", FieldValue::from(1u64))]);
        let inner = recorder.span("test.inner", &[]);
        recorder.event("test.ping", &[]);
        let inner_s = inner.close();
        std::hint::black_box((0..50_000u64).sum::<u64>());
        let outer_s = outer.close();
        recorder.clear_sinks();

        assert!(inner_s >= 0.0 && outer_s >= inner_s, "outer ⊇ inner");
        let records = handle.records();
        let (mut starts, mut ends, mut events) = (0, 0, 0);
        let mut inner_parent = None;
        let mut event_span = None;
        let mut inner_id = None;
        for r in &records {
            match r {
                Record::SpanStart {
                    name, parent, id, ..
                } => {
                    starts += 1;
                    if name == "test.inner" {
                        inner_parent = *parent;
                        inner_id = Some(*id);
                    }
                }
                Record::SpanEnd { .. } => ends += 1,
                Record::Event { span, .. } => {
                    events += 1;
                    event_span = *span;
                }
            }
        }
        assert_eq!((starts, ends, events), (2, 2, 1));
        assert!(inner_parent.is_some(), "inner span has outer as parent");
        assert_eq!(event_span, inner_id, "event attaches to innermost span");
        // Timestamps are monotone non-decreasing in emission order.
        for w in records.windows(2) {
            assert!(w[1].t_ns() >= w[0].t_ns());
        }

        // Cross-thread parenting: a worker thread has its own (empty)
        // span stack, so span_with_parent must carry the caller's span id
        // across the boundary explicitly.
        let (sink, handle) = RingBufferSink::with_capacity(128);
        recorder.add_sink(Box::new(sink));
        let caller = recorder.span("test.caller", &[]);
        let caller_id = caller.id();
        assert_eq!(recorder.current_span(), Some(caller_id));
        let worker_parent = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    assert_eq!(recorder.current_span(), None, "fresh thread stack");
                    let w = recorder.span_with_parent("test.worker", &[], Some(caller_id));
                    assert_eq!(recorder.current_span(), Some(w.id()));
                    w.close();
                })
                .join()
                // stco-check: allow(no-unwrap, test-only join on a thread that cannot panic)
                .expect("worker thread");
            handle.records().iter().find_map(|r| match r {
                Record::SpanStart { name, parent, .. } if name == "test.worker" => Some(*parent),
                _ => None,
            })
        });
        caller.close();
        recorder.clear_sinks();
        assert_eq!(
            worker_parent,
            Some(Some(caller_id)),
            "worker span parents under the caller's span"
        );
    }
}
