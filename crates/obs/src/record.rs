//! The trace data model: what sinks receive, what profiles fold.

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Floating-point value.
    F64(f64),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl FieldValue {
    /// The value as `f64` where that makes sense.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            FieldValue::F64(v) => Some(*v),
            FieldValue::I64(v) => Some(*v as f64),
            FieldValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            FieldValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! from_impls {
    ($($ty:ty => $variant:ident as $cast:ty),+ $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> Self {
                FieldValue::$variant(v as $cast)
            }
        })+
    };
}

from_impls! {
    f64 => F64 as f64,
    f32 => F64 as f64,
    i64 => I64 as i64,
    i32 => I64 as i64,
    u64 => U64 as u64,
    u32 => U64 as u64,
    usize => U64 as u64,
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// Named fields of a span or event.
pub type Fields = Vec<(String, FieldValue)>;

/// One trace record. Timestamps are nanoseconds since the global
/// recorder's epoch (one clock for every record in a process).
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A span opened.
    SpanStart {
        /// Process-unique span id.
        id: u64,
        /// Enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Span name (`crate.operation`).
        name: String,
        /// Attached fields.
        fields: Fields,
        /// Start time, ns since epoch.
        t_ns: u64,
        /// Opening thread (opaque id).
        thread: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Id of the span being closed.
        id: u64,
        /// Close time, ns since epoch.
        t_ns: u64,
        /// Span duration, ns (close minus open on the same monotonic
        /// clock — authoritative even if `t_ns` values are coarse).
        elapsed_ns: u64,
    },
    /// A point-in-time event.
    Event {
        /// Innermost open span on the emitting thread, if any.
        span: Option<u64>,
        /// Event name.
        name: String,
        /// Attached fields.
        fields: Fields,
        /// Emission time, ns since epoch.
        t_ns: u64,
        /// Emitting thread (opaque id).
        thread: u64,
    },
}

impl Record {
    /// The record's timestamp, ns since epoch.
    pub fn t_ns(&self) -> u64 {
        match self {
            Record::SpanStart { t_ns, .. }
            | Record::SpanEnd { t_ns, .. }
            | Record::Event { t_ns, .. } => *t_ns,
        }
    }

    /// The record's name, if it has one.
    pub fn name(&self) -> Option<&str> {
        match self {
            Record::SpanStart { name, .. } | Record::Event { name, .. } => Some(name),
            Record::SpanEnd { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_cover_common_types() {
        assert_eq!(FieldValue::from(1.5f64), FieldValue::F64(1.5));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-2i32), FieldValue::I64(-2));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
    }

    #[test]
    fn as_f64_covers_numeric_variants() {
        assert_eq!(FieldValue::U64(4).as_f64(), Some(4.0));
        assert_eq!(FieldValue::I64(-4).as_f64(), Some(-4.0));
        assert_eq!(FieldValue::Str("x".into()).as_f64(), None);
    }
}
