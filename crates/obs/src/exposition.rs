//! Metric exposition: renders a [`MetricSnapshot`] list as a JSON
//! document or Prometheus-style text, for the `metrics` admin op of
//! network services.
//!
//! **JSON** (`snapshot_json`): `{"metrics": [...]}` with one object per
//! metric — `{"name", "kind", ...}` where `kind` is `counter`, `gauge`,
//! `histogram` or `windowed_histogram`. Histogram entries carry
//! `count`/`sum`/`mean`/quantiles and cumulative `le` buckets as
//! `[bound, count]` pairs; windowed entries additionally carry a
//! `window` object with the rolling count and p50/p90/p95/p99.
//!
//! **Prometheus text** (`prometheus_text`): names are sanitized
//! (`.` → `_`), `name{key=value}` labels fold into `{key="value"}`.
//! Counters and gauges render as single samples; cumulative histograms
//! as `_bucket{le=...}`/`_sum`/`_count` series; windowed histograms as
//! summaries (`{quantile="0.5"}`… over the window, `_sum`/`_count`
//! cumulative) — the conventional shape for server-side quantiles.

use crate::json::JsonValue;
use crate::metrics::MetricSnapshot;

/// Splits a registry name into its base and folded `{key=value}`
/// labels: `"serve.latency_seconds{model=iv}"` →
/// `("serve.latency_seconds", [("model", "iv")])`.
#[must_use]
pub fn split_labels(name: &str) -> (&str, Vec<(&str, &str)>) {
    let Some(open) = name.find('{') else {
        return (name, Vec::new());
    };
    let Some(inner) = name[open..]
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
    else {
        return (name, Vec::new());
    };
    let labels = inner
        .split(',')
        .filter_map(|pair| pair.split_once('='))
        .map(|(k, v)| (k.trim(), v.trim()))
        .collect();
    (&name[..open], labels)
}

/// Sanitizes a base metric name for Prometheus: dots become
/// underscores, any other non-`[a-zA-Z0-9_]` byte is dropped to `_`.
#[must_use]
pub fn prometheus_name(base: &str) -> String {
    base.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn opt_num(v: Option<f64>) -> JsonValue {
    v.map_or(JsonValue::Null, JsonValue::Num)
}

fn buckets_json(buckets: &[(f64, u64)]) -> JsonValue {
    JsonValue::Arr(
        buckets
            .iter()
            .map(|&(bound, count)| {
                JsonValue::Arr(vec![JsonValue::Num(bound), JsonValue::Num(count as f64)])
            })
            .collect(),
    )
}

/// Renders a snapshot list as the JSON document described in the
/// module docs. Metric order is preserved (registry snapshots are
/// already name-sorted).
#[must_use]
pub fn snapshot_json(snaps: &[MetricSnapshot]) -> JsonValue {
    let metrics = snaps
        .iter()
        .map(|snap| match snap {
            MetricSnapshot::Counter { name, value } => JsonValue::Obj(vec![
                ("name".to_string(), JsonValue::Str(name.clone())),
                ("kind".to_string(), JsonValue::Str("counter".to_string())),
                ("value".to_string(), JsonValue::Num(*value as f64)),
            ]),
            MetricSnapshot::Gauge { name, value } => JsonValue::Obj(vec![
                ("name".to_string(), JsonValue::Str(name.clone())),
                ("kind".to_string(), JsonValue::Str("gauge".to_string())),
                ("value".to_string(), JsonValue::Num(*value)),
            ]),
            MetricSnapshot::Histogram {
                name,
                count,
                sum,
                mean,
                p50,
                p90,
                p99,
                buckets,
            } => JsonValue::Obj(vec![
                ("name".to_string(), JsonValue::Str(name.clone())),
                ("kind".to_string(), JsonValue::Str("histogram".to_string())),
                ("count".to_string(), JsonValue::Num(*count as f64)),
                ("sum".to_string(), JsonValue::Num(*sum)),
                ("mean".to_string(), opt_num(*mean)),
                ("p50".to_string(), opt_num(*p50)),
                ("p90".to_string(), opt_num(*p90)),
                ("p99".to_string(), opt_num(*p99)),
                ("buckets".to_string(), buckets_json(buckets)),
            ]),
            MetricSnapshot::Windowed {
                name,
                count,
                sum,
                mean,
                window_count,
                p50,
                p90,
                p95,
                p99,
                buckets,
            } => JsonValue::Obj(vec![
                ("name".to_string(), JsonValue::Str(name.clone())),
                (
                    "kind".to_string(),
                    JsonValue::Str("windowed_histogram".to_string()),
                ),
                ("count".to_string(), JsonValue::Num(*count as f64)),
                ("sum".to_string(), JsonValue::Num(*sum)),
                ("mean".to_string(), opt_num(*mean)),
                (
                    "window".to_string(),
                    JsonValue::Obj(vec![
                        ("count".to_string(), JsonValue::Num(*window_count as f64)),
                        ("p50".to_string(), opt_num(*p50)),
                        ("p90".to_string(), opt_num(*p90)),
                        ("p95".to_string(), opt_num(*p95)),
                        ("p99".to_string(), opt_num(*p99)),
                    ]),
                ),
                ("buckets".to_string(), buckets_json(buckets)),
            ]),
        })
        .collect();
    JsonValue::Obj(vec![("metrics".to_string(), JsonValue::Arr(metrics))])
}

/// Formats an f64 sample the way Prometheus expects (shortest exact
/// decimal; infinities as `+Inf`/`-Inf`).
fn sample(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn label_block(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders a snapshot list as Prometheus-style text exposition (see
/// module docs for the mapping per metric kind).
#[must_use]
pub fn prometheus_text(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    for snap in snaps {
        let (base, labels) = split_labels(snap.name());
        let pname = prometheus_name(base);
        match snap {
            MetricSnapshot::Counter { value, .. } => {
                out.push_str(&format!("# TYPE {pname} counter\n"));
                out.push_str(&format!("{pname}{} {value}\n", label_block(&labels, None)));
            }
            MetricSnapshot::Gauge { value, .. } => {
                out.push_str(&format!("# TYPE {pname} gauge\n"));
                out.push_str(&format!(
                    "{pname}{} {}\n",
                    label_block(&labels, None),
                    sample(*value)
                ));
            }
            MetricSnapshot::Histogram {
                count,
                sum,
                buckets,
                ..
            } => {
                out.push_str(&format!("# TYPE {pname} histogram\n"));
                for (bound, cum) in buckets {
                    out.push_str(&format!(
                        "{pname}_bucket{} {cum}\n",
                        label_block(&labels, Some(("le", &sample(*bound))))
                    ));
                }
                out.push_str(&format!(
                    "{pname}_bucket{} {count}\n",
                    label_block(&labels, Some(("le", "+Inf")))
                ));
                out.push_str(&format!(
                    "{pname}_sum{} {}\n",
                    label_block(&labels, None),
                    sample(*sum)
                ));
                out.push_str(&format!(
                    "{pname}_count{} {count}\n",
                    label_block(&labels, None)
                ));
            }
            MetricSnapshot::Windowed {
                count,
                sum,
                p50,
                p90,
                p95,
                p99,
                ..
            } => {
                out.push_str(&format!("# TYPE {pname} summary\n"));
                for (q, v) in [("0.5", p50), ("0.9", p90), ("0.95", p95), ("0.99", p99)] {
                    if let Some(v) = v {
                        out.push_str(&format!(
                            "{pname}{} {}\n",
                            label_block(&labels, Some(("quantile", q))),
                            sample(*v)
                        ));
                    }
                }
                out.push_str(&format!(
                    "{pname}_sum{} {}\n",
                    label_block(&labels, None),
                    sample(*sum)
                ));
                out.push_str(&format!(
                    "{pname}_count{} {count}\n",
                    label_block(&labels, None)
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{seconds_buckets, MetricsRegistry, WindowConfig};

    fn demo_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(7);
        reg.gauge("serve.queue_depth").set(3.0);
        let h = reg.histogram("serve.batch_size", &[1.0, 2.0, 4.0]);
        h.observe(1.0);
        h.observe(3.0);
        let w = reg.windowed_histogram(
            "serve.latency_seconds",
            &seconds_buckets(),
            WindowConfig::default(),
        );
        w.observe_at(2e-3, 0);
        w.observe_at(4e-3, 0);
        reg
    }

    #[test]
    fn split_labels_handles_bare_and_labeled_names() {
        assert_eq!(split_labels("a.b"), ("a.b", vec![]));
        assert_eq!(
            split_labels("flow.stage_seconds{stage=device}"),
            ("flow.stage_seconds", vec![("stage", "device")])
        );
        // Malformed (unterminated) label blocks fall back to the raw name.
        assert_eq!(split_labels("a.b{oops"), ("a.b{oops", vec![]));
    }

    #[test]
    fn json_snapshot_has_all_kinds() {
        let reg = demo_registry();
        let doc = snapshot_json(&reg.snapshot());
        let text = doc.render();
        let parsed = JsonValue::parse(&text).expect("exposition JSON must reparse");
        let JsonValue::Arr(metrics) = parsed.get("metrics").expect("metrics key").clone() else {
            panic!("metrics must be an array");
        };
        assert_eq!(metrics.len(), 4);
        let kinds: Vec<&str> = metrics
            .iter()
            .filter_map(|m| m.get("kind").and_then(|k| k.as_str()))
            .collect();
        assert_eq!(
            kinds,
            vec!["histogram", "windowed_histogram", "gauge", "counter"],
            "snapshot order is name-sorted"
        );
        let windowed = &metrics[1];
        assert_eq!(
            windowed.get("name").and_then(|n| n.as_str()),
            Some("serve.latency_seconds")
        );
        let window = windowed.get("window").expect("window block");
        assert_eq!(window.get("count").and_then(JsonValue::as_u64), Some(2));
        assert!(window.get("p99").and_then(JsonValue::as_f64).is_some());
    }

    #[test]
    fn prometheus_text_renders_series() {
        let reg = demo_registry();
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 7\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 3\n"));
        assert!(text.contains("# TYPE serve_batch_size histogram\n"));
        assert!(text.contains("serve_batch_size_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("serve_batch_size_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("serve_batch_size_count 2\n"));
        assert!(text.contains("# TYPE serve_latency_seconds summary\n"));
        assert!(text.contains("serve_latency_seconds{quantile=\"0.99\"}"));
        assert!(text.contains("serve_latency_seconds_count 2\n"));
    }

    #[test]
    fn prometheus_text_folds_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("flow.stage_evals{stage=device}").add(2);
        let text = prometheus_text(&reg.snapshot());
        assert!(
            text.contains("flow_stage_evals{stage=\"device\"} 2\n"),
            "got: {text}"
        );
    }

    #[test]
    fn empty_windowed_summary_omits_quantiles() {
        let reg = MetricsRegistry::new();
        reg.windowed_histogram("a.latency_seconds", &[1.0], WindowConfig::default());
        let text = prometheus_text(&reg.snapshot());
        assert!(!text.contains("quantile"), "empty window has no quantiles");
        assert!(text.contains("a_latency_seconds_count 0\n"));
    }
}
