//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms with percentile summaries.
//!
//! Metrics are always live (no sink required): handles are cheap
//! `Arc`-backed clones, so hot loops fetch a handle once and update it
//! with a few atomic ops per observation. No handle operation takes a
//! lock — [`Histogram::observe`] and [`WindowedHistogram::observe`] are
//! wait-free apart from the CAS retry loops on the f64 accumulators
//! (the registry's `Mutex` guards registration only, never the hot
//! path).
//!
//! Two histogram flavors:
//!
//! * [`Histogram`] — cumulative since process start (or [`reset`]).
//! * [`WindowedHistogram`] — the same buckets, plus a ring of rotating
//!   epochs so quantiles can be read over a **sliding window** of the
//!   last N epochs. `serve.latency_seconds` uses this so p99 reflects
//!   current load, not the whole process lifetime.
//!
//! Label convention: low-cardinality labels are folded into the name as
//! `name{key=value}` (see [`labeled`]). Bare names follow the
//! `area.noun_unit` convention (`serve.latency_seconds`) enforced by
//! the `metric-name` lint in `stco-check`.
//!
//! [`reset`]: Histogram::reset

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Formats a labeled metric name: `name{key=value}`.
pub fn labeled(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}={value}}}")
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// An `f64` stored as its bit pattern in an `AtomicU64`, with CAS-loop
/// read-modify-write helpers. Relaxed ordering throughout: metric
/// accumulators need atomicity, not inter-variable ordering.
#[derive(Debug)]
struct AtomicF64(AtomicU64);

impl AtomicF64 {
    fn new(v: f64) -> Self {
        AtomicF64(AtomicU64::new(v.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    // stco-hot
    fn add(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Lowers the stored value to `v` if `v` is smaller.
    // stco-hot
    fn fetch_min(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v < f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the stored value to `v` if `v` is larger.
    // stco-hot
    fn fetch_max(&self, v: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Shared atomic accumulator: per-bucket counts plus count/sum/min/max.
/// Backs both the cumulative state of [`Histogram`] and each epoch of a
/// [`WindowedHistogram`].
#[derive(Debug)]
struct AtomicBuckets {
    /// Per-bucket counts (`counts[i]` ↔ `value ≤ bounds[i]`), plus one
    /// overflow bucket at the end.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicF64,
    min: AtomicF64,
    max: AtomicF64,
}

impl AtomicBuckets {
    fn new(n_bounds: usize) -> Self {
        AtomicBuckets {
            counts: (0..=n_bounds).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicF64::new(0.0),
            min: AtomicF64::new(f64::INFINITY),
            max: AtomicF64::new(f64::NEG_INFINITY),
        }
    }

    // stco-hot
    #[inline]
    fn observe(&self, idx: usize, v: f64) {
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.add(v);
        // stco-check: allow(atomic-ordering, AtomicF64 wrapper pins Relaxed in its CAS loop)
        self.min.fetch_min(v);
        // stco-check: allow(atomic-ordering, AtomicF64 wrapper pins Relaxed in its CAS loop)
        self.max.fetch_max(v);
    }

    fn clear(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.set(0.0);
        self.min.set(f64::INFINITY);
        self.max.set(f64::NEG_INFINITY);
    }

    fn read(&self) -> HistogramReading {
        HistogramReading {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.get(),
            min: self.min.get(),
            max: self.max.get(),
        }
    }

    /// Accumulates this state into `into` (window merges).
    fn merge_into(&self, into: &mut HistogramReading) {
        for (acc, c) in into.counts.iter_mut().zip(&self.counts) {
            *acc += c.load(Ordering::Relaxed);
        }
        into.count += self.count.load(Ordering::Relaxed);
        into.sum += self.sum.get();
        into.min = into.min.min(self.min.get());
        into.max = into.max.max(self.max.get());
    }
}

/// A point-in-time copy of histogram state: per-bucket counts (overflow
/// bucket last), observation count/sum and observed extrema.
///
/// Fields are read individually with relaxed atomics, so a reading
/// taken concurrently with writers is *weakly* consistent (e.g. `count`
/// may trail the bucket total by in-flight observations). Quantile
/// estimation tolerates this.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramReading {
    /// Per-bucket counts; `counts[i]` pairs with `bounds[i]`, the last
    /// entry is the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
}

impl HistogramReading {
    fn empty(n_bounds: usize) -> Self {
        HistogramReading {
            counts: vec![0; n_bounds + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Mean observation, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Estimated `q`-quantile against `bounds`, or `None` when empty.
    ///
    /// Linear interpolation inside the containing bucket, clamped to
    /// the exact observed `[min, max]` — so single-sample readings
    /// report that sample for every quantile, and a saturated overflow
    /// bucket reports `max` rather than infinity.
    #[must_use]
    pub fn quantile(&self, bounds: &[f64], q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if rank <= next as f64 || i + 1 == self.counts.len() {
                // Bucket bounds: (lower, upper]; the overflow bucket and
                // the first bucket borrow the observed extrema.
                let upper = if i < bounds.len() {
                    bounds[i]
                } else {
                    self.max
                };
                let lower = if i == 0 {
                    self.min.min(upper)
                } else {
                    bounds[i - 1]
                };
                let frac = ((rank - cumulative as f64) / c as f64).clamp(0.0, 1.0);
                let v = lower + (upper - lower) * frac;
                return Some(v.clamp(self.min, self.max));
            }
            cumulative = next;
        }
        Some(self.max)
    }

    /// Prometheus-style cumulative `le` buckets: for each finite bound,
    /// the number of observations ≤ that bound. The `+Inf` bucket is
    /// [`count`](Self::count).
    #[must_use]
    pub fn le_buckets(&self, bounds: &[f64]) -> Vec<(f64, u64)> {
        let mut cumulative = 0u64;
        bounds
            .iter()
            .zip(&self.counts)
            .map(|(&b, &c)| {
                cumulative += c;
                (b, cumulative)
            })
            .collect()
    }
}

/// A fixed-bucket histogram: cumulative-style buckets defined by their
/// upper bounds, plus an overflow bucket. `observe` is lock-free.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Arc<Vec<f64>>,
    state: Arc<AtomicBuckets>,
}

impl Histogram {
    /// Creates a standalone histogram (registry-less use: tests,
    /// reference comparisons).
    #[must_use]
    pub fn with_bounds(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Histogram {
            bounds: Arc::new(bounds),
            state: Arc::new(AtomicBuckets::new(n)),
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation. Lock-free: two `fetch_add`s plus CAS
    /// loops on the f64 accumulators.
    // stco-hot
    pub fn observe(&self, v: f64) {
        let idx = bucket_index(&self.bounds, v);
        self.state.observe(idx, v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.state.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.state.sum.get()
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        self.read().mean()
    }

    /// Estimated `q`-quantile (`0 ≤ q ≤ 1`), or `None` when empty.
    ///
    /// See [`HistogramReading::quantile`] for the estimation contract.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.read().quantile(&self.bounds, q)
    }

    /// A weakly consistent copy of the full state.
    #[must_use]
    pub fn read(&self) -> HistogramReading {
        self.state.read()
    }

    /// Per-bucket observation counts (overflow bucket last).
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.read().counts
    }

    /// Resets all state (bounds kept).
    pub fn reset(&self) {
        self.state.clear();
    }
}

#[inline]
fn bucket_index(bounds: &[f64], v: f64) -> usize {
    bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len())
}

/// Shape of a [`WindowedHistogram`]'s sliding window: `epochs` ring
/// slots of `epoch_len` wall time each, so the window spans
/// `epochs × epoch_len` (e.g. 16 × 1 s = the last 16 seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowConfig {
    /// Wall-clock length of one epoch.
    pub epoch_len: Duration,
    /// Number of ring slots (≥ 2; lower values are raised to 2).
    pub epochs: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            epoch_len: Duration::from_secs(1),
            epochs: 16,
        }
    }
}

/// Ring-slot marker for "never owned by any tick".
const TICK_UNUSED: u64 = u64::MAX;

#[derive(Debug)]
struct Epoch {
    /// Tick that currently owns this slot (`TICK_UNUSED` when fresh).
    /// Claimed by CAS before the slot is cleared for reuse.
    tick: AtomicU64,
    /// Last tick whose clear completed: readers and fellow writers
    /// treat the slot's counts as valid only when `ready == tick`.
    ready: AtomicU64,
    state: AtomicBuckets,
}

#[derive(Debug)]
struct WindowInner {
    epoch_ns: u64,
    epochs: Vec<Epoch>,
    start: Instant,
    cumulative: AtomicBuckets,
}

/// A histogram with both cumulative state and a **sliding window**: a
/// ring of N epochs rotated by wall-clock tick, so quantiles can be
/// read over just the last `N × epoch_len` of traffic.
///
/// `observe` is lock-free. Rotation is cooperative: the first observer
/// of a new tick claims the oldest ring slot with a CAS, clears it and
/// publishes it; no background thread is needed. Ticks are plain
/// integers (`elapsed / epoch_len`), and every time-dependent operation
/// has an `_at(tick)` variant so tests can drive a fake clock
/// deterministically.
///
/// Window reads taken concurrently with writers are weakly consistent,
/// like every other metric read; with an explicit tick and no
/// concurrent writers they are exact.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    bounds: Arc<Vec<f64>>,
    inner: Arc<WindowInner>,
}

impl WindowedHistogram {
    /// Creates a standalone windowed histogram (registry-less use:
    /// tests, reference comparisons).
    #[must_use]
    pub fn with_bounds(bounds: Vec<f64>, config: WindowConfig) -> Self {
        let n = bounds.len();
        let epochs = config.epochs.max(2);
        WindowedHistogram {
            bounds: Arc::new(bounds),
            inner: Arc::new(WindowInner {
                epoch_ns: config.epoch_len.as_nanos().max(1) as u64,
                epochs: (0..epochs)
                    .map(|_| Epoch {
                        tick: AtomicU64::new(TICK_UNUSED),
                        ready: AtomicU64::new(TICK_UNUSED),
                        state: AtomicBuckets::new(n),
                    })
                    .collect(),
                start: Instant::now(),
                cumulative: AtomicBuckets::new(n),
            }),
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Number of ring epochs in the window.
    #[must_use]
    pub fn window_epochs(&self) -> usize {
        self.inner.epochs.len()
    }

    /// Wall-clock length of one epoch.
    #[must_use]
    pub fn epoch_len(&self) -> Duration {
        Duration::from_nanos(self.inner.epoch_ns)
    }

    /// The current wall-clock tick (`elapsed / epoch_len`).
    #[must_use]
    pub fn current_tick(&self) -> u64 {
        (self.inner.start.elapsed().as_nanos() as u64) / self.inner.epoch_ns
    }

    /// Records one observation at the current wall-clock tick.
    pub fn observe(&self, v: f64) {
        self.observe_at(v, self.current_tick());
    }

    /// Records one observation at an explicit tick (fake-clock path;
    /// also counted into the cumulative state). Observations older than
    /// the slot's current owner are dropped from the window — they are
    /// already outside it.
    // stco-hot
    pub fn observe_at(&self, v: f64, tick: u64) {
        let idx = bucket_index(&self.bounds, v);
        self.inner.cumulative.observe(idx, v);
        let slot = &self.inner.epochs[(tick % self.inner.epochs.len() as u64) as usize];
        loop {
            let owner = slot.tick.load(Ordering::Acquire);
            if owner == tick {
                if slot.ready.load(Ordering::Acquire) == tick {
                    slot.state.observe(idx, v);
                    return;
                }
                // Another thread claimed this tick and is still
                // clearing the slot; wait for it to publish.
                std::hint::spin_loop();
                continue;
            }
            if owner != TICK_UNUSED && owner > tick {
                // The ring has already rotated past this tick.
                return;
            }
            if slot
                .tick
                .compare_exchange(owner, tick, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.state.clear();
                slot.ready.store(tick, Ordering::Release);
                slot.state.observe(idx, v);
                return;
            }
        }
    }

    /// Merged reading over the window ending at `tick` (inclusive):
    /// slots owned by ticks in `(tick - epochs, tick]`.
    #[must_use]
    pub fn window_reading_at(&self, tick: u64) -> HistogramReading {
        let mut out = HistogramReading::empty(self.bounds.len());
        let span = self.inner.epochs.len() as u64;
        let oldest = tick.saturating_sub(span - 1);
        for slot in &self.inner.epochs {
            let owner = slot.tick.load(Ordering::Acquire);
            if owner == TICK_UNUSED || owner < oldest || owner > tick {
                continue;
            }
            if slot.ready.load(Ordering::Acquire) != owner {
                continue;
            }
            slot.state.merge_into(&mut out);
        }
        out
    }

    /// Merged reading over the window ending at the current tick.
    #[must_use]
    pub fn window_reading(&self) -> HistogramReading {
        self.window_reading_at(self.current_tick())
    }

    /// Observations inside the current window.
    #[must_use]
    pub fn window_count(&self) -> u64 {
        self.window_reading().count
    }

    /// Estimated `q`-quantile over the window ending at `tick`, or
    /// `None` when the window is empty.
    #[must_use]
    pub fn quantile_at(&self, q: f64, tick: u64) -> Option<f64> {
        self.window_reading_at(tick).quantile(&self.bounds, q)
    }

    /// Estimated `q`-quantile over the current window (`0 ≤ q ≤ 1`),
    /// or `None` when the window is empty. The windowed analogue of
    /// [`Histogram::quantile`].
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.quantile_at(q, self.current_tick())
    }

    /// Cumulative (since construction/reset) observation count.
    pub fn count(&self) -> u64 {
        self.inner.cumulative.count.load(Ordering::Relaxed)
    }

    /// Cumulative sum of observations.
    pub fn sum(&self) -> f64 {
        self.inner.cumulative.sum.get()
    }

    /// Cumulative mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        self.inner.cumulative.read().mean()
    }

    /// Cumulative reading (all observations ever, regardless of window).
    #[must_use]
    pub fn cumulative_reading(&self) -> HistogramReading {
        self.inner.cumulative.read()
    }

    /// Estimated `q`-quantile over the cumulative state.
    #[must_use]
    pub fn cumulative_quantile(&self, q: f64) -> Option<f64> {
        self.inner.cumulative.read().quantile(&self.bounds, q)
    }

    /// Resets cumulative and window state (bounds and shape kept).
    pub fn reset(&self) {
        self.inner.cumulative.clear();
        for slot in &self.inner.epochs {
            slot.ready.store(TICK_UNUSED, Ordering::Release);
            slot.tick.store(TICK_UNUSED, Ordering::Release);
            slot.state.clear();
        }
    }
}

/// Log-spaced seconds buckets (1 µs … 1000 s), the default for
/// `*_seconds` histograms.
pub fn seconds_buckets() -> Vec<f64> {
    let mut out = Vec::new();
    let mut b = 1e-6;
    while b <= 1.0e3 + 1e-9 {
        out.push(b);
        out.push(b * 2.5);
        out.push(b * 5.0);
        b *= 10.0;
    }
    out
}

/// Log-spaced dimensionless buckets (1e-9 … 1e3), suited to training
/// losses and rewards spanning many decades.
pub fn loss_buckets() -> Vec<f64> {
    let mut out = Vec::new();
    let mut b = 1e-9;
    while b <= 1.0e3 + 1e-9 {
        out.push(b);
        out.push(b * 3.0);
        b *= 10.0;
    }
    out
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Windowed(WindowedHistogram),
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// Counter reading.
    Counter {
        /// Metric name.
        name: String,
        /// Value.
        value: u64,
    },
    /// Gauge reading.
    Gauge {
        /// Metric name.
        name: String,
        /// Value.
        value: f64,
    },
    /// Histogram summary (cumulative).
    Histogram {
        /// Metric name.
        name: String,
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: f64,
        /// Mean (`None` when empty).
        mean: Option<f64>,
        /// p50 estimate.
        p50: Option<f64>,
        /// p90 estimate.
        p90: Option<f64>,
        /// p99 estimate.
        p99: Option<f64>,
        /// Cumulative `le` buckets: `(upper_bound, count ≤ bound)` per
        /// finite bound (the implicit `+Inf` bucket equals `count`).
        buckets: Vec<(f64, u64)>,
    },
    /// Sliding-window histogram summary: cumulative count/sum/mean plus
    /// rolling quantiles over the current window.
    Windowed {
        /// Metric name.
        name: String,
        /// Cumulative observation count.
        count: u64,
        /// Cumulative observation sum.
        sum: f64,
        /// Cumulative mean (`None` when empty).
        mean: Option<f64>,
        /// Observations inside the current window.
        window_count: u64,
        /// Rolling p50 estimate (`None` when the window is empty).
        p50: Option<f64>,
        /// Rolling p90 estimate.
        p90: Option<f64>,
        /// Rolling p95 estimate.
        p95: Option<f64>,
        /// Rolling p99 estimate.
        p99: Option<f64>,
        /// Window `le` buckets: `(upper_bound, count ≤ bound)` over the
        /// current window only.
        buckets: Vec<(f64, u64)>,
    },
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. }
            | MetricSnapshot::Gauge { name, .. }
            | MetricSnapshot::Histogram { name, .. }
            | MetricSnapshot::Windowed { name, .. } => name,
        }
    }
}

/// Registry of named metrics. Same name → same underlying metric; a
/// name registered as one kind and fetched as another panics (a naming
/// bug worth failing loudly on).
#[derive(Debug)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        // A poisoned registry only means a panic elsewhere while the
        // map was locked; the map itself holds no cross-entry
        // invariants, so keep serving metrics.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fetches (or creates) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        match self
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            // stco-check: allow(no-unwrap, kind mismatch is a caller bug; panicking here is the documented contract)
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Fetches (or creates) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Metric::Gauge(g) => g.clone(),
            // stco-check: allow(no-unwrap, kind mismatch is a caller bug; panicking here is the documented contract)
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Fetches (or creates) a histogram with the given bucket bounds
    /// (bounds are fixed at first registration).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        match self
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::with_bounds(bounds.to_vec())))
        {
            Metric::Histogram(h) => h.clone(),
            // stco-check: allow(no-unwrap, kind mismatch is a caller bug; panicking here is the documented contract)
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Fetches (or creates) a sliding-window histogram (bounds and
    /// window shape are fixed at first registration).
    pub fn windowed_histogram(
        &self,
        name: &str,
        bounds: &[f64],
        config: WindowConfig,
    ) -> WindowedHistogram {
        match self.lock().entry(name.to_string()).or_insert_with(|| {
            Metric::Windowed(WindowedHistogram::with_bounds(bounds.to_vec(), config))
        }) {
            Metric::Windowed(w) => w.clone(),
            // stco-check: allow(no-unwrap, kind mismatch is a caller bug; panicking here is the documented contract)
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Snapshots every registered metric, in deterministic sorted-name
    /// order (the `BTreeMap` iteration order), so snapshots and reports
    /// diff cleanly across runs.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let m = self.lock();
        m.iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => MetricSnapshot::Counter {
                    name: name.clone(),
                    value: c.get(),
                },
                Metric::Gauge(g) => MetricSnapshot::Gauge {
                    name: name.clone(),
                    value: g.get(),
                },
                Metric::Histogram(h) => {
                    let r = h.read();
                    MetricSnapshot::Histogram {
                        name: name.clone(),
                        count: r.count,
                        sum: r.sum,
                        mean: r.mean(),
                        p50: r.quantile(h.bounds(), 0.5),
                        p90: r.quantile(h.bounds(), 0.9),
                        p99: r.quantile(h.bounds(), 0.99),
                        buckets: r.le_buckets(h.bounds()),
                    }
                }
                Metric::Windowed(w) => {
                    let cum = w.cumulative_reading();
                    let win = w.window_reading();
                    MetricSnapshot::Windowed {
                        name: name.clone(),
                        count: cum.count,
                        sum: cum.sum,
                        mean: cum.mean(),
                        window_count: win.count,
                        p50: win.quantile(w.bounds(), 0.5),
                        p90: win.quantile(w.bounds(), 0.9),
                        p95: win.quantile(w.bounds(), 0.95),
                        p99: win.quantile(w.bounds(), 0.99),
                        buckets: win.le_buckets(w.bounds()),
                    }
                }
            })
            .collect()
    }

    /// Renders the snapshot as a Markdown table (sorted by name).
    /// Windowed histograms report rolling quantiles over the current
    /// window and cumulative count/sum/mean.
    pub fn markdown(&self) -> String {
        let mut out =
            String::from("| metric | count/value | sum | mean | p50 | p90 | p99 |\n|---|---:|---:|---:|---:|---:|---:|\n");
        let fmt = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.4e}"));
        for snap in self.snapshot() {
            match snap {
                MetricSnapshot::Counter { name, value } => {
                    out.push_str(&format!("| {name} | {value} | — | — | — | — | — |\n"));
                }
                MetricSnapshot::Gauge { name, value } => {
                    out.push_str(&format!("| {name} | {value:.4e} | — | — | — | — | — |\n"));
                }
                MetricSnapshot::Histogram {
                    name,
                    count,
                    sum,
                    mean,
                    p50,
                    p90,
                    p99,
                    ..
                } => {
                    out.push_str(&format!(
                        "| {name} | {count} | {sum:.4e} | {} | {} | {} | {} |\n",
                        fmt(mean),
                        fmt(p50),
                        fmt(p90),
                        fmt(p99)
                    ));
                }
                MetricSnapshot::Windowed {
                    name,
                    count,
                    sum,
                    mean,
                    p50,
                    p90,
                    p99,
                    ..
                } => {
                    out.push_str(&format!(
                        "| {name} | {count} | {sum:.4e} | {} | {} | {} | {} |\n",
                        fmt(mean),
                        fmt(p50),
                        fmt(p90),
                        fmt(p99)
                    ));
                }
            }
        }
        out
    }

    /// Removes every metric (tests; bench bins between sections).
    pub fn reset(&self) {
        self.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("a.b").get(), 5, "same name, same counter");
        let g = reg.gauge("a.g");
        g.set(-2.5);
        assert_eq!(reg.gauge("a.g").get(), -2.5);
        assert_eq!(reg.snapshot().len(), 2);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::with_bounds(vec![1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_histogram_reports_that_sample() -> Result<(), String> {
        let h = Histogram::with_bounds(vec![1.0, 10.0, 100.0]);
        h.observe(7.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).ok_or(format!("no quantile at q={q}"))?;
            assert!((v - 7.0).abs() < 1e-12, "q={q}: {v}");
        }
        assert_eq!(h.mean(), Some(7.0));
        Ok(())
    }

    #[test]
    fn single_sample_above_top_bound_reports_that_sample() {
        // The sole observation lands in the overflow bucket; the
        // estimate must still be the exact sample, not infinity.
        let h = Histogram::with_bounds(vec![1.0, 2.0]);
        h.observe(50.0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), Some(50.0), "q={q}");
        }
    }

    #[test]
    fn saturated_overflow_bucket_reports_observed_max() -> Result<(), String> {
        let h = Histogram::with_bounds(vec![1.0]);
        for v in [5.0, 8.0, 11.0] {
            h.observe(v);
        }
        // All mass above the last bound: quantiles must stay within
        // [min, max] of the real observations, never infinite.
        for q in [0.1, 0.5, 0.9, 1.0] {
            let v = h.quantile(q).ok_or(format!("no quantile at q={q}"))?;
            assert!((5.0..=11.0).contains(&v), "q={q}: {v}");
        }
        assert_eq!(h.quantile(1.0), Some(11.0));
        Ok(())
    }

    #[test]
    fn extreme_q_is_clamped_and_bracketed() {
        let h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 3.0, 3.5] {
            h.observe(v);
        }
        // q outside [0,1] clamps; q=0 → min, q=1 → max.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        assert_eq!(h.quantile(0.0), Some(0.5));
        assert_eq!(h.quantile(1.0), Some(3.5));
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed() -> Result<(), String> {
        let h = Histogram::with_bounds(seconds_buckets());
        for i in 1..=1000 {
            h.observe(i as f64 * 1e-3);
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).ok_or(format!("no quantile at q={q}"))?;
            assert!(v >= prev, "quantiles must be monotone in q");
            assert!((1e-3..=1.0).contains(&v));
            prev = v;
        }
        // Median of 1..1000 ms ≈ 0.5 s within bucket resolution (coarse
        // log buckets: accept a 2.5× band).
        let p50 = h.quantile(0.5).ok_or("no p50")?;
        assert!(p50 > 0.2 && p50 < 1.0, "p50 {p50}");
        Ok(())
    }

    #[test]
    fn concurrent_observe_loses_nothing() {
        let h = Histogram::with_bounds(vec![0.25, 0.5, 0.75]);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.observe((t * 1000 + i) as f64 * 1e-4);
                    }
                });
            }
        });
        assert_eq!(h.count(), 8000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 8000);
        let r = h.read();
        assert_eq!(r.min, 0.0);
        assert!((r.max - 0.7999).abs() < 1e-12);
        assert!((r.sum - (0..8000).map(|i| i as f64 * 1e-4).sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn le_buckets_are_cumulative() {
        let h = Histogram::with_bounds(vec![1.0, 2.0, 4.0]);
        for v in [0.5, 1.5, 1.7, 3.0, 9.0] {
            h.observe(v);
        }
        let r = h.read();
        assert_eq!(r.le_buckets(h.bounds()), vec![(1.0, 1), (2.0, 3), (4.0, 4)]);
        assert_eq!(r.count, 5, "+Inf bucket equals count");
    }

    #[test]
    fn windowed_rotation_is_deterministic_under_fake_clock() {
        let cfg = WindowConfig {
            epoch_len: Duration::from_secs(1),
            epochs: 4,
        };
        let w = WindowedHistogram::with_bounds(vec![1.0, 2.0, 4.0], cfg);
        // One observation of value `t` at each tick t = 0..8.
        for t in 0..8u64 {
            w.observe_at(t as f64 * 0.5, t);
        }
        // Window at tick 7 covers ticks 4..=7 → values 2.0, 2.5, 3.0, 3.5.
        let win = w.window_reading_at(7);
        assert_eq!(win.count, 4);
        assert_eq!(win.min, 2.0);
        assert_eq!(win.max, 3.5);
        assert_eq!(w.quantile_at(1.0, 7), Some(3.5));
        // Cumulative keeps everything.
        assert_eq!(w.count(), 8);
        assert_eq!(w.cumulative_reading().min, 0.0);
        // Advancing the clock with no traffic empties the window.
        assert_eq!(w.window_reading_at(20).count, 0);
        assert_eq!(w.quantile_at(0.99, 20), None);
        // ... but not the cumulative state.
        assert_eq!(w.cumulative_quantile(1.0), Some(3.5));
    }

    #[test]
    fn windowed_drops_stale_ticks_from_window_only() {
        let cfg = WindowConfig {
            epoch_len: Duration::from_secs(1),
            epochs: 2,
        };
        let w = WindowedHistogram::with_bounds(vec![10.0], cfg);
        w.observe_at(1.0, 10);
        // Tick 8 maps to the same ring slot as tick 10 but is older:
        // the window must not resurrect it.
        w.observe_at(2.0, 8);
        assert_eq!(w.window_reading_at(10).count, 1);
        assert_eq!(w.count(), 2, "cumulative still counts stale ticks");
    }

    #[test]
    fn windowed_same_slot_reuse_clears_old_epoch() {
        let cfg = WindowConfig {
            epoch_len: Duration::from_secs(1),
            epochs: 2,
        };
        let w = WindowedHistogram::with_bounds(vec![10.0], cfg);
        w.observe_at(1.0, 0);
        w.observe_at(2.0, 1);
        assert_eq!(w.window_reading_at(1).count, 2);
        // Tick 2 reuses tick 0's slot; the old counts must vanish.
        w.observe_at(3.0, 2);
        let win = w.window_reading_at(2);
        assert_eq!(win.count, 2);
        assert_eq!(win.min, 2.0);
        assert_eq!(win.max, 3.0);
    }

    #[test]
    fn windowed_quantile_matches_cumulative_when_window_covers_all() {
        let w = WindowedHistogram::with_bounds(
            seconds_buckets(),
            WindowConfig {
                epoch_len: Duration::from_secs(1),
                epochs: 8,
            },
        );
        for i in 1..=100 {
            w.observe_at(i as f64 * 1e-3, 3);
        }
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(w.quantile_at(q, 3), w.cumulative_quantile(q), "q={q}");
        }
    }

    #[test]
    fn registry_windowed_roundtrip() -> Result<(), String> {
        let reg = MetricsRegistry::new();
        let w = reg.windowed_histogram("a.latency_seconds", &[1.0, 2.0], WindowConfig::default());
        w.observe_at(0.5, 0);
        let again =
            reg.windowed_histogram("a.latency_seconds", &[1.0, 2.0], WindowConfig::default());
        assert_eq!(again.count(), 1, "same name, same histogram");
        let snaps = reg.snapshot();
        match snaps.first() {
            Some(MetricSnapshot::Windowed { name, count, .. }) => {
                assert_eq!(name, "a.latency_seconds");
                assert_eq!(*count, 1);
                Ok(())
            }
            other => Err(format!("expected windowed snapshot, got {other:?}")),
        }
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn windowed_vs_histogram_kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.histogram("y", &[1.0]);
        reg.windowed_histogram("y", &[1.0], WindowConfig::default());
    }

    #[test]
    fn snapshot_is_sorted_by_name() -> Result<(), String> {
        let reg = MetricsRegistry::new();
        // Register deliberately out of order.
        reg.counter("z.last");
        reg.gauge("a.first");
        reg.histogram("m.mid_seconds", &[1.0]);
        reg.counter("b.second");
        let snaps = reg.snapshot();
        let names: Vec<&str> = snaps.iter().map(|s| s.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "snapshot must be name-sorted");
        // markdown derives from snapshot, so rows follow the same order.
        let md = reg.markdown();
        let a = md.find("a.first").ok_or("a.first row missing")?;
        let b = md.find("b.second").ok_or("b.second row missing")?;
        let m = md.find("m.mid_seconds").ok_or("m.mid row missing")?;
        let z = md.find("z.last").ok_or("z.last row missing")?;
        assert!(a < b && b < m && m < z, "markdown rows must be name-sorted");
        Ok(())
    }

    #[test]
    fn labeled_formats() {
        assert_eq!(
            labeled("flow.stage_seconds", "stage", "device"),
            "flow.stage_seconds{stage=device}"
        );
    }
}
