//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms with percentile summaries.
//!
//! Metrics are always live (no sink required): handles are cheap
//! `Arc`-backed clones, so hot loops fetch a handle once and update it
//! with a single atomic op per observation.
//!
//! Label convention: low-cardinality labels are folded into the name as
//! `name{key=value}` (see [`labeled`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Formats a labeled metric name: `name{key=value}`.
pub fn labeled(name: &str, key: &str, value: &str) -> String {
    format!("{name}{{{key}={value}}}")
}

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug, Default)]
struct HistogramState {
    /// Per-bucket observation counts (`counts[i]` ↔ `value ≤ bounds[i]`),
    /// plus one overflow bucket at the end.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// A fixed-bucket histogram: cumulative-style buckets defined by their
/// upper bounds, plus an overflow bucket.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Arc<Vec<f64>>,
    state: Arc<Mutex<HistogramState>>,
}

impl Histogram {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        Histogram {
            bounds: Arc::new(bounds),
            state: Arc::new(Mutex::new(HistogramState {
                counts: vec![0; n + 1],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            })),
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        let mut s = self.state.lock().expect("histogram poisoned");
        s.counts[idx] += 1;
        s.count += 1;
        s.sum += v;
        s.min = s.min.min(v);
        s.max = s.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.state.lock().expect("histogram poisoned").count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.state.lock().expect("histogram poisoned").sum
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let s = self.state.lock().expect("histogram poisoned");
        (s.count > 0).then(|| s.sum / s.count as f64)
    }

    /// Estimated `q`-quantile (`0 ≤ q ≤ 1`), or `None` when empty.
    ///
    /// Linear interpolation inside the containing bucket, clamped to the
    /// exact observed `[min, max]` — so single-sample histograms report
    /// that sample for every quantile, and a saturated overflow bucket
    /// reports `max` rather than infinity.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let s = self.state.lock().expect("histogram poisoned");
        if s.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * s.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in s.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if rank <= next as f64 || i + 1 == s.counts.len() {
                // Bucket bounds: (lower, upper]; the overflow bucket and
                // the first bucket borrow the observed extrema.
                let upper = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    s.max
                };
                let lower = if i == 0 {
                    s.min.min(upper)
                } else {
                    self.bounds[i - 1]
                };
                let frac = ((rank - cumulative as f64) / c as f64).clamp(0.0, 1.0);
                let v = lower + (upper - lower) * frac;
                return Some(v.clamp(s.min, s.max));
            }
            cumulative = next;
        }
        Some(s.max)
    }

    /// Resets all state (bounds kept).
    pub fn reset(&self) {
        let mut s = self.state.lock().expect("histogram poisoned");
        for c in s.counts.iter_mut() {
            *c = 0;
        }
        s.count = 0;
        s.sum = 0.0;
        s.min = f64::INFINITY;
        s.max = f64::NEG_INFINITY;
    }
}

/// Log-spaced seconds buckets (1 µs … 1000 s), the default for
/// `*_seconds` histograms.
pub fn seconds_buckets() -> Vec<f64> {
    let mut out = Vec::new();
    let mut b = 1e-6;
    while b <= 1.0e3 + 1e-9 {
        out.push(b);
        out.push(b * 2.5);
        out.push(b * 5.0);
        b *= 10.0;
    }
    out
}

/// Log-spaced dimensionless buckets (1e-9 … 1e3), suited to training
/// losses and rewards spanning many decades.
pub fn loss_buckets() -> Vec<f64> {
    let mut out = Vec::new();
    let mut b = 1e-9;
    while b <= 1.0e3 + 1e-9 {
        out.push(b);
        out.push(b * 3.0);
        b *= 10.0;
    }
    out
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// Counter reading.
    Counter {
        /// Metric name.
        name: String,
        /// Value.
        value: u64,
    },
    /// Gauge reading.
    Gauge {
        /// Metric name.
        name: String,
        /// Value.
        value: f64,
    },
    /// Histogram summary.
    Histogram {
        /// Metric name.
        name: String,
        /// Observation count.
        count: u64,
        /// Observation sum.
        sum: f64,
        /// Mean (`None` when empty).
        mean: Option<f64>,
        /// p50 estimate.
        p50: Option<f64>,
        /// p90 estimate.
        p90: Option<f64>,
        /// p99 estimate.
        p99: Option<f64>,
    },
}

impl MetricSnapshot {
    /// The metric's name.
    pub fn name(&self) -> &str {
        match self {
            MetricSnapshot::Counter { name, .. }
            | MetricSnapshot::Gauge { name, .. }
            | MetricSnapshot::Histogram { name, .. } => name,
        }
    }
}

/// Registry of named metrics. Same name → same underlying metric; a
/// name registered as one kind and fetched as another panics (a naming
/// bug worth failing loudly on).
#[derive(Debug)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Mutex::new(BTreeMap::new()),
        }
    }

    /// Fetches (or creates) a counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.inner.lock().expect("metrics registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Fetches (or creates) a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.inner.lock().expect("metrics registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Fetches (or creates) a histogram with the given bucket bounds
    /// (bounds are fixed at first registration).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut m = self.inner.lock().expect("metrics registry poisoned");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds.to_vec())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Snapshots every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let m = self.inner.lock().expect("metrics registry poisoned");
        m.iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => MetricSnapshot::Counter {
                    name: name.clone(),
                    value: c.get(),
                },
                Metric::Gauge(g) => MetricSnapshot::Gauge {
                    name: name.clone(),
                    value: g.get(),
                },
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    name: name.clone(),
                    count: h.count(),
                    sum: h.sum(),
                    mean: h.mean(),
                    p50: h.quantile(0.5),
                    p90: h.quantile(0.9),
                    p99: h.quantile(0.99),
                },
            })
            .collect()
    }

    /// Renders the snapshot as a Markdown table.
    pub fn markdown(&self) -> String {
        let mut out =
            String::from("| metric | count/value | sum | mean | p50 | p90 | p99 |\n|---|---:|---:|---:|---:|---:|---:|\n");
        let fmt = |v: Option<f64>| v.map_or("—".to_string(), |x| format!("{x:.4e}"));
        for snap in self.snapshot() {
            match snap {
                MetricSnapshot::Counter { name, value } => {
                    out.push_str(&format!("| {name} | {value} | — | — | — | — | — |\n"));
                }
                MetricSnapshot::Gauge { name, value } => {
                    out.push_str(&format!("| {name} | {value:.4e} | — | — | — | — | — |\n"));
                }
                MetricSnapshot::Histogram {
                    name,
                    count,
                    sum,
                    mean,
                    p50,
                    p90,
                    p99,
                } => {
                    out.push_str(&format!(
                        "| {name} | {count} | {sum:.4e} | {} | {} | {} | {} |\n",
                        fmt(mean),
                        fmt(p50),
                        fmt(p90),
                        fmt(p99)
                    ));
                }
            }
        }
        out
    }

    /// Removes every metric (tests; bench bins between sections).
    pub fn reset(&self) {
        self.inner
            .lock()
            .expect("metrics registry poisoned")
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.b");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("a.b").get(), 5, "same name, same counter");
        let g = reg.gauge("a.g");
        g.set(-2.5);
        assert_eq!(reg.gauge("a.g").get(), -2.5);
        assert_eq!(reg.snapshot().len(), 2);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new(vec![1.0, 2.0]);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_histogram_reports_that_sample() {
        let h = Histogram::new(vec![1.0, 10.0, 100.0]);
        h.observe(7.0);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((v - 7.0).abs() < 1e-12, "q={q}: {v}");
        }
        assert_eq!(h.mean(), Some(7.0));
    }

    #[test]
    fn saturated_overflow_bucket_reports_observed_max() {
        let h = Histogram::new(vec![1.0]);
        for v in [5.0, 8.0, 11.0] {
            h.observe(v);
        }
        // All mass above the last bound: quantiles must stay within
        // [min, max] of the real observations, never infinite.
        for q in [0.1, 0.5, 0.9, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((5.0..=11.0).contains(&v), "q={q}: {v}");
        }
        assert_eq!(h.quantile(1.0), Some(11.0));
    }

    #[test]
    fn quantiles_are_monotone_and_bracketed() {
        let h = Histogram::new(seconds_buckets());
        for i in 1..=1000 {
            h.observe(i as f64 * 1e-3);
        }
        let mut prev = f64::NEG_INFINITY;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!(v >= prev, "quantiles must be monotone in q");
            assert!((1e-3..=1.0).contains(&v));
            prev = v;
        }
        // Median of 1..1000 ms ≈ 0.5 s within bucket resolution (coarse
        // log buckets: accept a 2.5× band).
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 > 0.2 && p50 < 1.0, "p50 {p50}");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn labeled_formats() {
        assert_eq!(
            labeled("flow.stage_seconds", "stage", "device"),
            "flow.stage_seconds{stage=device}"
        );
    }
}
