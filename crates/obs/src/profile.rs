//! Folds a recorded span stream into a per-stage/per-substage profile.
//!
//! Spans with the same name under the same parent fold into one node
//! (count + accumulated time); a `stage` field splits the fold per
//! stage so `flow.stage` spans become one row per pipeline stage.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::json::JsonValue;
use crate::record::{FieldValue, Record};

/// One folded node of the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Fold label: the span name, plus `{stage=…}` when the span
    /// carried a `stage` field.
    pub name: String,
    /// Value of the `stage` field, when present.
    pub stage: Option<String>,
    /// How many spans folded into this node.
    pub count: u64,
    /// Accumulated wall-clock over all folded spans, seconds.
    pub total_s: f64,
    /// `total_s` minus the children's `total_s` (clamped at zero).
    pub self_s: f64,
    /// Folded child spans, in first-seen order.
    pub children: Vec<ProfileNode>,
    /// Event-name → occurrence count for events attached to this node.
    pub events: Vec<(String, u64)>,
}

impl ProfileNode {
    fn leaf(name: String, stage: Option<String>) -> ProfileNode {
        ProfileNode {
            name,
            stage,
            count: 0,
            total_s: 0.0,
            self_s: 0.0,
            children: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Total event occurrences attached directly to this node.
    pub fn event_count(&self) -> u64 {
        self.events.iter().map(|(_, n)| n).sum()
    }

    /// Finds the first direct child with this fold label.
    pub fn child(&self, name: &str) -> Option<&ProfileNode> {
        self.children.iter().find(|c| c.name == name)
    }
}

// Arena node used while folding; flattened into ProfileNode at the end.
struct Build {
    node: ProfileNode,
    children: BTreeMap<String, usize>, // label -> arena index
    order: Vec<usize>,
    total_ns: u128,
    events: BTreeMap<String, u64>,
    event_order: Vec<String>,
}

impl Build {
    fn new(name: String, stage: Option<String>) -> Build {
        Build {
            node: ProfileNode::leaf(name, stage),
            children: BTreeMap::new(),
            order: Vec::new(),
            total_ns: 0,
            events: BTreeMap::new(),
            event_order: Vec::new(),
        }
    }
}

fn fold_label(name: &str, stage: Option<&str>) -> String {
    match stage {
        Some(s) => format!("{name}{{stage={s}}}"),
        None => name.to_string(),
    }
}

/// A folded profile of one recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Synthetic root; its children are the trace's top-level spans.
    pub root: ProfileNode,
}

impl Profile {
    /// Folds a record stream (as captured by a ring buffer or read back
    /// from a JSONL trace) into a profile tree.
    ///
    /// Spans never closed in the stream contribute their count but no
    /// time; events on unknown spans attach to the root.
    pub fn from_records(records: &[Record]) -> Profile {
        let mut arena: Vec<Build> = vec![Build::new("(root)".into(), None)];
        // span id -> arena index, kept after close so late events still attach.
        let mut span_node: HashMap<u64, usize> = HashMap::new();

        for record in records {
            match record {
                Record::SpanStart {
                    id,
                    parent,
                    name,
                    fields,
                    ..
                } => {
                    let parent_idx = parent.and_then(|p| span_node.get(&p).copied()).unwrap_or(0);
                    let stage = fields
                        .iter()
                        .find(|(k, _)| k == "stage")
                        .map(|(_, v)| match v {
                            FieldValue::Str(s) => s.clone(),
                            other => other.to_string(),
                        });
                    let label = fold_label(name, stage.as_deref());
                    let idx = match arena[parent_idx].children.get(&label) {
                        Some(&idx) => idx,
                        None => {
                            let idx = arena.len();
                            arena.push(Build::new(label.clone(), stage));
                            arena[parent_idx].children.insert(label, idx);
                            arena[parent_idx].order.push(idx);
                            idx
                        }
                    };
                    arena[idx].node.count += 1;
                    span_node.insert(*id, idx);
                }
                Record::SpanEnd { id, elapsed_ns, .. } => {
                    if let Some(&idx) = span_node.get(id) {
                        arena[idx].total_ns += u128::from(*elapsed_ns);
                    }
                }
                Record::Event { span, name, .. } => {
                    let idx = span.and_then(|s| span_node.get(&s).copied()).unwrap_or(0);
                    let build = &mut arena[idx];
                    if !build.events.contains_key(name) {
                        build.event_order.push(name.clone());
                    }
                    *build.events.entry(name.clone()).or_insert(0) += 1;
                }
            }
        }

        let root = Self::flatten(&arena, 0);
        Profile { root }
    }

    fn flatten(arena: &[Build], idx: usize) -> ProfileNode {
        let build = &arena[idx];
        let mut node = build.node.clone();
        node.total_s = build.total_ns as f64 / 1e9;
        node.events = build
            .event_order
            .iter()
            .map(|name| (name.clone(), build.events[name]))
            .collect();
        node.children = build
            .order
            .iter()
            .map(|&c| Self::flatten(arena, c))
            .collect();
        let child_total: f64 = node.children.iter().map(|c| c.total_s).sum();
        if idx == 0 {
            // Synthetic root owns no time of its own.
            node.total_s = child_total;
            node.self_s = 0.0;
        } else {
            node.self_s = (node.total_s - child_total).max(0.0);
        }
        node
    }

    /// Sums `total_s` over every node in the tree with this fold label
    /// (e.g. `"flow.stage{stage=device}"` or `"tcad.solve_poisson"`).
    pub fn total_of(&self, label: &str) -> f64 {
        fn walk(node: &ProfileNode, label: &str, acc: &mut f64) {
            if node.name == label {
                *acc += node.total_s;
            }
            for child in &node.children {
                walk(child, label, acc);
            }
        }
        let mut acc = 0.0;
        walk(&self.root, label, &mut acc);
        acc
    }

    /// Per-stage seconds folded from `flow.stage{stage=…}` spans,
    /// in first-seen order.
    pub fn stage_seconds(&self) -> Vec<(String, f64)> {
        let mut order: Vec<String> = Vec::new();
        let mut acc: BTreeMap<String, f64> = BTreeMap::new();
        fn walk(node: &ProfileNode, order: &mut Vec<String>, acc: &mut BTreeMap<String, f64>) {
            if let Some(stage) = node.stage.as_ref() {
                if node.name.starts_with("flow.stage{") {
                    if !acc.contains_key(stage) {
                        order.push(stage.clone());
                    }
                    *acc.entry(stage.clone()).or_insert(0.0) += node.total_s;
                }
            }
            for child in &node.children {
                walk(child, order, acc);
            }
        }
        walk(&self.root, &mut order, &mut acc);
        order.into_iter().map(|s| (s.clone(), acc[&s])).collect()
    }

    /// Renders the profile as a Markdown table (indented span column).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| span | count | total [s] | self [s] | events |\n");
        out.push_str("|---|---:|---:|---:|---|\n");
        fn row(node: &ProfileNode, depth: usize, out: &mut String) {
            let indent = "&nbsp;&nbsp;".repeat(depth);
            let events = node
                .events
                .iter()
                .map(|(name, n)| format!("{name}×{n}"))
                .collect::<Vec<_>>()
                .join(", ");
            out.push_str(&format!(
                "| {}{} | {} | {:.4} | {:.4} | {} |\n",
                indent, node.name, node.count, node.total_s, node.self_s, events
            ));
            for child in &node.children {
                row(child, depth + 1, out);
            }
        }
        for child in &self.root.children {
            row(child, 0, &mut out);
        }
        out
    }

    /// Renders the profile tree as JSON.
    pub fn to_json(&self) -> JsonValue {
        fn node_json(node: &ProfileNode) -> JsonValue {
            let mut obj = vec![
                ("name".to_string(), JsonValue::Str(node.name.clone())),
                ("count".to_string(), JsonValue::Num(node.count as f64)),
                ("total_s".to_string(), JsonValue::Num(node.total_s)),
                ("self_s".to_string(), JsonValue::Num(node.self_s)),
            ];
            if let Some(stage) = node.stage.as_ref() {
                obj.push(("stage".to_string(), JsonValue::Str(stage.clone())));
            }
            if !node.events.is_empty() {
                obj.push((
                    "events".to_string(),
                    JsonValue::Obj(
                        node.events
                            .iter()
                            .map(|(k, n)| (k.clone(), JsonValue::Num(*n as f64)))
                            .collect(),
                    ),
                ));
            }
            if !node.children.is_empty() {
                obj.push((
                    "children".to_string(),
                    JsonValue::Arr(node.children.iter().map(node_json).collect()),
                ));
            }
            JsonValue::Obj(obj)
        }
        node_json(&self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(id: u64, parent: Option<u64>, name: &str, stage: Option<&str>, t: u64) -> Record {
        let fields = stage
            .map(|s| vec![("stage".to_string(), FieldValue::Str(s.to_string()))])
            .unwrap_or_default();
        Record::SpanStart {
            id,
            parent,
            name: name.into(),
            fields,
            t_ns: t,
            thread: 1,
        }
    }

    fn end(id: u64, t: u64, elapsed: u64) -> Record {
        Record::SpanEnd {
            id,
            t_ns: t,
            elapsed_ns: elapsed,
        }
    }

    fn event(span: Option<u64>, name: &str, t: u64) -> Record {
        Record::Event {
            span,
            name: name.into(),
            fields: vec![],
            t_ns: t,
            thread: 1,
        }
    }

    /// Two iterations, each with a device and a cells stage; the device
    /// stage contains a solver span with per-iteration events.
    fn sample_trace() -> Vec<Record> {
        vec![
            start(1, None, "flow.iteration", None, 0),
            start(2, Some(1), "flow.stage", Some("device"), 10),
            start(3, Some(2), "tcad.solve_poisson", None, 20),
            event(Some(3), "tcad.newton_iter", 25),
            event(Some(3), "tcad.newton_iter", 30),
            end(3, 40, 20),
            end(2, 50, 40),
            start(4, Some(1), "flow.stage", Some("cells"), 60),
            end(4, 90, 30),
            end(1, 100, 100),
            start(5, None, "flow.iteration", None, 110),
            start(6, Some(5), "flow.stage", Some("device"), 120),
            end(6, 180, 60),
            end(5, 200, 90),
        ]
    }

    #[test]
    fn folds_same_label_and_splits_stages() {
        let profile = Profile::from_records(&sample_trace());
        assert_eq!(profile.root.children.len(), 1, "both iterations fold");
        let iter = &profile.root.children[0];
        assert_eq!(iter.count, 2);
        assert!((iter.total_s - 190e-9).abs() < 1e-15);
        // device and cells stages are separate nodes under the iteration.
        let device = iter.child("flow.stage{stage=device}").expect("device");
        let cells = iter.child("flow.stage{stage=cells}").expect("cells");
        assert_eq!(device.count, 2);
        assert_eq!(cells.count, 1);
        assert!((device.total_s - 100e-9).abs() < 1e-15);
        // Solver nested inside device, events attached to it.
        let solver = device.child("tcad.solve_poisson").expect("solver");
        assert_eq!(solver.events, vec![("tcad.newton_iter".to_string(), 2)]);
        assert_eq!(solver.event_count(), 2);
    }

    #[test]
    fn self_time_subtracts_children() {
        let profile = Profile::from_records(&sample_trace());
        let iter = &profile.root.children[0];
        // iteration total 190ns, stages 100+30=130ns → self 60ns.
        assert!(
            (iter.self_s - 60e-9).abs() < 1e-15,
            "self_s={}",
            iter.self_s
        );
        assert_eq!(profile.root.self_s, 0.0);
    }

    #[test]
    fn total_of_and_stage_seconds_agree() {
        let profile = Profile::from_records(&sample_trace());
        assert!((profile.total_of("flow.stage{stage=device}") - 100e-9).abs() < 1e-15);
        assert!((profile.total_of("tcad.solve_poisson") - 20e-9).abs() < 1e-15);
        assert_eq!(profile.total_of("nope"), 0.0);
        let stages = profile.stage_seconds();
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].0, "device");
        assert!((stages[0].1 - 100e-9).abs() < 1e-15);
        assert_eq!(stages[1].0, "cells");
    }

    #[test]
    fn unclosed_spans_and_orphan_events_are_tolerated() {
        let records = vec![
            start(1, None, "a", None, 0),
            event(Some(99), "orphan", 5),
            // span 1 never ends
        ];
        let profile = Profile::from_records(&records);
        let a = profile.root.child("a").expect("a");
        assert_eq!(a.count, 1);
        assert_eq!(a.total_s, 0.0);
        assert_eq!(profile.root.events, vec![("orphan".to_string(), 1)]);
    }

    #[test]
    fn renders_markdown_and_json() {
        let profile = Profile::from_records(&sample_trace());
        let md = profile.to_markdown();
        assert!(md.contains("| span | count |"));
        assert!(md.contains("flow.stage{stage=device}"));
        assert!(md.contains("tcad.newton_iter×2"));
        let json = profile.to_json().render();
        assert!(json.contains("\"name\":\"flow.iteration\""));
        assert!(json.contains("\"stage\":\"device\""));
    }
}
