//! Property tests pinning the lock-free histogram to a mutex-guarded
//! reference implementation: for any observation stream, bucket counts
//! (and count/sum/min/max/quantiles) must be identical.

use std::sync::Mutex;
use std::time::Duration;

use proptest::prelude::*;
use stco_obs::metrics::{seconds_buckets, Histogram, WindowConfig, WindowedHistogram};

/// The pre-existing `Mutex<HistogramState>` implementation, kept here
/// verbatim as the behavioral oracle.
struct ReferenceHistogram {
    bounds: Vec<f64>,
    state: Mutex<RefState>,
}

#[derive(Default)]
struct RefState {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl ReferenceHistogram {
    fn new(bounds: Vec<f64>) -> Self {
        let n = bounds.len();
        ReferenceHistogram {
            bounds,
            state: Mutex::new(RefState {
                counts: vec![0; n + 1],
                count: 0,
                sum: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            }),
        }
    }

    fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        let mut s = self.state.lock().expect("reference poisoned");
        s.counts[idx] += 1;
        s.count += 1;
        s.sum += v;
        s.min = s.min.min(v);
        s.max = s.max.max(v);
    }

    fn quantile(&self, q: f64) -> Option<f64> {
        let s = self.state.lock().expect("reference poisoned");
        if s.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * s.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in s.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if rank <= next as f64 || i + 1 == s.counts.len() {
                let upper = if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    s.max
                };
                let lower = if i == 0 {
                    s.min.min(upper)
                } else {
                    self.bounds[i - 1]
                };
                let frac = ((rank - cumulative as f64) / c as f64).clamp(0.0, 1.0);
                let v = lower + (upper - lower) * frac;
                return Some(v.clamp(s.min, s.max));
            }
            cumulative = next;
        }
        Some(s.max)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serial streams: the atomic histogram is bit-for-bit equivalent
    /// to the mutex reference (counts, sum, extrema, quantiles).
    #[test]
    fn atomic_matches_reference_serially(
        values in prop::collection::vec(-1e-4..2.0f64, 0..400),
        qs in prop::collection::vec(0.0..1.0f64, 4),
    ) {
        let bounds = seconds_buckets();
        let atomic = Histogram::with_bounds(bounds.clone());
        let reference = ReferenceHistogram::new(bounds);
        for &v in &values {
            atomic.observe(v);
            reference.observe(v);
        }
        let read = atomic.read();
        let ref_state = reference.state.lock().expect("reference poisoned");
        prop_assert_eq!(&read.counts, &ref_state.counts, "bucket counts must match");
        prop_assert_eq!(read.count, ref_state.count);
        prop_assert_eq!(read.sum.to_bits(), ref_state.sum.to_bits(), "sum must be bitwise equal");
        prop_assert_eq!(read.min.to_bits(), ref_state.min.to_bits());
        prop_assert_eq!(read.max.to_bits(), ref_state.max.to_bits());
        drop(ref_state);
        for q in qs {
            let a = atomic.quantile(q);
            let r = reference.quantile(q);
            prop_assert_eq!(a, r, "quantile q={} must match", q);
        }
    }

    /// Concurrent streams: bucket counts must equal the reference fed
    /// the same multiset of observations (order-independent state), and
    /// the sum must match up to f64 reassociation error.
    #[test]
    fn atomic_matches_reference_concurrently(
        per_thread in prop::collection::vec(
            prop::collection::vec(0.0..1.5f64, 1..120), 2..6),
    ) {
        let bounds = vec![0.1, 0.25, 0.5, 0.75, 1.0, 1.25];
        let atomic = Histogram::with_bounds(bounds.clone());
        let reference = ReferenceHistogram::new(bounds);
        std::thread::scope(|scope| {
            for chunk in &per_thread {
                let atomic = atomic.clone();
                scope.spawn(move || {
                    for &v in chunk {
                        atomic.observe(v);
                    }
                });
            }
        });
        for chunk in &per_thread {
            for &v in chunk {
                reference.observe(v);
            }
        }
        let read = atomic.read();
        let ref_state = reference.state.lock().expect("reference poisoned");
        prop_assert_eq!(&read.counts, &ref_state.counts, "no lost bucket increments");
        prop_assert_eq!(read.count, ref_state.count);
        prop_assert_eq!(read.min.to_bits(), ref_state.min.to_bits());
        prop_assert_eq!(read.max.to_bits(), ref_state.max.to_bits());
        let tol = 1e-9 * ref_state.count.max(1) as f64;
        prop_assert!((read.sum - ref_state.sum).abs() <= tol,
            "sum {} vs reference {} (tol {})", read.sum, ref_state.sum, tol);
    }

    /// The windowed histogram's cumulative state equals a plain atomic
    /// histogram, and a window wide enough to cover every tick yields
    /// the same bucket counts too.
    #[test]
    fn windowed_cumulative_matches_plain(
        values in prop::collection::vec(0.0..2.0f64, 1..200),
        ticks in prop::collection::vec(0u64..6, 1..200),
    ) {
        let bounds = vec![0.25, 0.5, 1.0, 1.5];
        let plain = Histogram::with_bounds(bounds.clone());
        let windowed = WindowedHistogram::with_bounds(
            bounds,
            WindowConfig { epoch_len: Duration::from_secs(1), epochs: 8 },
        );
        let n = values.len().min(ticks.len());
        // Ticks must be fed non-decreasing, as a wall clock would.
        let mut sorted_ticks = ticks[..n].to_vec();
        sorted_ticks.sort_unstable();
        for (v, t) in values[..n].iter().zip(&sorted_ticks) {
            plain.observe(*v);
            windowed.observe_at(*v, *t);
        }
        prop_assert_eq!(windowed.cumulative_reading().counts, plain.read().counts);
        // Window spans 8 epochs ≥ the 0..6 tick range: nothing expired.
        let win = windowed.window_reading_at(5);
        prop_assert_eq!(win.counts, plain.read().counts,
            "full-coverage window must see every observation");
        prop_assert_eq!(win.count, plain.count());
    }
}
