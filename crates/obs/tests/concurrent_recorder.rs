//! Losslessness of the global recorder under concurrent emission.
//!
//! Lives in its own integration-test binary: the recorder is
//! process-global, and this test must own its sinks.

use std::collections::HashMap;

use proptest::prelude::*;
use stco_obs::{Record, Recorder, RingBufferSink};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every span opened on any thread appears exactly once as a
    /// SpanStart with a matching SpanEnd, and nothing is invented.
    #[test]
    fn recorder_is_lossless_under_concurrent_spans(
        threads in 4usize..8,
        spans_per_thread in 1usize..24,
        with_events in any::<bool>(),
    ) {
        let recorder = Recorder::global();
        recorder.clear_sinks();
        let capacity = threads * spans_per_thread * 4 + 16;
        let (sink, handle) = RingBufferSink::with_capacity(capacity);
        recorder.add_sink(Box::new(sink));

        let handles: Vec<_> = (0..threads)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..spans_per_thread {
                        let span = Recorder::global().span(
                            "test.concurrent",
                            &[("worker", (t as u64).into()), ("i", (i as u64).into())],
                        );
                        if with_events {
                            Recorder::global().event("test.tick", &[]);
                        }
                        let elapsed = span.close();
                        assert!(elapsed >= 0.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker thread panicked");
        }
        recorder.clear_sinks();

        let records = handle.records();
        prop_assert_eq!(handle.dropped(), 0, "ring buffer must not evict");

        let expected = threads * spans_per_thread;
        let mut starts: HashMap<u64, u64> = HashMap::new(); // id -> count
        let mut ends: HashMap<u64, u64> = HashMap::new();
        let mut per_thread: HashMap<u64, usize> = HashMap::new();
        let mut events = 0usize;
        for record in &records {
            match record {
                Record::SpanStart { id, name, thread, .. } => {
                    prop_assert_eq!(name.as_str(), "test.concurrent");
                    *starts.entry(*id).or_insert(0) += 1;
                    *per_thread.entry(*thread).or_insert(0) += 1;
                }
                Record::SpanEnd { id, .. } => {
                    *ends.entry(*id).or_insert(0) += 1;
                }
                Record::Event { .. } => events += 1,
            }
        }
        prop_assert_eq!(starts.len(), expected, "one start per span");
        prop_assert_eq!(ends.len(), expected, "one end per span");
        prop_assert!(starts.values().all(|&n| n == 1), "no duplicated starts");
        prop_assert!(ends.values().all(|&n| n == 1), "no duplicated ends");
        for id in starts.keys() {
            prop_assert!(ends.contains_key(id), "span {} never closed", id);
        }
        prop_assert_eq!(per_thread.len(), threads, "all workers recorded");
        prop_assert!(per_thread.values().all(|&n| n == spans_per_thread));
        prop_assert_eq!(events, if with_events { expected } else { 0 });
    }
}
