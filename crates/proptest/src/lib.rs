//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: value-generating strategies (ranges, tuples, collections,
//! `prop_map`/`prop_filter`, `prop_oneof!`/`Just`), the `proptest!` test
//! macro and the `prop_assert*`/`prop_assume!` assertion macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its seed and values but is
//!   not minimized;
//! * **deterministic seeding** — cases derive from a fixed per-test seed
//!   (override with `PROPTEST_SEED`), so CI runs are reproducible;
//! * `*.proptest-regressions` files are ignored.

use std::ops::Range;

/// Deterministic splitmix64/xorshift generator driving all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator (0 is remapped internally).
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(0x2545f4914f6cdd1d)
                | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; returns 0 for `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Why a generated case did not produce a verdict.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is discarded, not failed.
    Reject(String),
    /// A `prop_assert*` failed: the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A value source: the generating half of proptest's `Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Helper the `proptest!` macro calls (avoids method-vs-trait
    /// ambiguity at the call site).
    fn generate_value(&self, rng: &mut TestRng) -> Self::Value
    where
        Self: Sized,
    {
        self.generate(rng)
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `pred` (regenerates up to an
    /// internal retry cap, then panics — mirrors proptest's global
    /// rejection limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erases the strategy (for `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive values",
            self.whence
        );
    }
}

/// Constant strategy: always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (backs `prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty => $draw:expr),+ $(,)?) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let draw: fn(&Range<$ty>, &mut TestRng) -> $ty = $draw;
                draw(self, rng)
            }
        })+
    };
}

range_strategy! {
    f64 => |r, rng| r.start + (r.end - r.start) * rng.next_f64(),
    f32 => |r, rng| r.start + (r.end - r.start) * rng.next_f64() as f32,
    u64 => |r, rng| r.start + rng.below(r.end - r.start),
    u32 => |r, rng| r.start + rng.below((r.end - r.start) as u64) as u32,
    usize => |r, rng| r.start + rng.below((r.end - r.start) as u64) as usize,
    i64 => |r, rng| r.start + rng.below((r.end - r.start) as u64) as i64,
    i32 => |r, rng| r.start + rng.below((r.end - r.start) as u64) as i32,
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical `bool` strategy.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;
    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Sizes a generated collection: a fixed length or a half-open range.
    pub trait SizeRange {
        /// Draws a length.
        fn draw(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn draw(&self, rng: &mut TestRng) -> usize {
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    /// `Vec` strategy: `size` elements drawn from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.draw(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a `Vec` strategy.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs `cases` generated cases of `body`, panicking on the first
/// failure with the seed that produced it.
///
/// `STCO_PROPTEST_CASES` overrides every config's case count — used by
/// the Miri CI job, where each case costs ~100x native time.
pub fn run_cases<F>(config: ProptestConfig, test_name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| {
            // Stable per-test seed: hash of the test name.
            test_name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100000001b3)
            })
        });
    let n_cases = std::env::var("STCO_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let mut rejected = 0u32;
    let mut case = 0u32;
    let max_rejects = n_cases.saturating_mul(16).max(1024);
    while case < n_cases {
        let seed = base.wrapping_add((case + rejected) as u64);
        let mut rng = TestRng::new(seed);
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{test_name}: too many prop_assume! rejections ({rejected}) \
                         after {case} accepted cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case {case} (seed {seed}) failed: {msg}");
            }
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// Namespace alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config, stringify!($name), |__proptest_rng| {
                $(let $arg = $crate::Strategy::generate_value(&($strat), __proptest_rng);)+
                let mut __proptest_case = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                };
                __proptest_case()
            });
        }
        $crate::__proptest_impl!{ config = ($cfg); $($rest)* }
    };
}

/// Fails the current case if the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::TestCaseError::fail(
                    concat!("assertion failed: ", stringify!($cond)),
                ));
            }
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                    "assertion failed: {}: {}",
                    stringify!($cond),
                    format!($($fmt)+),
                )));
            }
        }
    };
}

/// Fails the current case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), a, b,
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}): {}",
                stringify!($a), stringify!($b), a, b, format!($($fmt)+),
            )));
        }
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if a == b {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                a,
            )));
        }
    }};
}

/// Discards the current case (without failing) if the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        match $cond {
            true => {}
            false => {
                return ::std::result::Result::Err($crate::TestCaseError::reject(concat!(
                    "assumption failed: ",
                    stringify!($cond)
                )));
            }
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let f = Strategy::generate_value(&(-2.0..3.0f64), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = Strategy::generate_value(&(5usize..9), &mut rng);
            assert!((5..9).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::new(3);
        let s = prop::collection::vec(0.0..1.0f64, 2..6);
        for _ in 0..100 {
            let v = Strategy::generate_value(&s, &mut rng);
            assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0.0..1.0f64, n in 1usize..5,
                            v in prop::collection::vec(any::<bool>(), 3)) {
            prop_assume!(x > 0.001);
            prop_assert!(x < 1.0);
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(n, 0);
        }

        #[test]
        fn oneof_and_map(t in prop_oneof![Just(1u64), Just(2u64)],
                         m in (0u64..5).prop_map(|v| v * 2)) {
            prop_assert!(t == 1 || t == 2);
            prop_assert!(m % 2 == 0);
        }
    }
}
