//! Rectilinear finite-volume meshes over a planar TFT cross-section.
//!
//! The mesh is a tensor grid `xs × ys` (x along the channel, y through the
//! layer stack, gate at the bottom). Every node carries a [`Material`] and
//! a [`Region`] label; the Poisson solver derives boundary conditions from
//! the region, and the unified encoding (Fig. 2) derives its device-level
//! one-hot from it.

use crate::materials::Material;

/// Functional region of a node — the device-level one-hot of the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// Gate electrode (Dirichlet at gate potential).
    Gate,
    /// Gate dielectric interior.
    Dielectric,
    /// Semiconductor channel interior.
    Channel,
    /// Source contact (Dirichlet at source potential).
    SourceContact,
    /// Drain contact (Dirichlet at drain potential).
    DrainContact,
    /// Passivation above the channel (Neumann).
    Passivation,
}

impl Region {
    /// Number of distinct regions (one-hot width).
    pub const NUM_CLASSES: usize = 6;

    /// One-hot index.
    pub fn class_index(self) -> usize {
        match self {
            Region::Gate => 0,
            Region::Dielectric => 1,
            Region::Channel => 2,
            Region::SourceContact => 3,
            Region::DrainContact => 4,
            Region::Passivation => 5,
        }
    }

    /// Whether this node's potential is pinned by an electrode.
    pub fn is_dirichlet(self) -> bool {
        matches!(
            self,
            Region::Gate | Region::SourceContact | Region::DrainContact
        )
    }
}

/// A rectilinear 2-D mesh with per-node material and region labels.
#[derive(Debug, Clone)]
pub struct RectMesh {
    xs: Vec<f64>,
    ys: Vec<f64>,
    materials: Vec<Material>,
    regions: Vec<Region>,
}

impl RectMesh {
    /// Builds a mesh from grid lines and per-node labels (row-major over
    /// `iy * nx + ix`).
    ///
    /// # Panics
    ///
    /// Panics if axes are not strictly increasing or label lengths differ
    /// from `xs.len() * ys.len()`.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, materials: Vec<Material>, regions: Vec<Region>) -> Self {
        assert!(xs.len() >= 2 && ys.len() >= 2, "mesh needs ≥ 2×2 nodes");
        assert!(
            xs.windows(2).all(|w| w[1] > w[0]) && ys.windows(2).all(|w| w[1] > w[0]),
            "grid lines must be strictly increasing"
        );
        let n = xs.len() * ys.len();
        assert_eq!(materials.len(), n, "one material per node");
        assert_eq!(regions.len(), n, "one region per node");
        RectMesh {
            xs,
            ys,
            materials,
            regions,
        }
    }

    /// Grid lines along the channel (x).
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Grid lines through the stack (y).
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Node count in x.
    pub fn nx(&self) -> usize {
        self.xs.len()
    }

    /// Node count in y.
    pub fn ny(&self) -> usize {
        self.ys.len()
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.xs.len() * self.ys.len()
    }

    /// Flat index of node `(ix, iy)`.
    #[inline]
    pub fn node_index(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.nx() && iy < self.ny());
        iy * self.nx() + ix
    }

    /// Inverse of [`RectMesh::node_index`].
    #[inline]
    pub fn node_coords(&self, idx: usize) -> (usize, usize) {
        (idx % self.nx(), idx / self.nx())
    }

    /// Physical position of a node, in meters.
    pub fn position(&self, idx: usize) -> (f64, f64) {
        let (ix, iy) = self.node_coords(idx);
        (self.xs[ix], self.ys[iy])
    }

    /// Material at a node.
    pub fn material(&self, idx: usize) -> Material {
        self.materials[idx]
    }

    /// Region at a node.
    pub fn region(&self, idx: usize) -> Region {
        self.regions[idx]
    }

    /// Orthogonal neighbors of a node (up to four).
    pub fn neighbors(&self, idx: usize) -> Vec<usize> {
        let (ix, iy) = self.node_coords(idx);
        let mut out = Vec::with_capacity(4);
        if ix > 0 {
            out.push(self.node_index(ix - 1, iy));
        }
        if ix + 1 < self.nx() {
            out.push(self.node_index(ix + 1, iy));
        }
        if iy > 0 {
            out.push(self.node_index(ix, iy - 1));
        }
        if iy + 1 < self.ny() {
            out.push(self.node_index(ix, iy + 1));
        }
        out
    }

    /// Finite-volume control length around grid line `i` of `axis`
    /// (half-distance to each neighbor, clipped at the boundary).
    fn control_length(axis: &[f64], i: usize) -> f64 {
        let lo = if i > 0 {
            0.5 * (axis[i] - axis[i - 1])
        } else {
            0.0
        };
        let hi = if i + 1 < axis.len() {
            0.5 * (axis[i + 1] - axis[i])
        } else {
            0.0
        };
        lo + hi
    }

    /// Control-volume area of a node (per meter of device width), m².
    pub fn control_area(&self, idx: usize) -> f64 {
        let (ix, iy) = self.node_coords(idx);
        Self::control_length(&self.xs, ix) * Self::control_length(&self.ys, iy)
    }

    /// Coupling geometry factor between orthogonal neighbors `a → b`:
    /// (face length ⟂ to the edge) / (node distance), per meter of width.
    ///
    /// # Panics
    ///
    /// Panics if the nodes are not orthogonal neighbors.
    pub fn coupling_factor(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.node_coords(a);
        let (bx, by) = self.node_coords(b);
        if ay == by && ax.abs_diff(bx) == 1 {
            let dist = (self.xs[ax] - self.xs[bx]).abs();
            Self::control_length(&self.ys, ay) / dist
        } else if ax == bx && ay.abs_diff(by) == 1 {
            let dist = (self.ys[ay] - self.ys[by]).abs();
            Self::control_length(&self.xs, ax) / dist
        } else {
            panic!("coupling_factor of non-neighbors {a} and {b}");
        }
    }

    /// Permittivity (absolute, F/m) on the face between two neighbors:
    /// arithmetic mean of node permittivities.
    pub fn face_permittivity(&self, a: usize, b: usize) -> f64 {
        let ea = self.materials[a].relative_permittivity();
        let eb = self.materials[b].relative_permittivity();
        0.5 * (ea + eb) * crate::VACUUM_PERMITTIVITY
    }

    /// Iterator over all node indices.
    pub fn node_indices(&self) -> std::ops::Range<usize> {
        0..self.num_nodes()
    }
}

/// Builds a graded 1-D axis from 0 to `segments`-sum with `points[i]`
/// nodes in segment `i` (shared endpoints merged). Helper for device
/// meshing: each layer/region gets its own resolution.
pub fn graded_axis(segments: &[(f64, usize)]) -> Vec<f64> {
    let mut axis = vec![0.0];
    let mut origin = 0.0;
    for &(length, points) in segments {
        assert!(
            length > 0.0 && points >= 1,
            "segment needs length and points"
        );
        for k in 1..=points {
            axis.push(origin + length * k as f64 / points as f64);
        }
        origin += length;
    }
    axis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::Technology;

    fn tiny_mesh() -> RectMesh {
        // 3×3 grid: bottom row gate, middle dielectric, top channel.
        let xs = vec![0.0, 1e-6, 2e-6];
        let ys = vec![0.0, 0.1e-6, 0.2e-6];
        let mut materials = Vec::new();
        let mut regions = Vec::new();
        for iy in 0..3 {
            for _ix in 0..3 {
                match iy {
                    0 => {
                        materials.push(Material::Metal);
                        regions.push(Region::Gate);
                    }
                    1 => {
                        materials.push(Material::OxideSiO2);
                        regions.push(Region::Dielectric);
                    }
                    _ => {
                        materials.push(Material::Semiconductor(Technology::Igzo));
                        regions.push(Region::Channel);
                    }
                }
            }
        }
        RectMesh::new(xs, ys, materials, regions)
    }

    #[test]
    fn index_round_trips() {
        let m = tiny_mesh();
        for idx in m.node_indices() {
            let (ix, iy) = m.node_coords(idx);
            assert_eq!(m.node_index(ix, iy), idx);
        }
    }

    #[test]
    fn neighbor_counts() {
        let m = tiny_mesh();
        // Corner has 2, edge has 3, center has 4.
        assert_eq!(m.neighbors(m.node_index(0, 0)).len(), 2);
        assert_eq!(m.neighbors(m.node_index(1, 0)).len(), 3);
        assert_eq!(m.neighbors(m.node_index(1, 1)).len(), 4);
    }

    #[test]
    fn control_areas_tile_the_domain() {
        let m = tiny_mesh();
        let total: f64 = m.node_indices().map(|i| m.control_area(i)).sum();
        let domain = 2e-6 * 0.2e-6;
        assert!((total - domain).abs() / domain < 1e-12);
    }

    #[test]
    fn coupling_factor_is_symmetric() {
        let m = tiny_mesh();
        let a = m.node_index(1, 1);
        for b in m.neighbors(a) {
            assert!((m.coupling_factor(a, b) - m.coupling_factor(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-neighbors")]
    fn coupling_factor_panics_for_non_neighbors() {
        let m = tiny_mesh();
        let _ = m.coupling_factor(0, 8);
    }

    #[test]
    fn face_permittivity_averages_materials() {
        let m = tiny_mesh();
        let gate_diel = m.face_permittivity(m.node_index(0, 0), m.node_index(0, 1));
        let expected = 0.5 * (1.0 + 3.9) * crate::VACUUM_PERMITTIVITY;
        assert!((gate_diel - expected).abs() < 1e-20);
    }

    #[test]
    fn regions_classify_dirichlet() {
        assert!(Region::Gate.is_dirichlet());
        assert!(Region::SourceContact.is_dirichlet());
        assert!(!Region::Channel.is_dirichlet());
        assert!(!Region::Passivation.is_dirichlet());
    }

    #[test]
    fn graded_axis_builds_expected_knots() {
        let a = graded_axis(&[(1.0, 2), (0.5, 1)]);
        assert_eq!(a, vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn mesh_rejects_unsorted_axes() {
        let _ = RectMesh::new(
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![Material::Metal; 4],
            vec![Region::Gate; 4],
        );
    }
}
