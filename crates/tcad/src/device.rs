//! Parameterized planar TFT devices and the randomized sampler used to
//! build surrogate-training populations.
//!
//! The structure is a bottom-gate coplanar TFT: a metal gate row at the
//! bottom, a gate dielectric, the semiconductor channel (with source/drain
//! contact windows at its two ends) and passivation on top. This mirrors
//! the planar CNT devices of the paper's calibrated TCAD study.

use crate::materials::{ChannelParams, Material, Technology};
use crate::mesh::{graded_axis, RectMesh, Region};
use crate::{Result, TcadError};
use stco_numerics::rng::Xorshift;

/// Terminal bias point (source is the ground reference).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Bias {
    /// Gate-source voltage, V.
    pub gate: f64,
    /// Drain-source voltage, V.
    pub drain: f64,
}

/// Gate-dielectric material choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOxide {
    /// SiO₂-like (εr ≈ 3.9).
    SiO2,
    /// HfO₂-like high-k (εr ≈ 20).
    HfO2,
}

impl GateOxide {
    fn material(self) -> Material {
        match self {
            GateOxide::SiO2 => Material::OxideSiO2,
            GateOxide::HfO2 => Material::OxideHfO2,
        }
    }
}

/// Full specification of a planar TFT for the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Channel (gated) length, m.
    pub channel_length: f64,
    /// Source/drain contact window length, m (each side).
    pub contact_length: f64,
    /// Device width (out-of-plane), m.
    pub width: f64,
    /// Gate dielectric thickness, m.
    pub oxide_thickness: f64,
    /// Semiconductor film thickness, m.
    pub channel_thickness: f64,
    /// Passivation thickness, m.
    pub passivation_thickness: f64,
    /// Gate dielectric material.
    pub gate_oxide: GateOxide,
    /// Channel physics parameters.
    pub channel: ChannelParams,
    /// Contact built-in offset magnitude, V (ohmic accumulation pinning).
    pub contact_offset: f64,
    /// Mesh resolution: columns per contact window.
    pub nx_contact: usize,
    /// Mesh resolution: columns across the channel.
    pub nx_channel: usize,
    /// Mesh resolution: rows through the oxide.
    pub ny_oxide: usize,
    /// Mesh resolution: rows through the semiconductor.
    pub ny_channel: usize,
    /// Mesh resolution: rows through the passivation.
    pub ny_passivation: usize,
}

impl DeviceSpec {
    /// The reference device of a technology: 2 µm channel, 40 nm oxide,
    /// 30 nm film — small enough to solve in milliseconds, with the same
    /// layer stack as the paper's planar CNT devices.
    pub fn reference(technology: Technology) -> Self {
        DeviceSpec {
            channel_length: 2.0e-6,
            contact_length: 0.5e-6,
            width: 10.0e-6,
            oxide_thickness: 40.0e-9,
            channel_thickness: 30.0e-9,
            passivation_thickness: 60.0e-9,
            gate_oxide: GateOxide::SiO2,
            channel: ChannelParams::reference(technology),
            contact_offset: 0.15,
            nx_contact: 3,
            nx_channel: 12,
            ny_oxide: 4,
            ny_channel: 5,
            ny_passivation: 2,
        }
    }

    /// Gate capacitance per unit area, F/m².
    pub fn oxide_capacitance(&self) -> f64 {
        self.gate_oxide.material().relative_permittivity() * crate::VACUUM_PERMITTIVITY
            / self.oxide_thickness
    }

    /// Validates geometry and constructs the meshed [`Device`].
    ///
    /// # Errors
    ///
    /// Returns [`TcadError::InvalidGeometry`] for non-positive dimensions
    /// or degenerate mesh resolutions.
    pub fn build(&self) -> Result<Device> {
        for (name, v) in [
            ("channel_length", self.channel_length),
            ("contact_length", self.contact_length),
            ("width", self.width),
            ("oxide_thickness", self.oxide_thickness),
            ("channel_thickness", self.channel_thickness),
            ("passivation_thickness", self.passivation_thickness),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(TcadError::InvalidGeometry {
                    context: format!("{name} must be positive, got {v}"),
                });
            }
        }
        if self.nx_contact < 1 || self.nx_channel < 3 || self.ny_oxide < 2 || self.ny_channel < 2 {
            return Err(TcadError::InvalidGeometry {
                context: "mesh resolution too coarse (nx_channel ≥ 3, ny ≥ 2)".into(),
            });
        }

        let xs = graded_axis(&[
            (self.contact_length, self.nx_contact),
            (self.channel_length, self.nx_channel),
            (self.contact_length, self.nx_contact),
        ]);
        // y: one gate row at 0, then oxide, channel, passivation.
        let gate_row_height = self.oxide_thickness / self.ny_oxide as f64;
        let ys = graded_axis(&[
            (gate_row_height, 1), // gate electrode row
            (self.oxide_thickness, self.ny_oxide),
            (self.channel_thickness, self.ny_channel),
            (self.passivation_thickness, self.ny_passivation),
        ]);

        let nx = xs.len();
        let ny = ys.len();
        let gate_rows = 0..=1; // node row 0 and the oxide/gate interface row 1 bottom
        let oxide_top_row = 1 + self.ny_oxide; // last oxide row index
        let channel_top_row = oxide_top_row + self.ny_channel;
        let source_cols = 0..=self.nx_contact; // includes contact/channel seam
        let drain_cols = (nx - 1 - self.nx_contact)..nx;

        let mut materials = Vec::with_capacity(nx * ny);
        let mut regions = Vec::with_capacity(nx * ny);
        for iy in 0..ny {
            for ix in 0..nx {
                let (mat, reg) = if iy == *gate_rows.start() {
                    (Material::Metal, Region::Gate)
                } else if iy <= oxide_top_row {
                    (self.gate_oxide.material(), Region::Dielectric)
                } else if iy <= channel_top_row {
                    let mat = Material::Semiconductor(self.channel.technology);
                    if source_cols.contains(&ix) {
                        (mat, Region::SourceContact)
                    } else if drain_cols.contains(&ix) {
                        (mat, Region::DrainContact)
                    } else {
                        (mat, Region::Channel)
                    }
                } else {
                    (Material::Passivation, Region::Passivation)
                };
                materials.push(mat);
                regions.push(reg);
            }
        }
        let mesh = RectMesh::new(xs, ys, materials, regions);
        // Channel x-extent for the quasi-Fermi ramp.
        let channel_x0 = self.contact_length;
        let channel_x1 = self.contact_length + self.channel_length;
        Ok(Device {
            spec: self.clone(),
            mesh,
            channel_x0,
            channel_x1,
        })
    }
}

/// A meshed device ready for simulation.
#[derive(Debug, Clone)]
pub struct Device {
    spec: DeviceSpec,
    mesh: RectMesh,
    channel_x0: f64,
    channel_x1: f64,
}

impl Device {
    /// The originating specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The finite-volume mesh.
    pub fn mesh(&self) -> &RectMesh {
        &self.mesh
    }

    /// Channel physics parameters.
    pub fn channel(&self) -> &ChannelParams {
        &self.spec.channel
    }

    /// Quasi-Fermi potential at position `x` for the given bias: 0 over
    /// the source contact, `V_D` over the drain contact, linear ramp
    /// across the gated channel.
    pub fn quasi_fermi(&self, x: f64, bias: Bias) -> f64 {
        if x <= self.channel_x0 {
            0.0
        } else if x >= self.channel_x1 {
            bias.drain
        } else {
            bias.drain * (x - self.channel_x0) / (self.channel_x1 - self.channel_x0)
        }
    }

    /// Dirichlet potential of a pinned node, if any.
    ///
    /// Contacts pin the semiconductor surface to the terminal voltage plus
    /// an ohmic accumulation offset (signed by polarity); the gate pins to
    /// `V_G − V_FB`.
    pub fn dirichlet_potential(&self, node: usize, bias: Bias) -> Option<f64> {
        let offset = -self.spec.channel.polarity.sign() * self.spec.contact_offset;
        match self.mesh.region(node) {
            Region::Gate => Some(bias.gate - self.spec.channel.flat_band),
            Region::SourceContact => Some(offset),
            Region::DrainContact => Some(bias.drain + offset),
            _ => None,
        }
    }

    /// Column indices spanning the gated channel (exclusive of contacts).
    pub fn channel_columns(&self) -> Vec<usize> {
        (0..self.mesh.nx())
            .filter(|&ix| {
                let x = self.mesh.xs()[ix];
                x > self.channel_x0 && x < self.channel_x1
            })
            .collect()
    }

    /// Row indices of the semiconductor film.
    pub fn channel_rows(&self) -> Vec<usize> {
        let first_ch = 2 + self.spec.ny_oxide; // gate row + oxide rows
        (first_ch..first_ch + self.spec.ny_channel).collect()
    }
}

/// Ranges from which [`DeviceSampler`] draws device variations; spans the
/// kind of population the paper's 50 000-device training set covers.
#[derive(Debug, Clone)]
pub struct SamplerRanges {
    /// Channel length range, m.
    pub channel_length: (f64, f64),
    /// Oxide thickness range, m.
    pub oxide_thickness: (f64, f64),
    /// Channel thickness range, m.
    pub channel_thickness: (f64, f64),
    /// Doping multiplier range (log-uniform around the reference).
    pub doping_scale: (f64, f64),
    /// Tail-trap density multiplier range (log-uniform).
    pub trap_scale: (f64, f64),
    /// Mobility prefactor multiplier range (log-uniform).
    pub mobility_scale: (f64, f64),
    /// Flat-band shift range, V.
    pub flat_band_shift: (f64, f64),
    /// Gate bias magnitude range, V.
    pub gate_bias: (f64, f64),
    /// Drain bias magnitude range, V.
    pub drain_bias: (f64, f64),
}

impl Default for SamplerRanges {
    fn default() -> Self {
        SamplerRanges {
            channel_length: (1.0e-6, 4.0e-6),
            oxide_thickness: (20.0e-9, 80.0e-9),
            channel_thickness: (15.0e-9, 50.0e-9),
            doping_scale: (0.3, 3.0),
            trap_scale: (0.3, 3.0),
            mobility_scale: (0.5, 2.0),
            flat_band_shift: (-0.3, 0.3),
            gate_bias: (0.5, 3.0),
            drain_bias: (0.1, 2.0),
        }
    }
}

/// Draws randomized device/bias pairs for dataset generation.
#[derive(Debug, Clone)]
pub struct DeviceSampler {
    ranges: SamplerRanges,
    technologies: Vec<Technology>,
    rng: Xorshift,
}

impl DeviceSampler {
    /// Sampler over the given technologies with default ranges.
    pub fn new(seed: u64, technologies: &[Technology]) -> Self {
        assert!(!technologies.is_empty(), "need at least one technology");
        DeviceSampler {
            ranges: SamplerRanges::default(),
            technologies: technologies.to_vec(),
            rng: Xorshift::new(seed),
        }
    }

    /// Replaces the sampling ranges.
    pub fn with_ranges(mut self, ranges: SamplerRanges) -> Self {
        self.ranges = ranges;
        self
    }

    /// Draws one randomized `(spec, bias)` pair. Bias signs follow the
    /// channel polarity (p-type devices are driven negative).
    pub fn sample(&mut self) -> (DeviceSpec, Bias) {
        let tech = self.technologies[self.rng.gen_range(self.technologies.len())];
        let mut spec = DeviceSpec::reference(tech);
        let r = &self.ranges;
        spec.channel_length = self.rng.uniform_in(r.channel_length.0, r.channel_length.1);
        spec.oxide_thickness = self
            .rng
            .uniform_in(r.oxide_thickness.0, r.oxide_thickness.1);
        spec.channel_thickness = self
            .rng
            .uniform_in(r.channel_thickness.0, r.channel_thickness.1);
        if self.rng.chance(0.3) {
            spec.gate_oxide = GateOxide::HfO2;
        }
        let log_u = |rng: &mut Xorshift, (lo, hi): (f64, f64)| -> f64 {
            (rng.uniform_in(lo.ln(), hi.ln())).exp()
        };
        spec.channel.doping *= log_u(&mut self.rng, r.doping_scale);
        spec.channel.tail_trap_density *= log_u(&mut self.rng, r.trap_scale);
        spec.channel.mobility_mu0 *= log_u(&mut self.rng, r.mobility_scale);
        spec.channel.flat_band += self
            .rng
            .uniform_in(r.flat_band_shift.0, r.flat_band_shift.1);
        let sign = spec.channel.polarity.sign();
        let bias = Bias {
            gate: sign * self.rng.uniform_in(r.gate_bias.0, r.gate_bias.1),
            drain: sign * self.rng.uniform_in(r.drain_bias.0, r.drain_bias.1),
        };
        (spec, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::Polarity;

    #[test]
    fn reference_devices_build_for_all_technologies() {
        for t in Technology::ALL {
            let d = DeviceSpec::reference(t).build().expect("builds");
            assert!(d.mesh().num_nodes() > 50);
        }
    }

    #[test]
    fn invalid_geometry_is_rejected() {
        let mut spec = DeviceSpec::reference(Technology::Igzo);
        spec.oxide_thickness = 0.0;
        assert!(matches!(
            spec.build(),
            Err(TcadError::InvalidGeometry { .. })
        ));
        let mut spec = DeviceSpec::reference(Technology::Igzo);
        spec.nx_channel = 1;
        assert!(spec.build().is_err());
    }

    #[test]
    fn mesh_regions_form_expected_stack() {
        let d = DeviceSpec::reference(Technology::Igzo).build().unwrap();
        let m = d.mesh();
        // Bottom row is gate everywhere.
        for ix in 0..m.nx() {
            assert_eq!(m.region(m.node_index(ix, 0)), Region::Gate);
        }
        // Top row is passivation.
        for ix in 0..m.nx() {
            assert_eq!(m.region(m.node_index(ix, m.ny() - 1)), Region::Passivation);
        }
        // Channel rows contain source, channel and drain from left to right.
        let row = d.channel_rows()[0];
        assert_eq!(m.region(m.node_index(0, row)), Region::SourceContact);
        assert_eq!(m.region(m.node_index(m.nx() / 2, row)), Region::Channel);
        assert_eq!(
            m.region(m.node_index(m.nx() - 1, row)),
            Region::DrainContact
        );
    }

    #[test]
    fn quasi_fermi_ramps_linearly() {
        let d = DeviceSpec::reference(Technology::Igzo).build().unwrap();
        let bias = Bias {
            gate: 2.0,
            drain: 1.0,
        };
        assert_eq!(d.quasi_fermi(0.0, bias), 0.0);
        assert_eq!(d.quasi_fermi(10e-6, bias), 1.0);
        let mid = d.quasi_fermi(0.5e-6 + 1.0e-6, bias);
        assert!((mid - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dirichlet_potentials_follow_bias() {
        let d = DeviceSpec::reference(Technology::Igzo).build().unwrap();
        let m = d.mesh();
        let bias = Bias {
            gate: 2.0,
            drain: 1.0,
        };
        let gate_node = m.node_index(0, 0);
        let psi_gate = d.dirichlet_potential(gate_node, bias).unwrap();
        assert!((psi_gate - (2.0 - d.channel().flat_band)).abs() < 1e-12);
        let row = d.channel_rows()[0];
        let src = d.dirichlet_potential(m.node_index(0, row), bias).unwrap();
        let drn = d
            .dirichlet_potential(m.node_index(m.nx() - 1, row), bias)
            .unwrap();
        assert!((drn - src - 1.0).abs() < 1e-12);
        // Channel interior is not pinned.
        assert!(d
            .dirichlet_potential(m.node_index(m.nx() / 2, row), bias)
            .is_none());
    }

    #[test]
    fn oxide_capacitance_scales_with_thickness() {
        let mut spec = DeviceSpec::reference(Technology::Cnt);
        let c1 = spec.oxide_capacitance();
        spec.oxide_thickness *= 2.0;
        assert!((spec.oxide_capacitance() - c1 / 2.0).abs() / c1 < 1e-12);
    }

    #[test]
    fn sampler_respects_polarity_sign() {
        let mut s = DeviceSampler::new(11, &[Technology::Cnt]);
        for _ in 0..20 {
            let (spec, bias) = s.sample();
            assert_eq!(spec.channel.polarity, Polarity::PType);
            assert!(
                bias.gate < 0.0 && bias.drain < 0.0,
                "p-type driven negative"
            );
            assert!(spec.build().is_ok());
        }
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let mut a = DeviceSampler::new(5, &Technology::ALL);
        let mut b = DeviceSampler::new(5, &Technology::ALL);
        for _ in 0..5 {
            let (sa, ba) = a.sample();
            let (sb, bb) = b.sample();
            assert_eq!(sa, sb);
            assert_eq!(ba, bb);
        }
    }

    #[test]
    fn channel_columns_exclude_contacts() {
        let d = DeviceSpec::reference(Technology::Ltps).build().unwrap();
        let cols = d.channel_columns();
        assert!(!cols.is_empty());
        let m = d.mesh();
        let row = d.channel_rows()[0];
        for ix in cols {
            assert_eq!(m.region(m.node_index(ix, row)), Region::Channel);
        }
    }
}
