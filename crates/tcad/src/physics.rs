//! Carrier statistics, trap models, SRH recombination and the
//! field-enhanced mobility law.
//!
//! The TFT charge model combines free Boltzmann carriers with an
//! exponential band-tail (tail-distributed traps, TDT): the occupied tail
//! density rises as `exp(η / (l·kT))` with tail slope `l > 1`, which is
//! what produces the characteristic power-law mobility of Eq. (1) in the
//! paper after the charge-drift integration.

use crate::materials::{ChannelParams, Polarity};
use crate::THERMAL_VOLTAGE;

/// Maximum |argument| fed to `exp` in the statistics; keeps Newton finite
/// at extreme over/under-drive without affecting converged solutions.
const EXP_CLAMP: f64 = 60.0;

fn safe_exp(x: f64) -> f64 {
    x.clamp(-EXP_CLAMP, EXP_CLAMP).exp()
}

/// Derivative of [`safe_exp`]: zero outside the clamp window so the
/// analytic Jacobian stays consistent with the (flat) clamped value.
fn safe_exp_deriv(x: f64) -> f64 {
    if (-EXP_CLAMP..=EXP_CLAMP).contains(&x) {
        x.exp()
    } else {
        0.0
    }
}

/// Mobile + tail-trapped carrier density (1/m³) at electrostatic
/// potential `psi` and quasi-Fermi potential `phi` (both volts).
///
/// For n-type the controlling variable is `η = ψ − φ`; for p-type it is
/// `η = φ − ψ` (hole accumulation under negative gate drive).
pub fn carrier_density(params: &ChannelParams, psi: f64, phi: f64) -> f64 {
    let eta = match params.polarity {
        Polarity::NType => psi - phi,
        Polarity::PType => phi - psi,
    };
    let free = params.effective_dos * safe_exp(eta / THERMAL_VOLTAGE);
    let tail = params.tail_trap_density * safe_exp(eta / (params.tail_slope * THERMAL_VOLTAGE));
    free + tail + params.intrinsic_density
}

/// Analytic derivative `∂n/∂ψ` of [`carrier_density`] (1/(m³·V)); the
/// diagonal term of the Poisson Jacobian.
pub fn carrier_density_dpsi(params: &ChannelParams, psi: f64, phi: f64) -> f64 {
    let (eta, sign) = match params.polarity {
        Polarity::NType => (psi - phi, 1.0),
        Polarity::PType => (phi - psi, -1.0),
    };
    let free = params.effective_dos * safe_exp_deriv(eta / THERMAL_VOLTAGE) / THERMAL_VOLTAGE;
    let slope = params.tail_slope * THERMAL_VOLTAGE;
    let tail = params.tail_trap_density * safe_exp_deriv(eta / slope) / slope;
    sign * (free + tail)
}

/// Net space-charge density (C/m³) in the channel: mobile carriers plus
/// ionized doping, signed by polarity.
///
/// For n-type: `ρ = q(N_D − n)`; for p-type: `ρ = q(p − N_A)` with the
/// convention that accumulated holes contribute positive charge.
pub fn space_charge(params: &ChannelParams, psi: f64, phi: f64) -> f64 {
    let n = carrier_density(params, psi, phi);
    match params.polarity {
        Polarity::NType => crate::ELEMENTARY_CHARGE * (params.doping - n),
        Polarity::PType => crate::ELEMENTARY_CHARGE * (n - params.doping),
    }
}

/// Derivative `∂ρ/∂ψ` of [`space_charge`] (C/(m³·V)).
pub fn space_charge_dpsi(params: &ChannelParams, psi: f64, phi: f64) -> f64 {
    let dn = carrier_density_dpsi(params, psi, phi);
    match params.polarity {
        Polarity::NType => -crate::ELEMENTARY_CHARGE * dn,
        Polarity::PType => crate::ELEMENTARY_CHARGE * dn,
    }
}

/// Shockley–Read–Hall net recombination rate (1/(m³·s)) given electron and
/// hole densities. Exposed as a task-specific self-consistent feature of
/// the unified encoding.
pub fn srh_recombination(params: &ChannelParams, n: f64, p: f64) -> f64 {
    let ni = params.intrinsic_density.max(1.0);
    let n1 = ni;
    let p1 = ni;
    (n * p - ni * ni) / (params.srh_tau_p * (n + n1) + params.srh_tau_n * (p + p1)).max(1e-300)
}

/// A crude band-to-band tunneling generation factor (1/(m³·s)) that scales
/// with the local field magnitude; parameterizes the "tunneling" slot of
/// the material embedding.
pub fn tunneling_generation(params: &ChannelParams, field: f64) -> f64 {
    let f = field.abs() / 1e8; // normalize to 10⁸ V/m
    params.tunneling_prefactor * f * f * safe_exp(-1.0 / (f + 1e-6))
}

/// Carrier-concentration-dependent mobility (m²/V·s): the VRH/TDT
/// percolation law `μ = μ₀ (Q_s / Q_ref)^γ`, evaluated on sheet charge.
///
/// `sheet_charge` and `reference_charge` are both C/m²; the reference is
/// conventionally `C_ox · 1 V`. As the channel accumulates, mobility rises
/// with exponent γ — the transport-level origin of Eq. (1) in the paper.
pub fn mobility(params: &ChannelParams, sheet_charge: f64, reference_charge: f64) -> f64 {
    let ratio = (sheet_charge.abs() / reference_charge.max(1e-30)).max(1e-12);
    params.mobility_mu0 * ratio.powf(params.mobility_gamma)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::Technology;

    #[test]
    fn carrier_density_monotone_in_overdrive_ntype() {
        let p = ChannelParams::reference(Technology::Igzo);
        let mut prev = 0.0;
        for k in 0..20 {
            let psi = -0.5 + 0.1 * k as f64;
            let n = carrier_density(&p, psi, 0.0);
            assert!(n > prev, "n must increase with ψ for n-type");
            prev = n;
        }
    }

    #[test]
    fn carrier_density_monotone_for_ptype() {
        let p = ChannelParams::reference(Technology::Cnt);
        // p-type: density increases as ψ decreases below φ.
        let high = carrier_density(&p, -1.0, 0.0);
        let low = carrier_density(&p, 0.5, 0.0);
        assert!(high > low);
    }

    #[test]
    fn density_derivative_matches_finite_difference() {
        for t in Technology::ALL {
            let p = ChannelParams::reference(t);
            for &psi in &[-0.8, -0.2, 0.0, 0.3, 0.9] {
                let h = 1e-7;
                let num = (carrier_density(&p, psi + h, 0.1) - carrier_density(&p, psi - h, 0.1))
                    / (2.0 * h);
                let ana = carrier_density_dpsi(&p, psi, 0.1);
                let denom = num.abs().max(ana.abs()).max(1e-6);
                assert!(
                    (num - ana).abs() / denom < 1e-5,
                    "{t}: ψ={psi}: {num} vs {ana}"
                );
            }
        }
    }

    #[test]
    fn space_charge_derivative_matches_finite_difference() {
        for t in Technology::ALL {
            let p = ChannelParams::reference(t);
            let psi = 0.2;
            let h = 1e-7;
            let num = (space_charge(&p, psi + h, 0.0) - space_charge(&p, psi - h, 0.0)) / (2.0 * h);
            let ana = space_charge_dpsi(&p, psi, 0.0);
            let denom = num.abs().max(ana.abs()).max(1e-6);
            assert!((num - ana).abs() / denom < 1e-5, "{t}");
        }
    }

    #[test]
    fn statistics_stay_finite_at_extremes() {
        let p = ChannelParams::reference(Technology::Ltps);
        for &psi in &[-100.0, 100.0] {
            assert!(carrier_density(&p, psi, 0.0).is_finite());
            assert!(space_charge(&p, psi, 0.0).is_finite());
            assert!(carrier_density_dpsi(&p, psi, 0.0).is_finite());
        }
    }

    #[test]
    fn srh_sign_follows_excess_carriers() {
        let p = ChannelParams::reference(Technology::Ltps);
        let ni = p.intrinsic_density;
        // Excess carriers recombine (positive rate).
        assert!(srh_recombination(&p, 100.0 * ni, 100.0 * ni) > 0.0);
        // Depletion generates (negative rate).
        assert!(srh_recombination(&p, 0.01 * ni, 0.01 * ni) < 0.0);
        // Equilibrium: zero.
        assert!(srh_recombination(&p, ni, ni).abs() < 1e-6 * ni / p.srh_tau_n);
    }

    #[test]
    fn tunneling_grows_with_field() {
        let p = ChannelParams::reference(Technology::Cnt);
        let low = tunneling_generation(&p, 1e7);
        let high = tunneling_generation(&p, 5e8);
        assert!(high > low);
        assert_eq!(tunneling_generation(&p, 0.0), 0.0);
    }

    #[test]
    fn mobility_power_law() {
        let p = ChannelParams::reference(Technology::Cnt);
        let qref = 1e-3;
        let m1 = mobility(&p, qref, qref);
        let m2 = mobility(&p, 2.0 * qref, qref);
        // μ(2Q)/μ(Q) = 2^γ.
        assert!((m2 / m1 - 2.0_f64.powf(p.mobility_gamma)).abs() < 1e-12);
        assert!((m1 - p.mobility_mu0).abs() < 1e-15);
    }
}
