//! The calibrated runtime study behind the paper's 142.07 s figure: the
//! commercial-TCAD baseline was timed over "576 planar CNT devices with
//! 2D TCAD simulations". This module reruns the same experiment shape on
//! our FEM simulator: a fixed-size population of randomized planar CNT
//! devices, each solved at one bias point, with per-device statistics.

use std::time::Instant;

use crate::dataset::generate_dataset;
use crate::materials::Technology;
use crate::Result;

/// The device count of the paper's calibrated study.
pub const PAPER_DEVICE_COUNT: usize = 576;

/// Result of a calibration run.
#[derive(Debug, Clone)]
pub struct CalibrationReport {
    /// Devices simulated.
    pub devices: usize,
    /// Mean seconds per device solve.
    pub mean_seconds: f64,
    /// Minimum / maximum per-device seconds.
    pub min_seconds: f64,
    /// Maximum per-device seconds.
    pub max_seconds: f64,
    /// Mean Newton iterations per solve.
    pub mean_newton_iterations: f64,
}

/// Runs the calibration study on `count` randomized planar CNT devices
/// (pass [`PAPER_DEVICE_COUNT`] for the paper's population size).
///
/// # Errors
///
/// Propagates simulation failures.
pub fn calibrate_cnt_study(count: usize, seed: u64) -> Result<CalibrationReport> {
    let t0 = Instant::now();
    let mut per_device = Vec::with_capacity(count);
    let mut iters = 0usize;
    // Generate one at a time so the timing is per-solve, not batched.
    for k in 0..count {
        let t = Instant::now();
        let sample = generate_dataset(seed.wrapping_add(k as u64), 1, &[Technology::Cnt])?;
        per_device.push(t.elapsed().as_secs_f64());
        iters += sample[0].solution.newton_iterations;
    }
    let total = t0.elapsed().as_secs_f64();
    let _ = total;
    let mean = per_device.iter().sum::<f64>() / count.max(1) as f64;
    Ok(CalibrationReport {
        devices: count,
        mean_seconds: mean,
        min_seconds: per_device.iter().cloned().fold(f64::INFINITY, f64::min),
        max_seconds: per_device.iter().cloned().fold(0.0, f64::max),
        mean_newton_iterations: iters as f64 / count.max(1) as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reports_sane_statistics() -> Result<()> {
        let report = calibrate_cnt_study(4, 99)?;
        assert_eq!(report.devices, 4);
        assert!(report.mean_seconds > 0.0);
        assert!(report.min_seconds <= report.mean_seconds);
        assert!(report.mean_seconds <= report.max_seconds);
        assert!(report.mean_newton_iterations > 1.0);
        Ok(())
    }

    #[test]
    fn paper_count_constant_matches_publication() {
        assert_eq!(PAPER_DEVICE_COUNT, 576);
    }
}
