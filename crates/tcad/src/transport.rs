//! Quasi-2-D charge-drift transport: terminal currents from a converged
//! Poisson solution, and I–V sweep drivers.
//!
//! The channel is treated as a chain of vertical slices. Each slice `x`
//! carries a sheet charge `Q_s(x) = q ∫ n dy` (integrated over the film)
//! and a local concentration-dependent mobility `μ(Q_s)` (the VRH/TDT
//! power law). The slices act as series resistances, so
//!
//! ```text
//! I_D = V_DS / Σ_slices Δx / (W · μ(Q_s) · Q_s)
//! ```
//!
//! which reproduces the expected TFT behaviour: exponential subthreshold
//! turn-on (via the Boltzmann tail of `Q_s`), power-law above-threshold
//! conduction, and output saturation as the drain-side slice depletes.

use crate::device::{Bias, Device};
use crate::physics;
use crate::poisson::{solve_poisson, PotentialSolution};
use crate::Result;

/// One bias point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IvPoint {
    /// Applied bias.
    pub bias: Bias,
    /// Drain current, A (signed; p-type devices carry negative current).
    pub current: f64,
}

/// Sheet charge per channel column (C/m²), integrated over the film.
pub fn sheet_charge_profile(device: &Device, solution: &PotentialSolution) -> Vec<(usize, f64)> {
    let mesh = device.mesh();
    let rows = device.channel_rows();
    device
        .channel_columns()
        .into_iter()
        .map(|ix| {
            let mut q = 0.0;
            for &iy in &rows {
                let idx = mesh.node_index(ix, iy);
                // Control length in y of this node (reuse control area / x-length).
                let (x_len, y_len) = control_lengths(mesh, idx);
                let _ = x_len;
                q += crate::ELEMENTARY_CHARGE * solution.carrier_density[idx] * y_len;
            }
            (ix, q)
        })
        .collect()
}

fn control_lengths(mesh: &crate::mesh::RectMesh, idx: usize) -> (f64, f64) {
    let (ix, iy) = mesh.node_coords(idx);
    let xs = mesh.xs();
    let ys = mesh.ys();
    let xl = {
        let lo = if ix > 0 {
            0.5 * (xs[ix] - xs[ix - 1])
        } else {
            0.0
        };
        let hi = if ix + 1 < xs.len() {
            0.5 * (xs[ix + 1] - xs[ix])
        } else {
            0.0
        };
        lo + hi
    };
    let yl = {
        let lo = if iy > 0 {
            0.5 * (ys[iy] - ys[iy - 1])
        } else {
            0.0
        };
        let hi = if iy + 1 < ys.len() {
            0.5 * (ys[iy + 1] - ys[iy])
        } else {
            0.0
        };
        lo + hi
    };
    (xl, yl)
}

/// Drain current (A) from a converged solution via the gradual-channel
/// charge-drift integral
///
/// ```text
/// I_D = (W / L) ∫₀^{V_DS} μ(Q_s(φ)) · Q_s(φ) dφ
/// ```
///
/// evaluated slice-by-slice over the quasi-Fermi ramp (`Δφ_i` is the ramp
/// drop across slice `i`). The integrand is non-negative, so `I_D` is
/// monotone in `V_DS` and saturates as the drain-side slices deplete —
/// the physically expected TFT output behaviour.
pub fn drain_current(device: &Device, solution: &PotentialSolution, bias: Bias) -> f64 {
    let mesh = device.mesh();
    let spec = device.spec();
    let q_ref = spec.oxide_capacitance() * 1.0; // C_ox · 1 V
    let profile = sheet_charge_profile(device, solution);
    if profile.is_empty() {
        return 0.0;
    }
    let l_ch = spec.channel_length;
    let mut integral = 0.0;
    for &(ix, qs) in &profile {
        let (x_len, _) = control_lengths(mesh, mesh.node_index(ix, device.channel_rows()[0]));
        let x = mesh.xs()[ix];
        let dphi =
            device.quasi_fermi(x + 0.5 * x_len, bias) - device.quasi_fermi(x - 0.5 * x_len, bias);
        let mu = physics::mobility(device.channel(), qs, q_ref);
        integral += mu * qs.abs() * dphi;
    }
    spec.width / l_ch * integral
}

/// Solves Poisson and evaluates the drain current at one bias point.
///
/// # Errors
///
/// Propagates Poisson convergence failures.
pub fn simulate_point(device: &Device, bias: Bias) -> Result<IvPoint> {
    let _span = stco_obs::span!("tcad.simulate_point", gate = bias.gate, drain = bias.drain,);
    let sol = solve_poisson(device, bias)?;
    Ok(IvPoint {
        bias,
        current: drain_current(device, &sol, bias),
    })
}

/// Transfer characteristic: sweeps `V_G` at fixed `V_D`.
///
/// # Errors
///
/// Propagates the first Poisson failure.
pub fn transfer_curve(device: &Device, gate_values: &[f64], drain: f64) -> Result<Vec<IvPoint>> {
    gate_values
        .iter()
        .map(|&g| simulate_point(device, Bias { gate: g, drain }))
        .collect()
}

/// Output characteristic: sweeps `V_D` at fixed `V_G`.
///
/// # Errors
///
/// Propagates the first Poisson failure.
pub fn output_curve(device: &Device, gate: f64, drain_values: &[f64]) -> Result<Vec<IvPoint>> {
    drain_values
        .iter()
        .map(|&d| simulate_point(device, Bias { gate, drain: d }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::materials::Technology;

    #[test]
    fn on_current_exceeds_off_current_by_orders() -> Result<()> {
        let d = DeviceSpec::reference(Technology::Igzo).build()?;
        let off = simulate_point(
            &d,
            Bias {
                gate: -1.0,
                drain: 1.0,
            },
        )?;
        let on = simulate_point(
            &d,
            Bias {
                gate: 3.0,
                drain: 1.0,
            },
        )?;
        assert!(
            on.current > 1e3 * off.current.max(1e-30),
            "on/off ratio too small: {:.3e} / {:.3e}",
            on.current,
            off.current
        );
        Ok(())
    }

    #[test]
    fn transfer_curve_is_monotone_ntype() -> Result<()> {
        let d = DeviceSpec::reference(Technology::Igzo).build()?;
        let gates: Vec<f64> = (0..8).map(|i| -1.0 + 0.5 * i as f64).collect();
        let curve = transfer_curve(&d, &gates, 1.0)?;
        for w in curve.windows(2) {
            assert!(
                w[1].current >= w[0].current * 0.999,
                "I_D not monotone in V_G"
            );
        }
        Ok(())
    }

    #[test]
    fn output_curve_saturates() -> Result<()> {
        let d = DeviceSpec::reference(Technology::Igzo).build()?;
        let drains: Vec<f64> = (1..=10).map(|i| 0.3 * i as f64).collect();
        let curve = output_curve(&d, 2.5, &drains)?;
        // Monotone non-decreasing.
        for w in curve.windows(2) {
            assert!(w[1].current >= w[0].current * 0.98);
        }
        // Saturating: slope at the end is well below slope at the start.
        let g_first = (curve[1].current - curve[0].current) / 0.3;
        let g_last = (curve[9].current - curve[8].current) / 0.3;
        assert!(
            g_last < 0.7 * g_first,
            "no saturation: first slope {g_first:.3e}, last {g_last:.3e}"
        );
        Ok(())
    }

    #[test]
    fn ptype_cnt_current_is_negative_under_negative_drive() -> Result<()> {
        let d = DeviceSpec::reference(Technology::Cnt).build()?;
        let p = simulate_point(
            &d,
            Bias {
                gate: -3.0,
                drain: -1.0,
            },
        )?;
        assert!(
            p.current < 0.0,
            "p-type I_D should be negative: {}",
            p.current
        );
        assert!(p.current.abs() > 1e-12);
        Ok(())
    }

    #[test]
    fn current_scales_with_width() -> Result<()> {
        let mut spec = DeviceSpec::reference(Technology::Igzo);
        let d1 = spec.build()?;
        let i1 = simulate_point(
            &d1,
            Bias {
                gate: 2.0,
                drain: 0.5,
            },
        )?
        .current;
        spec.width *= 2.0;
        let d2 = spec.build()?;
        let i2 = simulate_point(
            &d2,
            Bias {
                gate: 2.0,
                drain: 0.5,
            },
        )?
        .current;
        assert!(
            (i2 / i1 - 2.0).abs() < 1e-6,
            "I ∝ W violated: ratio {}",
            i2 / i1
        );
        Ok(())
    }

    #[test]
    fn longer_channel_conducts_less() -> Result<()> {
        let mut spec = DeviceSpec::reference(Technology::Igzo);
        let i_short = simulate_point(
            &spec.build()?,
            Bias {
                gate: 2.0,
                drain: 0.5,
            },
        )?
        .current;
        spec.channel_length *= 2.0;
        let i_long = simulate_point(
            &spec.build()?,
            Bias {
                gate: 2.0,
                drain: 0.5,
            },
        )?
        .current;
        assert!(i_long < i_short);
        Ok(())
    }

    #[test]
    fn sheet_charge_profile_covers_channel() -> Result<()> {
        let d = DeviceSpec::reference(Technology::Ltps).build()?;
        let sol = solve_poisson(
            &d,
            Bias {
                gate: 2.0,
                drain: 0.5,
            },
        )?;
        let profile = sheet_charge_profile(&d, &sol);
        assert_eq!(profile.len(), d.channel_columns().len());
        assert!(profile.iter().all(|&(_, q)| q > 0.0));
        Ok(())
    }
}
