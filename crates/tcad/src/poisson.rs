//! Nonlinear Poisson solver over the device mesh.
//!
//! The discretization is finite-volume: for each non-electrode node,
//!
//! ```text
//! Σ_nb ε_f · (A_f/d) · (ψ_nb − ψ_i)  +  ρ(ψ_i) · V_i  =  0
//! ```
//!
//! with ρ the (strongly nonlinear) space charge of
//! [`crate::physics::space_charge`] in semiconductor nodes and zero in
//! dielectrics. Electrode nodes (gate, source, drain) carry Dirichlet
//! rows. Rows are rescaled by their diagonal so the Newton residual reads
//! in volts; the linearized updates are solved with Jacobi-preconditioned
//! BiCGSTAB. Gate/drain bias is ramped in steps, warm-starting each step
//! from the previous solution — the standard TCAD continuation strategy.

use crate::device::{Bias, Device};
use crate::physics;
use crate::{Result, TcadError};
use stco_numerics::solve::{bicgstab, IterOptions};
use stco_numerics::sparse::CooBuilder;

/// A converged electrostatic solution.
#[derive(Debug, Clone)]
pub struct PotentialSolution {
    /// Electrostatic potential per node, V.
    pub psi: Vec<f64>,
    /// Mobile+trapped carrier density per node (0 outside semiconductor), 1/m³.
    pub carrier_density: Vec<f64>,
    /// Net space charge per node, C/m³.
    pub space_charge: Vec<f64>,
    /// SRH net recombination per node, 1/(m³·s) — a self-consistent
    /// feature of the unified encoding.
    pub srh: Vec<f64>,
    /// Total Newton iterations across all continuation steps.
    pub newton_iterations: usize,
}

/// Solves the nonlinear Poisson problem at the given bias.
///
/// # Errors
///
/// Returns [`TcadError::PoissonDiverged`] if the damped-Newton iteration
/// fails at the final continuation step, or propagates numerical errors.
pub fn solve_poisson(device: &Device, bias: Bias) -> Result<PotentialSolution> {
    let _span = stco_obs::span!("tcad.solve_poisson", gate = bias.gate, drain = bias.drain,);
    let mesh = device.mesh();
    let n = mesh.num_nodes();
    let mut psi = vec![0.0; n];
    let mut total_iters = 0usize;

    // Bias continuation: ramp both terminals together. Each step runs a
    // clamped-update Newton ("Gummel damping"): the linear update is
    // limited to ±8·kT/q per node per iteration, the standard way to tame
    // the exponential Boltzmann terms without line searches.
    let steps = [0.25, 0.5, 0.75, 1.0];
    let clamp = 8.0 * crate::THERMAL_VOLTAGE;
    for (si, &frac) in steps.iter().enumerate() {
        let b = Bias {
            gate: bias.gate * frac,
            drain: bias.drain * frac,
        };
        // Seed Dirichlet nodes exactly; interior keeps the previous step.
        for (i, p) in psi.iter_mut().enumerate() {
            if let Some(pd) = device.dirichlet_potential(i, b) {
                *p = pd;
            }
        }
        let _step_span = stco_obs::span!("tcad.continuation_step", frac = frac);
        let max_iter = 200;
        let mut converged = false;
        let mut last_update = f64::INFINITY;
        for it in 0..max_iter {
            total_iters += 1;
            let (residual, jac) = assemble(device, b, &psi);
            let csr = jac.to_csr();
            let lin = bicgstab(
                &csr,
                &residual,
                &IterOptions {
                    tol: 1e-10,
                    max_iter: 6000,
                },
            )?;
            let mut max_dx = 0.0_f64;
            for (p, dx) in psi.iter_mut().zip(&lin.x) {
                let step = dx.clamp(-clamp, clamp);
                *p -= step;
                max_dx = max_dx.max(step.abs());
            }
            last_update = max_dx;
            // One poisoned node here would propagate through the carrier
            // densities into every downstream I-V point; fail at the
            // iteration that produced it, naming the node and bias.
            if let Some((node, _)) = stco_numerics::guard::first_non_finite(&psi) {
                return Err(TcadError::NonFinite {
                    node,
                    gate: bias.gate,
                    drain: bias.drain,
                    context: "poisson.psi".into(),
                });
            }
            stco_obs::event!("tcad.newton_iter", it = it, max_dx = max_dx);
            if max_dx < 1e-9 {
                converged = true;
                break;
            }
        }
        if !converged && si + 1 == steps.len() {
            return Err(TcadError::PoissonDiverged {
                residual: last_update,
            });
        }
    }

    // Derived per-node quantities.
    let params = device.channel();
    let mut carrier = vec![0.0; n];
    let mut charge = vec![0.0; n];
    let mut srh = vec![0.0; n];
    for i in 0..n {
        if mesh.material(i).is_semiconductor() && !mesh.region(i).is_dirichlet() {
            let (x, _) = mesh.position(i);
            let phi = device.quasi_fermi(x, bias);
            let nd = physics::carrier_density(params, psi[i], phi);
            carrier[i] = nd;
            charge[i] = physics::space_charge(params, psi[i], phi);
            let ni = params.intrinsic_density.max(1.0);
            let minority = ni * ni / nd.max(ni);
            srh[i] = physics::srh_recombination(params, nd, minority);
        }
    }
    stco_numerics::debug_assert_all_finite!("poisson.carrier_density", &carrier);
    stco_numerics::debug_assert_all_finite!("poisson.space_charge", &charge);
    stco_obs::Recorder::global()
        .metrics()
        .counter("tcad.newton_iters")
        .add(total_iters as u64);
    Ok(PotentialSolution {
        psi,
        carrier_density: carrier,
        space_charge: charge,
        srh,
        newton_iterations: total_iters,
    })
}

/// Assembles the row-scaled residual and Jacobian at `state`.
fn assemble(device: &Device, bias: Bias, state: &[f64]) -> (Vec<f64>, CooBuilder) {
    let mesh = device.mesh();
    let n = mesh.num_nodes();
    let params = device.channel();
    let mut residual = vec![0.0; n];
    let mut jac = CooBuilder::new(n, n);

    for i in 0..n {
        if let Some(pd) = device.dirichlet_potential(i, bias) {
            residual[i] = state[i] - pd;
            jac.push(i, i, 1.0);
            continue;
        }
        let mut r = 0.0;
        let mut diag = 0.0;
        let mut offs: Vec<(usize, f64)> = Vec::with_capacity(4);
        for nb in mesh.neighbors(i) {
            let c = mesh.face_permittivity(i, nb) * mesh.coupling_factor(i, nb);
            r += c * (state[nb] - state[i]);
            diag -= c;
            offs.push((nb, c));
        }
        let is_channel_node = mesh.material(i).is_semiconductor() && !mesh.region(i).is_dirichlet();
        if is_channel_node {
            let (x, _) = mesh.position(i);
            let phi = device.quasi_fermi(x, bias);
            let vol = mesh.control_area(i);
            r += physics::space_charge(params, state[i], phi) * vol;
            diag += physics::space_charge_dpsi(params, state[i], phi) * vol;
        }
        // Row scaling: divide by |diag| so the residual reads in volts and
        // the Jacobian diagonal is ±1 (ideal for Jacobi preconditioning).
        let scale = 1.0 / diag.abs().max(1e-300);
        residual[i] = r * scale;
        jac.push(i, i, diag * scale);
        for (nb, c) in offs {
            jac.push(i, nb, c * scale);
        }
    }
    (residual, jac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::materials::Technology;

    #[test]
    fn zero_bias_solution_is_near_flat_band_structure() -> Result<()> {
        let d = DeviceSpec::reference(Technology::Igzo).build()?;
        let sol = solve_poisson(&d, Bias::default())?;
        assert!(sol.psi.iter().all(|p| p.is_finite()));
        // Gate node pinned at −V_FB.
        let gate = d.mesh().node_index(0, 0);
        assert!((sol.psi[gate] + d.channel().flat_band).abs() < 1e-9);
        Ok(())
    }

    #[test]
    fn residual_of_converged_solution_is_small() -> Result<()> {
        let d = DeviceSpec::reference(Technology::Igzo).build()?;
        let bias = Bias {
            gate: 2.0,
            drain: 0.5,
        };
        let sol = solve_poisson(&d, bias)?;
        let (res, _) = assemble(&d, bias, &sol.psi);
        let max = res.iter().fold(0.0_f64, |m, v| m.max(v.abs()));
        assert!(max < 1e-6, "converged residual {max}");
        Ok(())
    }

    #[test]
    fn positive_gate_accumulates_ntype_channel() -> Result<()> {
        let d = DeviceSpec::reference(Technology::Igzo).build()?;
        let off = solve_poisson(
            &d,
            Bias {
                gate: -1.0,
                drain: 0.1,
            },
        )?;
        let on = solve_poisson(
            &d,
            Bias {
                gate: 3.0,
                drain: 0.1,
            },
        )?;
        let mesh = d.mesh();
        let row = d.channel_rows()[0];
        let mid = mesh.node_index(mesh.nx() / 2, row);
        assert!(
            on.carrier_density[mid] > 100.0 * off.carrier_density[mid],
            "on {:.3e} vs off {:.3e}",
            on.carrier_density[mid],
            off.carrier_density[mid]
        );
        Ok(())
    }

    #[test]
    fn negative_gate_accumulates_ptype_cnt() -> Result<()> {
        let d = DeviceSpec::reference(Technology::Cnt).build()?;
        let off = solve_poisson(
            &d,
            Bias {
                gate: 1.0,
                drain: -0.1,
            },
        )?;
        let on = solve_poisson(
            &d,
            Bias {
                gate: -3.0,
                drain: -0.1,
            },
        )?;
        let mesh = d.mesh();
        let row = d.channel_rows()[0];
        let mid = mesh.node_index(mesh.nx() / 2, row);
        assert!(on.carrier_density[mid] > 100.0 * off.carrier_density[mid]);
        Ok(())
    }

    #[test]
    fn potential_is_monotone_through_oxide_in_accumulation() -> Result<()> {
        // With a strong positive gate and grounded channel, ψ must drop
        // monotonically from gate through the oxide at mid-channel.
        let d = DeviceSpec::reference(Technology::Igzo).build()?;
        let sol = solve_poisson(
            &d,
            Bias {
                gate: 3.0,
                drain: 0.0,
            },
        )?;
        let mesh = d.mesh();
        let ix = mesh.nx() / 2;
        let first_ch_row = d.channel_rows()[0];
        let mut prev = f64::INFINITY;
        for iy in 0..=first_ch_row {
            let p = sol.psi[mesh.node_index(ix, iy)];
            assert!(p <= prev + 1e-9, "ψ must not increase toward channel");
            prev = p;
        }
        Ok(())
    }

    #[test]
    fn solution_shapes_match_mesh() -> Result<()> {
        let d = DeviceSpec::reference(Technology::Ltps).build()?;
        let sol = solve_poisson(
            &d,
            Bias {
                gate: 1.5,
                drain: 0.5,
            },
        )?;
        let n = d.mesh().num_nodes();
        assert_eq!(sol.psi.len(), n);
        assert_eq!(sol.carrier_density.len(), n);
        assert_eq!(sol.space_charge.len(), n);
        assert_eq!(sol.srh.len(), n);
        assert!(sol.newton_iterations > 0);
        Ok(())
    }
}
