//! Labelled device datasets for the GNN surrogates.
//!
//! Each [`DeviceSample`] bundles the device/bias specification with the
//! ground-truth labels the two surrogates regress: the nodal potential map
//! (Poisson emulator, node regression) and the terminal current (IV
//! predictor, graph regression), plus the self-consistent per-node
//! quantities (charge density, SRH) that the unified encoding may inject
//! as task-specific features.
//!
//! The paper trains on 50 000 independent devices and evaluates on a
//! further 32 000 unseen ones; this generator produces the same population
//! at any requested size (documented scale-down in EXPERIMENTS.md).

use crate::device::{Bias, Device, DeviceSampler, DeviceSpec};
use crate::materials::Technology;
use crate::poisson::{solve_poisson, PotentialSolution};
use crate::transport::drain_current;
use crate::Result;

/// One labelled device for surrogate training.
#[derive(Debug, Clone)]
pub struct DeviceSample {
    /// The device specification.
    pub spec: DeviceSpec,
    /// The meshed device (kept for encoding geometry).
    pub device: Device,
    /// Applied bias.
    pub bias: Bias,
    /// Converged electrostatics (labels + self-consistent features).
    pub solution: PotentialSolution,
    /// Terminal drain current, A.
    pub current: f64,
}

impl DeviceSample {
    /// Simulates one device at one bias point.
    ///
    /// # Errors
    ///
    /// Propagates Poisson convergence failures.
    pub fn simulate(spec: DeviceSpec, bias: Bias) -> Result<Self> {
        let device = spec.build()?;
        let solution = solve_poisson(&device, bias)?;
        let current = drain_current(&device, &solution, bias);
        Ok(DeviceSample {
            spec,
            device,
            bias,
            solution,
            current,
        })
    }

    /// `log10(|I_D|)` with a 1 fA floor — the regression target of the IV
    /// predictor (currents span many decades, so the model learns logs).
    pub fn log_current(&self) -> f64 {
        self.current.abs().max(1e-15).log10()
    }
}

/// Deterministically generates `count` labelled devices.
///
/// Devices that fail to converge (rare, extreme corners) are skipped and
/// replaced, so the returned set always has exactly `count` samples.
///
/// Simulations run on the [`stco_par`] pool (`STCO_THREADS`). The sampler
/// stream is drawn serially and each round attempts at most the number of
/// still-missing samples, so the attempt sequence — and therefore the
/// returned dataset — is bitwise identical at every thread count.
///
/// # Errors
///
/// Returns the last simulation error if fewer than `count` of
/// `4 * count` attempts converge (indicative of a systematic problem).
pub fn generate_dataset(
    seed: u64,
    count: usize,
    technologies: &[Technology],
) -> Result<Vec<DeviceSample>> {
    let _span = stco_obs::span!("tcad.generate_dataset", count = count);
    let config = stco_par::ParConfig::current();
    let mut sampler = DeviceSampler::new(seed, technologies);
    let mut out = Vec::with_capacity(count);
    let mut last_err = None;
    let mut attempts = 0usize;
    let cap = 4 * count.max(1);
    while out.len() < count && attempts < cap {
        let n_draw = (count - out.len()).min(cap - attempts);
        let pairs: Vec<(DeviceSpec, Bias)> = (0..n_draw).map(|_| sampler.sample()).collect();
        attempts += n_draw;
        let results = stco_par::par_map(config, &pairs, |(spec, bias)| {
            DeviceSample::simulate(spec.clone(), *bias)
        });
        for r in results {
            match r {
                Ok(s) => out.push(s),
                Err(e) => last_err = Some(e),
            }
        }
    }
    if out.len() < count {
        match last_err {
            Some(e) => Err(e),
            // Unreachable: out.len() < count implies at least one failed
            // attempt, which records an error.
            None => Err(crate::TcadError::InvalidGeometry {
                context: "dataset generation fell short without an error".into(),
            }),
        }
    } else {
        Ok(out)
    }
}

/// An index-based train/validation/test split (70/15/15 by default).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitIndices {
    /// Training indices.
    pub train: Vec<usize>,
    /// Validation indices.
    pub val: Vec<usize>,
    /// Test indices.
    pub test: Vec<usize>,
}

/// Splits `0..n` deterministically into train/val/test by fractions.
///
/// # Panics
///
/// Panics if the fractions are negative or sum above 1.
pub fn split_indices(n: usize, train_frac: f64, val_frac: f64, seed: u64) -> SplitIndices {
    assert!(train_frac >= 0.0 && val_frac >= 0.0 && train_frac + val_frac <= 1.0);
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = stco_numerics::rng::Xorshift::new(seed);
    rng.shuffle(&mut order);
    let n_train = (n as f64 * train_frac).round() as usize;
    let n_val = (n as f64 * val_frac).round() as usize;
    let train = order[..n_train.min(n)].to_vec();
    let val = order[n_train.min(n)..(n_train + n_val).min(n)].to_vec();
    let test = order[(n_train + n_val).min(n)..].to_vec();
    SplitIndices { train, val, test }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let ds = generate_dataset(3, 4, &[Technology::Igzo]).unwrap();
        assert_eq!(ds.len(), 4);
        for s in &ds {
            assert!(s.current.is_finite());
            assert!(s.solution.psi.iter().all(|p| p.is_finite()));
        }
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = generate_dataset(9, 3, &[Technology::Cnt]).unwrap();
        let b = generate_dataset(9, 3, &[Technology::Cnt]).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.spec, y.spec);
            assert_eq!(x.current, y.current);
        }
    }

    #[test]
    fn log_current_floors_tiny_values() {
        let ds = generate_dataset(5, 1, &[Technology::Ltps]).unwrap();
        let lc = ds[0].log_current();
        assert!((-15.0..0.0).contains(&lc), "log current {lc}");
    }

    #[test]
    fn split_partitions_exactly() {
        let s = split_indices(100, 0.7, 0.15, 42);
        assert_eq!(s.train.len(), 70);
        assert_eq!(s.val.len(), 15);
        assert_eq!(s.test.len(), 15);
        let mut all: Vec<usize> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .copied()
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_is_seed_dependent_but_stable() {
        let a = split_indices(50, 0.8, 0.1, 1);
        let b = split_indices(50, 0.8, 0.1, 1);
        let c = split_indices(50, 0.8, 0.1, 2);
        assert_eq!(a, b);
        assert_ne!(a.train, c.train);
    }
}
