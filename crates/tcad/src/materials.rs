//! Material property tables for the emerging technologies the paper
//! targets (CNT, IGZO, LTPS) plus the dielectrics and contacts around
//! them.
//!
//! Property values are representative literature numbers for thin-film
//! devices; they parameterize the carrier statistics, SRH recombination
//! and mobility models in [`crate::physics`] and double as the
//! material-level parameter vector of the unified device encoding
//! (Fig. 2 of the paper).

/// Channel technology family (also used by `stco-compact` presets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technology {
    /// Carbon-nanotube network TFT (typically p-type).
    Cnt,
    /// Indium-gallium-zinc-oxide TFT (n-type).
    Igzo,
    /// Low-temperature polycrystalline silicon TFT.
    Ltps,
}

impl Technology {
    /// All supported technologies, in encoding order.
    pub const ALL: [Technology; 3] = [Technology::Cnt, Technology::Igzo, Technology::Ltps];

    /// Index used for one-hot encodings.
    pub fn index(self) -> usize {
        match self {
            Technology::Cnt => 0,
            Technology::Igzo => 1,
            Technology::Ltps => 2,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Technology::Cnt => "CNT",
            Technology::Igzo => "IGZO",
            Technology::Ltps => "LTPS",
        }
    }

    /// Dominant carrier polarity of the standard device for this
    /// technology (CNT TFTs are typically p-type; IGZO is n-type).
    pub fn default_polarity(self) -> Polarity {
        match self {
            Technology::Cnt => Polarity::PType,
            Technology::Igzo => Polarity::NType,
            Technology::Ltps => Polarity::NType,
        }
    }
}

impl std::fmt::Display for Technology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Carrier polarity of a TFT channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    /// Electron conduction.
    NType,
    /// Hole conduction.
    PType,
}

impl Polarity {
    /// +1 for n-type, −1 for p-type; flips the sign conventions in the
    /// carrier statistics and compact model.
    pub fn sign(self) -> f64 {
        match self {
            Polarity::NType => 1.0,
            Polarity::PType => -1.0,
        }
    }
}

/// Material identity of a mesh node (one-hot channel of the encoding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Material {
    /// Semiconductor channel of the given technology.
    Semiconductor(Technology),
    /// Gate dielectric (SiO₂-like).
    OxideSiO2,
    /// High-k gate dielectric (HfO₂-like).
    OxideHfO2,
    /// Metal contact.
    Metal,
    /// Passivation / encapsulation above the channel.
    Passivation,
}

impl Material {
    /// Number of distinct one-hot material classes
    /// (3 semiconductors + 2 oxides + metal + passivation).
    pub const NUM_CLASSES: usize = 7;

    /// One-hot class index for the unified encoding.
    pub fn class_index(self) -> usize {
        match self {
            Material::Semiconductor(t) => t.index(),
            Material::OxideSiO2 => 3,
            Material::OxideHfO2 => 4,
            Material::Metal => 5,
            Material::Passivation => 6,
        }
    }

    /// Relative permittivity.
    pub fn relative_permittivity(self) -> f64 {
        match self {
            Material::Semiconductor(Technology::Cnt) => 5.0,
            Material::Semiconductor(Technology::Igzo) => 10.0,
            Material::Semiconductor(Technology::Ltps) => 11.7,
            Material::OxideSiO2 => 3.9,
            Material::OxideHfO2 => 20.0,
            Material::Metal => 1.0,
            Material::Passivation => 2.5,
        }
    }

    /// Whether the material conducts carriers (semiconductor regions).
    pub fn is_semiconductor(self) -> bool {
        matches!(self, Material::Semiconductor(_))
    }
}

/// Physical parameters of a semiconductor channel, forming the
/// material-level "parameter vector" of the unified encoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelParams {
    /// Technology family.
    pub technology: Technology,
    /// Carrier polarity.
    pub polarity: Polarity,
    /// Effective band-edge density of states, 1/m³.
    pub effective_dos: f64,
    /// Intrinsic-ish background density, 1/m³ (sets the off-state floor).
    pub intrinsic_density: f64,
    /// Net channel doping (donors − acceptors for n-type), 1/m³.
    pub doping: f64,
    /// Tail-trap density of states prefactor, 1/m³ (TDT model).
    pub tail_trap_density: f64,
    /// Tail slope as a multiple of kT (TDT characteristic energy).
    pub tail_slope: f64,
    /// Low-field band mobility prefactor μ₀, m²/(V·s).
    pub mobility_mu0: f64,
    /// Mobility field-enhancement exponent γ (VRH/TDT percolation).
    pub mobility_gamma: f64,
    /// Flat-band / work-function offset between gate and channel, V.
    pub flat_band: f64,
    /// SRH electron lifetime, s.
    pub srh_tau_n: f64,
    /// SRH hole lifetime, s.
    pub srh_tau_p: f64,
    /// Band-to-band tunneling prefactor (1/m³/s at unit field factor).
    pub tunneling_prefactor: f64,
}

impl ChannelParams {
    /// Representative parameters for each technology's standard device.
    ///
    /// Values are of literature magnitude for thin-film devices: IGZO with
    /// low trap density and mobility ~10 cm²/Vs; LTPS with grain-boundary
    /// traps and mobility ~50 cm²/Vs; CNT networks p-type with strong
    /// tail-trap hopping (γ noticeably above 0).
    pub fn reference(technology: Technology) -> Self {
        match technology {
            Technology::Cnt => ChannelParams {
                technology,
                polarity: Polarity::PType,
                effective_dos: 2.0e25,
                intrinsic_density: 2.0e13,
                doping: 1.0e21,
                tail_trap_density: 4.0e24,
                tail_slope: 2.4,
                mobility_mu0: 2.5e-3, // 25 cm²/Vs
                mobility_gamma: 0.45,
                flat_band: 0.4,
                srh_tau_n: 2.0e-8,
                srh_tau_p: 2.0e-8,
                tunneling_prefactor: 1.0e18,
            },
            Technology::Igzo => ChannelParams {
                technology,
                polarity: Polarity::NType,
                effective_dos: 5.0e24,
                intrinsic_density: 1.0e12,
                doping: 5.0e20,
                tail_trap_density: 1.5e24,
                tail_slope: 1.8,
                mobility_mu0: 1.2e-3, // 12 cm²/Vs
                mobility_gamma: 0.35,
                flat_band: -0.3,
                srh_tau_n: 5.0e-8,
                srh_tau_p: 5.0e-8,
                tunneling_prefactor: 3.0e17,
            },
            Technology::Ltps => ChannelParams {
                technology,
                polarity: Polarity::NType,
                effective_dos: 2.8e25,
                intrinsic_density: 1.5e16,
                doping: 2.0e21,
                tail_trap_density: 8.0e24,
                tail_slope: 2.0,
                mobility_mu0: 5.0e-3, // 50 cm²/Vs
                mobility_gamma: 0.25,
                flat_band: -0.1,
                srh_tau_n: 1.0e-8,
                srh_tau_p: 1.0e-8,
                tunneling_prefactor: 8.0e17,
            },
        }
    }

    /// Flattened parameter vector for the material-level embedding of the
    /// unified device encoding (Fig. 2). Values are log/linearly scaled to
    /// comparable magnitudes; the order is stable and documented by
    /// [`ChannelParams::PARAM_NAMES`].
    pub fn parameter_vector(&self) -> Vec<f64> {
        vec![
            self.polarity.sign(),
            (self.effective_dos.log10() - 24.0).clamp(-3.0, 3.0),
            (self.intrinsic_density.max(1.0).log10() - 13.0).clamp(-4.0, 4.0),
            (self.doping.max(1.0).log10() - 21.0).clamp(-3.0, 3.0),
            (self.tail_trap_density.max(1.0).log10() - 24.0).clamp(-3.0, 3.0),
            self.tail_slope,
            self.mobility_mu0 * 1e3,
            self.mobility_gamma,
            self.flat_band,
            (self.srh_tau_n.log10() + 8.0).clamp(-3.0, 3.0),
            (self.srh_tau_p.log10() + 8.0).clamp(-3.0, 3.0),
            (self.tunneling_prefactor.max(1.0).log10() - 18.0).clamp(-3.0, 3.0),
        ]
    }

    /// Names of [`ChannelParams::parameter_vector`] entries, in order.
    pub const PARAM_NAMES: [&'static str; 12] = [
        "polarity",
        "log_effective_dos",
        "log_intrinsic_density",
        "log_doping",
        "log_tail_trap_density",
        "tail_slope",
        "mobility_mu0_x1e3",
        "mobility_gamma",
        "flat_band",
        "log_srh_tau_n",
        "log_srh_tau_p",
        "log_tunneling_prefactor",
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technology_indices_are_distinct() {
        let idx: Vec<usize> = Technology::ALL.iter().map(|t| t.index()).collect();
        assert_eq!(idx, vec![0, 1, 2]);
    }

    #[test]
    fn material_class_indices_cover_range() {
        let mats = [
            Material::Semiconductor(Technology::Cnt),
            Material::Semiconductor(Technology::Igzo),
            Material::Semiconductor(Technology::Ltps),
            Material::OxideSiO2,
            Material::OxideHfO2,
            Material::Metal,
            Material::Passivation,
        ];
        let mut seen = [false; Material::NUM_CLASSES];
        for m in mats {
            let i = m.class_index();
            assert!(i < Material::NUM_CLASSES);
            assert!(!seen[i], "duplicate class index {i}");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn permittivities_are_physical() {
        assert!(
            Material::OxideHfO2.relative_permittivity()
                > Material::OxideSiO2.relative_permittivity()
        );
        for t in Technology::ALL {
            assert!(Material::Semiconductor(t).relative_permittivity() >= 1.0);
        }
    }

    #[test]
    fn cnt_reference_is_p_type() {
        let p = ChannelParams::reference(Technology::Cnt);
        assert_eq!(p.polarity, Polarity::PType);
        assert_eq!(p.polarity.sign(), -1.0);
        assert_eq!(Technology::Cnt.default_polarity(), Polarity::PType);
    }

    #[test]
    fn parameter_vector_matches_name_count() {
        for t in Technology::ALL {
            let p = ChannelParams::reference(t);
            assert_eq!(p.parameter_vector().len(), ChannelParams::PARAM_NAMES.len());
        }
    }

    #[test]
    fn parameter_vectors_distinguish_technologies() {
        let a = ChannelParams::reference(Technology::Cnt).parameter_vector();
        let b = ChannelParams::reference(Technology::Igzo).parameter_vector();
        assert_ne!(a, b);
    }

    #[test]
    fn ltps_has_highest_mobility() {
        let mob = |t| ChannelParams::reference(t).mobility_mu0;
        assert!(mob(Technology::Ltps) > mob(Technology::Cnt));
        assert!(mob(Technology::Cnt) > mob(Technology::Igzo));
    }
}
