//! A 2-D finite-volume TCAD device simulator for planar thin-film
//! transistors — the "commercial TCAD" substrate of the `fast-stco`
//! reproduction.
//!
//! The paper's GNN surrogates are trained on 2-D TCAD solutions of planar
//! CNT devices (50 000 training devices; a calibrated 576-device study put
//! the commercial simulator at 142.07 s per device). This crate supplies
//! the equivalent ground-truth generator, built from scratch:
//!
//! * [`mesh`] — rectilinear finite-volume meshes over a bottom-gate TFT
//!   cross-section (gate / gate dielectric / semiconductor / contacts).
//! * [`materials`] — property tables for CNT, IGZO, LTPS and dielectrics,
//!   including tail-distributed-trap (TDT) and variable-range-hopping
//!   (VRH) transport parameters.
//! * [`physics`] — carrier statistics with exponential band-tail traps,
//!   Shockley–Read–Hall recombination and the field-enhanced mobility law.
//! * [`poisson`] — a damped-Newton nonlinear Poisson solver over the mesh
//!   (sparse Jacobian, Jacobi-preconditioned BiCGSTAB).
//! * [`transport`] — quasi-2-D charge-drift terminal currents (the IV
//!   predictor's regression target) and full I–V sweeps.
//! * [`device`] — parameterized device specs and the randomized sampler
//!   that generates surrogate training populations.
//! * [`dataset`] — labelled device samples (potential map, charge map,
//!   terminal current) consumed by `stco-surrogate`.
//!
//! # Example
//!
//! ```
//! use stco_tcad::device::{Bias, DeviceSpec};
//! use stco_tcad::materials::Technology;
//! use stco_tcad::poisson::solve_poisson;
//! use stco_tcad::transport::drain_current;
//!
//! let spec = DeviceSpec::reference(Technology::Cnt);
//! let device = spec.build()?;
//! let bias = Bias { gate: -2.0, drain: -1.0 };
//! let sol = solve_poisson(&device, bias)?;
//! let id = drain_current(&device, &sol, bias);
//! assert!(id.abs() > 0.0);
//! # Ok::<(), stco_tcad::TcadError>(())
//! ```

pub mod calibration;
pub mod dataset;
pub mod device;
pub mod materials;
pub mod mesh;
pub mod physics;
pub mod poisson;
pub mod transport;

/// Errors reported by the device simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum TcadError {
    /// Device geometry was inconsistent (e.g. zero-thickness layer).
    InvalidGeometry {
        /// Human-readable description.
        context: String,
    },
    /// The nonlinear Poisson iteration failed to converge.
    PoissonDiverged {
        /// Residual at the final Newton iterate.
        residual: f64,
    },
    /// A solver state or output went NaN/Inf.
    NonFinite {
        /// Mesh node at which the poison was first observed.
        node: usize,
        /// Gate bias of the offending solve (V).
        gate: f64,
        /// Drain bias of the offending solve (V).
        drain: f64,
        /// What was checked, e.g. `poisson.psi`.
        context: String,
    },
    /// An underlying numerical routine failed.
    Numerics(stco_numerics::NumericsError),
}

impl std::fmt::Display for TcadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcadError::InvalidGeometry { context } => write!(f, "invalid geometry: {context}"),
            TcadError::PoissonDiverged { residual } => {
                write!(f, "poisson solve diverged (residual {residual:.3e})")
            }
            TcadError::NonFinite {
                node,
                gate,
                drain,
                context,
            } => write!(
                f,
                "non-finite {context} at node {node} (Vg={gate:.3} V, Vd={drain:.3} V)"
            ),
            TcadError::Numerics(e) => write!(f, "numerics failure: {e}"),
        }
    }
}

impl std::error::Error for TcadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TcadError::Numerics(e) => Some(e),
            _ => None,
        }
    }
}

impl From<stco_numerics::NumericsError> for TcadError {
    fn from(e: stco_numerics::NumericsError) -> Self {
        TcadError::Numerics(e)
    }
}

/// Result alias for TCAD routines.
pub type Result<T> = std::result::Result<T, TcadError>;

/// Thermal voltage kT/q at 300 K, in volts.
pub const THERMAL_VOLTAGE: f64 = 0.025852;

/// Elementary charge in coulombs.
pub const ELEMENTARY_CHARGE: f64 = 1.602_176_634e-19;

/// Vacuum permittivity in F/m.
pub const VACUUM_PERMITTIVITY: f64 = 8.854_187_812_8e-12;
