//! Property-based tests of the device simulator over randomized devices:
//! converged solutions stay physical, currents obey monotonicity and
//! geometric scaling, and the carrier statistics respect their analytic
//! derivatives everywhere.

use proptest::prelude::*;
use stco_tcad::device::{Bias, DeviceSampler, DeviceSpec};
use stco_tcad::materials::{ChannelParams, Polarity, Technology};
use stco_tcad::physics;
use stco_tcad::poisson::solve_poisson;
use stco_tcad::transport::drain_current;

fn any_technology() -> impl Strategy<Value = Technology> {
    prop_oneof![
        Just(Technology::Cnt),
        Just(Technology::Igzo),
        Just(Technology::Ltps),
    ]
}

proptest! {
    // Each case runs a handful of Newton solves; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sampled_devices_solve_and_stay_physical(seed in 0u64..10_000) {
        let mut sampler = DeviceSampler::new(seed, &Technology::ALL);
        let (spec, bias) = sampler.sample();
        let device = spec.build().expect("sampled specs are valid");
        let sol = solve_poisson(&device, bias).expect("sampled biases converge");
        // Potentials bounded by the electrode range ± the built-in offsets.
        let bound = bias.gate.abs() + bias.drain.abs() + 2.0;
        for (i, &psi) in sol.psi.iter().enumerate() {
            prop_assert!(psi.is_finite());
            prop_assert!(psi.abs() <= bound, "node {i}: ψ = {psi}");
        }
        // Carrier densities are non-negative and finite.
        for &n in &sol.carrier_density {
            prop_assert!(n >= 0.0 && n.is_finite());
        }
        let id = drain_current(&device, &sol, bias);
        prop_assert!(id.is_finite());
        // Current sign follows the drain bias sign.
        if bias.drain.abs() > 1e-9 {
            prop_assert!(id.signum() == bias.drain.signum() || id == 0.0);
        }
    }

    #[test]
    fn gate_drive_increases_current(tech in any_technology(), drive in 1.5..3.0f64) {
        let spec = DeviceSpec::reference(tech);
        let device = spec.build().expect("reference builds");
        let sign = spec.channel.polarity.sign();
        let weak = {
            let b = Bias { gate: sign * 0.8, drain: sign * 0.5 };
            let sol = solve_poisson(&device, b).expect("converges");
            drain_current(&device, &sol, b).abs()
        };
        let strong = {
            let b = Bias { gate: sign * drive, drain: sign * 0.5 };
            let sol = solve_poisson(&device, b).expect("converges");
            drain_current(&device, &sol, b).abs()
        };
        prop_assert!(strong > weak, "|I| must grow with |V_G| ({weak:.3e} → {strong:.3e})");
    }

    #[test]
    // Domain kept within ±~50 kT of overdrive: beyond that the density
    // reaches 1e50/m³ scales where the central difference suffers
    // catastrophic cancellation (the analytic form stays exact).
    fn carrier_density_derivative_is_exact(tech in any_technology(),
                                           psi in -1.0..1.0f64,
                                           phi in -0.25..0.25f64) {
        let p = ChannelParams::reference(tech);
        let h = 1e-7;
        let numeric = (physics::carrier_density(&p, psi + h, phi)
            - physics::carrier_density(&p, psi - h, phi))
            / (2.0 * h);
        let analytic = physics::carrier_density_dpsi(&p, psi, phi);
        let denom = numeric.abs().max(analytic.abs()).max(1e-3);
        prop_assert!((numeric - analytic).abs() / denom < 1e-4);
    }

    #[test]
    fn space_charge_sign_flips_with_polarity(tech in any_technology(), eta in 0.3..1.2f64) {
        let p = ChannelParams::reference(tech);
        // Strong accumulation: mobile carriers dominate doping.
        let (psi, phi) = match p.polarity {
            Polarity::NType => (eta, 0.0),
            Polarity::PType => (-eta, 0.0),
        };
        let rho = physics::space_charge(&p, psi, phi);
        match p.polarity {
            // Accumulated electrons: net negative space charge.
            Polarity::NType => prop_assert!(rho < 0.0),
            // Accumulated holes: net positive.
            Polarity::PType => prop_assert!(rho > 0.0),
        }
    }

    #[test]
    fn mobility_power_law_scales(tech in any_technology(), q in 1e-5..1e-2f64, k in 1.5..4.0f64) {
        let p = ChannelParams::reference(tech);
        let qref = 1e-3;
        let m1 = physics::mobility(&p, q, qref);
        let mk = physics::mobility(&p, k * q, qref);
        prop_assert!((mk / m1 - k.powf(p.mobility_gamma)).abs() < 1e-9);
    }
}
