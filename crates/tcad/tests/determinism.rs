//! Thread-count independence of dataset generation: the parallel attempt
//! rounds must reproduce the serial sampler stream bit for bit.
//!
//! This file holds a single test because it toggles the process-global
//! thread override; adding further tests here would race on it.

use stco_par::set_global_threads;
use stco_tcad::dataset::generate_dataset;
use stco_tcad::materials::Technology;

#[test]
fn dataset_generation_is_bitwise_identical_across_thread_counts() {
    let techs = [Technology::Igzo, Technology::Cnt, Technology::Ltps];

    set_global_threads(1);
    let serial = generate_dataset(11, 6, &techs).expect("serial generation");
    set_global_threads(4);
    let parallel = generate_dataset(11, 6, &techs).expect("parallel generation");
    set_global_threads(0);

    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.bias, b.bias);
        assert_eq!(a.current.to_bits(), b.current.to_bits(), "terminal current");
        assert_eq!(a.solution.psi.len(), b.solution.psi.len());
        for (x, y) in a.solution.psi.iter().zip(&b.solution.psi) {
            assert_eq!(x.to_bits(), y.to_bits(), "potential map");
        }
    }
}
