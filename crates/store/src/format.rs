//! The versioned binary artifact container.
//!
//! # Layout (all integers little-endian)
//!
//! ```text
//! offset   size        field
//! 0        8           magic  = b"STCOARTF"
//! 8        4           schema version (u32, currently 1)
//! 12       4           header length H (u32, bytes)
//! 16       8           payload length P (u64, bytes)
//! 24       H           header: UTF-8 JSON {"kind": <str>, "meta": <obj>}
//! 24+H     P           payload: tensor count N (u64), then N records of
//!                      rows (u64) · cols (u64) · rows*cols f64 values
//! 24+H+P   8           FNV-1a 64 checksum of all preceding bytes
//! ```
//!
//! Encoding is a pure function of the artifact contents — no timestamps,
//! no environment — so two identical models encode to identical bytes
//! and the content-addressed [`crate::Registry`] can dedupe them. f64
//! values travel as raw IEEE-754 bits, so decode→predict is bitwise
//! identical to the model that was saved.

use crate::{fnv1a64, Result, StoreError};
use stco_numerics::Matrix;
use stco_obs::json::JsonValue;
use std::path::Path;

/// First 8 bytes of every artifact file.
pub const MAGIC: [u8; 8] = *b"STCOARTF";

/// Schema version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;

/// Fixed prefix: magic + version + header length + payload length.
const PREFIX_LEN: usize = 8 + 4 + 4 + 8;

/// Trailing checksum size.
const CHECKSUM_LEN: usize = 8;

/// A decoded (or to-be-encoded) model artifact: a kind tag, a JSON
/// metadata header, and the model's tensors in canonical `Params`
/// order (see `stco_nn::Params::tensors`).
#[derive(Debug, Clone, PartialEq)]
pub struct Artifact {
    /// Model kind, e.g. `"poisson-emulator"`. Checked on load so an
    /// artifact can never be rehydrated into the wrong model type.
    pub kind: String,
    /// Arbitrary JSON metadata: config fingerprints, normalization
    /// constants, seeds (as strings — u64 does not fit f64 exactly).
    pub meta: JsonValue,
    /// Weight tensors, canonical allocation order.
    pub tensors: Vec<Matrix>,
}

impl Artifact {
    /// Builds an artifact from its parts.
    #[must_use]
    pub fn new(kind: &str, meta: JsonValue, tensors: Vec<Matrix>) -> Self {
        Artifact {
            kind: kind.to_string(),
            meta,
            tensors,
        }
    }

    /// Returns an error unless the artifact holds the expected kind.
    ///
    /// # Errors
    ///
    /// [`StoreError::WrongKind`] on mismatch.
    pub fn expect_kind(&self, kind: &str) -> Result<()> {
        if self.kind == kind {
            Ok(())
        } else {
            Err(StoreError::WrongKind {
                expected: kind.to_string(),
                found: self.kind.clone(),
            })
        }
    }

    /// Looks up a required f64 field in `meta`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Header`] if the key is absent or not numeric.
    pub fn meta_f64(&self, key: &str) -> Result<f64> {
        self.meta
            .get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| StoreError::Header {
                context: format!("missing numeric meta field {key:?}"),
            })
    }

    /// Looks up a required string field in `meta`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Header`] if the key is absent or not a string.
    pub fn meta_str(&self, key: &str) -> Result<&str> {
        self.meta
            .get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| StoreError::Header {
                context: format!("missing string meta field {key:?}"),
            })
    }

    /// Looks up a required u64 field stored as a decimal string
    /// (u64 seeds do not round-trip through JSON's f64 numbers).
    ///
    /// # Errors
    ///
    /// [`StoreError::Header`] if the key is absent or unparsable.
    pub fn meta_u64_str(&self, key: &str) -> Result<u64> {
        let s = self.meta_str(key)?;
        s.parse::<u64>().map_err(|_| StoreError::Header {
            context: format!("meta field {key:?} is not a u64 string: {s:?}"),
        })
    }

    /// Encodes the artifact to its canonical byte form.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let header = JsonValue::Obj(vec![
            ("kind".to_string(), JsonValue::Str(self.kind.clone())),
            ("meta".to_string(), self.meta.clone()),
        ])
        .render();
        let header_bytes = header.as_bytes();

        let mut payload = Vec::with_capacity(
            8 + self
                .tensors
                .iter()
                .map(|t| 16 + 8 * t.as_slice().len())
                .sum::<usize>(),
        );
        payload.extend_from_slice(&(self.tensors.len() as u64).to_le_bytes());
        for t in &self.tensors {
            payload.extend_from_slice(&(t.rows() as u64).to_le_bytes());
            payload.extend_from_slice(&(t.cols() as u64).to_le_bytes());
            for v in t.as_slice() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }

        let mut out =
            Vec::with_capacity(PREFIX_LEN + header_bytes.len() + payload.len() + CHECKSUM_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        // Header length fits u32 by construction: headers are small JSON.
        let header_len = u32::try_from(header_bytes.len()).unwrap_or(u32::MAX);
        out.extend_from_slice(&header_len.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(header_bytes);
        out.extend_from_slice(&payload);
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decodes an artifact from bytes, validating magic, version,
    /// declared lengths and the trailing checksum.
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s for every corruption mode: wrong magic,
    /// unsupported version, truncation, checksum mismatch, malformed
    /// header, impossible tensor shapes. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Artifact> {
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(StoreError::BadMagic {
                found: bytes[..bytes.len().min(MAGIC.len())].to_vec(),
            });
        }
        if bytes.len() < PREFIX_LEN {
            return Err(StoreError::Truncated {
                needed: PREFIX_LEN,
                got: bytes.len(),
            });
        }
        let version = u32::from_le_bytes(read_4(bytes, 8));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let header_len = u32::from_le_bytes(read_4(bytes, 12)) as usize;
        let payload_len = usize::try_from(u64::from_le_bytes(read_8(bytes, 16))).map_err(|_| {
            StoreError::Truncated {
                needed: usize::MAX,
                got: bytes.len(),
            }
        })?;
        let total = PREFIX_LEN
            .checked_add(header_len)
            .and_then(|n| n.checked_add(payload_len))
            .and_then(|n| n.checked_add(CHECKSUM_LEN))
            .ok_or(StoreError::Truncated {
                needed: usize::MAX,
                got: bytes.len(),
            })?;
        if bytes.len() < total {
            return Err(StoreError::Truncated {
                needed: total,
                got: bytes.len(),
            });
        }
        // Checksum covers everything before the trailing 8 bytes.
        let body = &bytes[..total - CHECKSUM_LEN];
        let stored = u64::from_le_bytes(read_8(bytes, total - CHECKSUM_LEN));
        let computed = fnv1a64(body);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch {
                expected: computed,
                found: stored,
            });
        }

        let header_bytes = &bytes[PREFIX_LEN..PREFIX_LEN + header_len];
        let header_str = std::str::from_utf8(header_bytes).map_err(|_| StoreError::Header {
            context: "header is not UTF-8".to_string(),
        })?;
        let header = JsonValue::parse(header_str).map_err(|e| StoreError::Header {
            context: format!("header JSON: {e}"),
        })?;
        let kind = header
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| StoreError::Header {
                context: "missing \"kind\"".to_string(),
            })?
            .to_string();
        let meta = header
            .get("meta")
            .cloned()
            .ok_or_else(|| StoreError::Header {
                context: "missing \"meta\"".to_string(),
            })?;

        let payload = &bytes[PREFIX_LEN + header_len..PREFIX_LEN + header_len + payload_len];
        let tensors = decode_tensors(payload)?;
        Ok(Artifact {
            kind,
            meta,
            tensors,
        })
    }

    /// Writes the artifact to a file (non-atomically; the registry
    /// layers atomic temp+rename on top of this).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn write_file(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.to_bytes()).map_err(|source| StoreError::Io {
            path: path.display().to_string(),
            source,
        })
    }

    /// Reads and decodes an artifact file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure, plus every decode
    /// error from [`Artifact::from_bytes`].
    pub fn read_file(path: &Path) -> Result<Artifact> {
        let bytes = std::fs::read(path).map_err(|source| StoreError::Io {
            path: path.display().to_string(),
            source,
        })?;
        Artifact::from_bytes(&bytes)
    }
}

fn read_4(bytes: &[u8], offset: usize) -> [u8; 4] {
    let mut out = [0u8; 4];
    out.copy_from_slice(&bytes[offset..offset + 4]);
    out
}

fn read_8(bytes: &[u8], offset: usize) -> [u8; 8] {
    let mut out = [0u8; 8];
    out.copy_from_slice(&bytes[offset..offset + 8]);
    out
}

fn decode_tensors(payload: &[u8]) -> Result<Vec<Matrix>> {
    let need = |needed: usize, got: usize| StoreError::Truncated { needed, got };
    if payload.len() < 8 {
        return Err(need(8, payload.len()));
    }
    let count = usize::try_from(u64::from_le_bytes(read_8(payload, 0)))
        .map_err(|_| need(usize::MAX, payload.len()))?;
    let mut pos = 8usize;
    let mut tensors = Vec::new();
    for index in 0..count {
        if payload.len() < pos + 16 {
            return Err(need(pos + 16, payload.len()));
        }
        let rows = usize::try_from(u64::from_le_bytes(read_8(payload, pos))).map_err(|_| {
            StoreError::BadTensor {
                index,
                context: "rows overflows usize".to_string(),
            }
        })?;
        let cols = usize::try_from(u64::from_le_bytes(read_8(payload, pos + 8))).map_err(|_| {
            StoreError::BadTensor {
                index,
                context: "cols overflows usize".to_string(),
            }
        })?;
        pos += 16;
        let n = rows
            .checked_mul(cols)
            .ok_or_else(|| StoreError::BadTensor {
                index,
                context: format!("shape {rows}×{cols} overflows"),
            })?;
        let byte_len = n.checked_mul(8).ok_or_else(|| StoreError::BadTensor {
            index,
            context: format!("shape {rows}×{cols} overflows"),
        })?;
        if payload.len() < pos + byte_len {
            return Err(need(pos + byte_len, payload.len()));
        }
        let mut data = Vec::with_capacity(n);
        for i in 0..n {
            data.push(f64::from_le_bytes(read_8(payload, pos + 8 * i)));
        }
        pos += byte_len;
        tensors.push(Matrix::from_vec(rows, cols, data));
    }
    if pos != payload.len() {
        return Err(StoreError::Header {
            context: format!(
                "payload has {} trailing bytes after {} tensors",
                payload.len() - pos,
                count
            ),
        });
    }
    Ok(tensors)
}
