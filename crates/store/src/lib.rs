//! `stco-store`: durable artifacts for trained fast-stco models.
//!
//! The paper's speedup claim (Table I) rests on *reusing* trained GNN
//! surrogates across STCO iterations, yet without persistence every
//! process retrains from scratch. This crate makes trained weights
//! outlive the process:
//!
//! * [`mod@format`] — a dependency-free, versioned binary container
//!   ([`Artifact`]): 8-byte magic, schema version, JSON metadata header
//!   (via [`stco_obs::json::JsonValue`]), raw little-endian f64 tensor
//!   payload, and a trailing FNV-1a content checksum. Byte output is a
//!   pure function of the artifact contents — no timestamps, hostnames
//!   or randomness — so identical models produce identical files.
//! * [`registry`] — a content-addressed on-disk store ([`Registry`]):
//!   the artifact key is a hash of model config + training config +
//!   dataset seed, so a second run with identical configs resolves a
//!   cache hit instead of retraining. Writes are atomic (temp file +
//!   rename) and hits/misses are counted on the global obs recorder.
//!
//! Every failure mode is a typed [`StoreError`]; corrupt or truncated
//! files never panic.

pub mod format;
pub mod registry;

pub use format::{Artifact, FORMAT_VERSION, MAGIC};
pub use registry::{ArtifactKey, Registry};

use std::fmt;

/// Errors from artifact encoding, decoding and registry I/O.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (open, read, write, rename).
    Io {
        /// The path involved, when known.
        path: String,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The file does not start with the artifact magic bytes.
    BadMagic {
        /// The first bytes actually found (up to 8).
        found: Vec<u8>,
    },
    /// The schema version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the file.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The byte stream ended before the declared structure.
    Truncated {
        /// Bytes required by the declared lengths.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The trailing content checksum does not match the bytes.
    ChecksumMismatch {
        /// Checksum recomputed from the content.
        expected: u64,
        /// Checksum stored in the file.
        found: u64,
    },
    /// The artifact holds a different model kind than requested.
    WrongKind {
        /// Kind the caller asked for.
        expected: String,
        /// Kind stored in the artifact.
        found: String,
    },
    /// The metadata header is malformed or missing a required field.
    Header {
        /// What went wrong.
        context: String,
    },
    /// A tensor record declares an impossible shape.
    BadTensor {
        /// Zero-based tensor index.
        index: usize,
        /// What went wrong.
        context: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => write!(f, "artifact I/O on {path}: {source}"),
            StoreError::BadMagic { found } => {
                write!(f, "not an stco artifact (magic bytes {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported artifact schema version {found} (this build reads {supported})"
            ),
            StoreError::Truncated { needed, got } => {
                write!(f, "truncated artifact: need {needed} bytes, have {got}")
            }
            StoreError::ChecksumMismatch { expected, found } => write!(
                f,
                "artifact checksum mismatch: content hashes to {expected:016x}, file says {found:016x}"
            ),
            StoreError::WrongKind { expected, found } => {
                write!(f, "artifact kind mismatch: wanted {expected:?}, file holds {found:?}")
            }
            StoreError::Header { context } => write!(f, "bad artifact header: {context}"),
            StoreError::BadTensor { index, context } => {
                write!(f, "bad tensor record {index}: {context}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Result alias for store routines.
pub type Result<T> = std::result::Result<T, StoreError>;

/// FNV-1a 64-bit hash — the content checksum and cache-key hash.
///
/// Chosen because it is dependency-free, stable across platforms and
/// fast enough for multi-megabyte payloads; this is an integrity check
/// against truncation and bit rot, not a cryptographic seal.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
