//! Content-addressed on-disk artifact registry.
//!
//! The cache key is a hash of everything that determines the trained
//! weights: model config, training config and dataset seed. Two runs
//! with identical configs therefore resolve to the same key, and the
//! second run loads the artifact instead of retraining — the
//! amortization the paper's Table I speedups assume.

use crate::{fnv1a64, Artifact, Result, StoreError};
use std::path::{Path, PathBuf};

/// Environment variable overriding the registry directory.
pub const STORE_DIR_ENV: &str = "STCO_STORE_DIR";

/// Default registry directory (relative to the working directory).
pub const DEFAULT_DIR: &str = ".stco-store";

/// A content-addressed cache key: FNV-1a 64 over the kind tag plus
/// every config string that determines the trained weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArtifactKey(u64);

impl ArtifactKey {
    /// Derives a key from a kind tag and the config strings that
    /// determine the trained weights (model config, training config,
    /// dataset seed — typically their `Debug` renderings, which are
    /// stable pure functions of the struct fields).
    #[must_use]
    pub fn from_parts(kind: &str, parts: &[&str]) -> Self {
        let mut buf = Vec::new();
        buf.extend_from_slice(kind.as_bytes());
        for part in parts {
            // Length-prefix each part so ("ab","c") != ("a","bc").
            buf.extend_from_slice(&(part.len() as u64).to_le_bytes());
            buf.extend_from_slice(part.as_bytes());
        }
        ArtifactKey(fnv1a64(&buf))
    }

    /// The raw 64-bit key.
    #[must_use]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from its raw 64-bit value (e.g. parsed back from
    /// the hex rendering a wire protocol or filename carries).
    #[must_use]
    pub fn from_value(value: u64) -> Self {
        ArtifactKey(value)
    }

    /// Zero-padded lowercase hex rendering, used in file names.
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

/// An on-disk artifact store keyed by [`ArtifactKey`].
///
/// File layout: one artifact per file, named `<kind>-<key:016x>.stco`,
/// written atomically (temp file in the same directory, then rename)
/// so concurrent writers and crashed runs never leave a torn artifact
/// behind.
#[derive(Debug, Clone)]
pub struct Registry {
    dir: PathBuf,
}

impl Registry {
    /// Opens (creating if needed) a registry at `dir`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(dir: &Path) -> Result<Registry> {
        std::fs::create_dir_all(dir).map_err(|source| StoreError::Io {
            path: dir.display().to_string(),
            source,
        })?;
        Ok(Registry {
            dir: dir.to_path_buf(),
        })
    }

    /// Opens the default registry: `$STCO_STORE_DIR` if set, else
    /// `.stco-store` under the working directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open_default() -> Result<Registry> {
        let dir = std::env::var(STORE_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from(DEFAULT_DIR));
        Registry::open(&dir)
    }

    /// The registry directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The file path an artifact of this kind/key lives at.
    #[must_use]
    pub fn path_for(&self, kind: &str, key: ArtifactKey) -> PathBuf {
        self.dir.join(format!("{kind}-{}.stco", key.to_hex()))
    }

    /// Whether an artifact file exists for this kind/key.
    #[must_use]
    pub fn contains(&self, kind: &str, key: ArtifactKey) -> bool {
        self.path_for(kind, key).is_file()
    }

    /// Loads the artifact for `key`, verifying it holds `kind`.
    ///
    /// Returns `Ok(None)` on a cache miss (no file). Counts
    /// `store.cache_hit` / `store.cache_miss` on the global recorder.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from reading or decoding an existing file —
    /// a present-but-corrupt artifact is an error, not a miss, so
    /// corruption is surfaced instead of silently retraining.
    pub fn load(&self, kind: &str, key: ArtifactKey) -> Result<Option<Artifact>> {
        let _span = stco_obs::span!("store.load");
        let metrics = stco_obs::Recorder::global().metrics();
        let path = self.path_for(kind, key);
        if !path.is_file() {
            metrics.counter("store.cache_miss").inc();
            stco_obs::event!("store.cache_miss", kind = kind, key = key.to_hex());
            return Ok(None);
        }
        let artifact = Artifact::read_file(&path)?;
        artifact.expect_kind(kind)?;
        metrics.counter("store.cache_hit").inc();
        stco_obs::event!("store.cache_hit", kind = kind, key = key.to_hex());
        Ok(Some(artifact))
    }

    /// Stores an artifact under `key`, atomically.
    ///
    /// Returns the final path. The write goes to a temp file in the
    /// registry directory and is renamed into place, so readers only
    /// ever observe complete artifacts.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failure.
    pub fn put(&self, key: ArtifactKey, artifact: &Artifact) -> Result<PathBuf> {
        let _span = stco_obs::span!("store.put");
        let path = self.path_for(&artifact.kind, key);
        // Unique-enough temp name: pid distinguishes concurrent
        // processes; within a process, puts of the same key race to
        // identical bytes, so last-rename-wins is still correct.
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{}", std::process::id(), key.to_hex()));
        artifact.write_file(&tmp)?;
        std::fs::rename(&tmp, &path).map_err(|source| StoreError::Io {
            path: path.display().to_string(),
            source,
        })?;
        stco_obs::event!(
            "store.put",
            kind = artifact.kind.as_str(),
            key = key.to_hex()
        );
        Ok(path)
    }
}
