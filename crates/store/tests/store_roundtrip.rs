//! Round-trip and corruption properties of the artifact format and
//! registry: encode→decode is bitwise-lossless on random tensors, and
//! every corruption mode (truncation, bit flips, wrong version, wrong
//! kind) yields a typed `StoreError` — never a panic.

use proptest::prelude::*;
use stco_numerics::Matrix;
use stco_obs::json::JsonValue;
use stco_store::{Artifact, ArtifactKey, Registry, StoreError, FORMAT_VERSION, MAGIC};

fn meta() -> JsonValue {
    JsonValue::Obj(vec![
        (
            "config".to_string(),
            JsonValue::Str("Cfg { n: 3 }".to_string()),
        ),
        ("seed".to_string(), JsonValue::Str("42".to_string())),
        ("norm_mean".to_string(), JsonValue::Num(0.125)),
    ])
}

fn sample_artifact() -> Artifact {
    Artifact::new(
        "test-model",
        meta(),
        vec![
            Matrix::from_vec(2, 3, vec![1.0, -2.5, 3.0e-7, f64::MIN_POSITIVE, 0.0, -0.0]),
            Matrix::from_vec(1, 1, vec![f64::MAX]),
        ],
    )
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0e6..1.0e6f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip_is_bitwise_lossless(a in matrix(3, 4), b in matrix(5, 1), c in matrix(1, 7)) {
        let artifact = Artifact::new("prop-model", meta(), vec![a, b, c]);
        let bytes = artifact.to_bytes();
        let back = Artifact::from_bytes(&bytes).expect("decodes");
        prop_assert_eq!(&back.kind, "prop-model");
        prop_assert_eq!(back.tensors.len(), artifact.tensors.len());
        for (x, y) in artifact.tensors.iter().zip(&back.tensors) {
            prop_assert_eq!(x.rows(), y.rows());
            prop_assert_eq!(x.cols(), y.cols());
            prop_assert_eq!(bits(x), bits(y));
        }
        // Deterministic encoding: same artifact → same bytes.
        prop_assert_eq!(bytes, back.to_bytes());
    }

    #[test]
    fn any_truncation_errors_without_panic(a in matrix(2, 2), cut_frac in 0.0..1.0f64) {
        let artifact = Artifact::new("prop-model", meta(), vec![a]);
        let bytes = artifact.to_bytes();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        let result = Artifact::from_bytes(&bytes[..cut]);
        prop_assert!(result.is_err());
    }

    #[test]
    fn any_single_bit_flip_is_detected(a in matrix(2, 3), pos_frac in 0.0..1.0f64, bit in 0..8usize) {
        let artifact = Artifact::new("prop-model", meta(), vec![a]);
        let mut bytes = artifact.to_bytes();
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        // A flip anywhere must either fail decoding outright or decode
        // to *different* content — never silently produce the original.
        match Artifact::from_bytes(&bytes) {
            Err(_) => {}
            Ok(back) => prop_assert_ne!(back, artifact),
        }
    }
}

#[test]
fn exact_roundtrip_preserves_meta_and_special_values() {
    let artifact = sample_artifact();
    let back = Artifact::from_bytes(&artifact.to_bytes()).expect("decodes");
    assert_eq!(back.kind, "test-model");
    assert_eq!(back.meta_str("seed").expect("seed"), "42");
    assert_eq!(back.meta_u64_str("seed").expect("seed"), 42);
    assert_eq!(back.meta_f64("norm_mean").expect("norm"), 0.125);
    // -0.0, subnormal boundary and f64::MAX all survive bitwise.
    assert_eq!(bits(&back.tensors[0]), bits(&artifact.tensors[0]));
    assert_eq!(bits(&back.tensors[1]), bits(&artifact.tensors[1]));
}

#[test]
fn truncated_prefix_reports_truncated() {
    let bytes = sample_artifact().to_bytes();
    assert!(matches!(
        Artifact::from_bytes(&bytes[..20]),
        Err(StoreError::Truncated { .. })
    ));
}

#[test]
fn truncated_payload_reports_truncated() {
    let bytes = sample_artifact().to_bytes();
    assert!(matches!(
        Artifact::from_bytes(&bytes[..bytes.len() - 12]),
        Err(StoreError::Truncated { .. })
    ));
}

#[test]
fn flipped_checksum_byte_reports_checksum_mismatch() {
    let mut bytes = sample_artifact().to_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    assert!(matches!(
        Artifact::from_bytes(&bytes),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn flipped_payload_byte_reports_checksum_mismatch() {
    let mut bytes = sample_artifact().to_bytes();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    assert!(matches!(
        Artifact::from_bytes(&bytes),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn wrong_magic_reports_bad_magic() {
    let mut bytes = sample_artifact().to_bytes();
    bytes[0] = b'X';
    assert!(matches!(
        Artifact::from_bytes(&bytes),
        Err(StoreError::BadMagic { .. })
    ));
    assert!(matches!(
        Artifact::from_bytes(b"zip"),
        Err(StoreError::BadMagic { .. })
    ));
}

#[test]
fn wrong_schema_version_reports_unsupported() {
    // Rebuild the file with a bumped version and a recomputed checksum,
    // so the version check (not the checksum) is what trips.
    let mut bytes = sample_artifact().to_bytes();
    bytes.truncate(bytes.len() - 8);
    bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    let checksum = stco_store::fnv1a64(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    match Artifact::from_bytes(&bytes) {
        Err(StoreError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, FORMAT_VERSION + 1);
            assert_eq!(supported, FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn wrong_kind_reports_wrong_kind() {
    let artifact = sample_artifact();
    match artifact.expect_kind("other-model") {
        Err(StoreError::WrongKind { expected, found }) => {
            assert_eq!(expected, "other-model");
            assert_eq!(found, "test-model");
        }
        other => panic!("expected WrongKind, got {other:?}"),
    }
}

#[test]
fn magic_is_the_documented_constant() {
    let bytes = sample_artifact().to_bytes();
    assert_eq!(&bytes[..8], &MAGIC);
    assert_eq!(&MAGIC, b"STCOARTF");
}

#[test]
fn registry_roundtrip_hit_and_miss() {
    let dir = std::env::temp_dir().join(format!("stco-store-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Registry::open(&dir).expect("open");
    let key = ArtifactKey::from_parts("test-model", &["Cfg { n: 3 }", "Train { e: 2 }", "42"]);

    assert!(!registry.contains("test-model", key));
    assert!(registry.load("test-model", key).expect("miss").is_none());

    let artifact = sample_artifact();
    let path = registry.put(key, &artifact).expect("put");
    assert!(path.ends_with(format!("test-model-{}.stco", key.to_hex())));
    assert!(registry.contains("test-model", key));

    let back = registry
        .load("test-model", key)
        .expect("load")
        .expect("hit");
    assert_eq!(back, artifact);

    // Loading the same file under a different kind is a typed error.
    std::fs::copy(&path, registry.path_for("other-model", key)).expect("copy");
    assert!(matches!(
        registry.load("other-model", key),
        Err(StoreError::WrongKind { .. })
    ));

    // A corrupt file is an error, not a silent miss.
    let mut bytes = std::fs::read(&path).expect("read");
    bytes.truncate(bytes.len() / 2);
    std::fs::write(&path, &bytes).expect("write");
    assert!(registry.load("test-model", key).is_err());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifact_keys_separate_parts_and_kinds() {
    let k = ArtifactKey::from_parts("m", &["ab", "c"]);
    assert_ne!(k, ArtifactKey::from_parts("m", &["a", "bc"]));
    assert_ne!(k, ArtifactKey::from_parts("n", &["ab", "c"]));
    assert_eq!(k, ArtifactKey::from_parts("m", &["ab", "c"]));
    assert_eq!(k.to_hex().len(), 16);
}
