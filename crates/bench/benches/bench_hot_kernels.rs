//! Criterion micro-benches for the kernels on the characterization and
//! training hot paths: in-place GEMM variants against their
//! allocate-and-transpose equivalents, factor-once LU against
//! refactor-per-solve, and a single cell-characterization transient of
//! the kind the Liberty bisection searches replay thousands of times.

use criterion::{criterion_group, criterion_main, Criterion};
use stco_cells::encode::{encode_cell, CellGraph, EncodingContext};
use stco_cells::library::{CellKind, CellType};
use stco_compact::tech::{CornerGrid, TechnologyCard};
use stco_numerics::dense::{LuFactors, Matrix};
use stco_numerics::rng::Xorshift;
use stco_numerics::MatrixF32;
use stco_spice::analysis::TranConfig;
use stco_spice::netlist::{Circuit, Waveform};
use stco_surrogate::cell_model::{
    BatchedCellGraph, CellModel, CellModelConfig, InferencePrecision,
};
use stco_tcad::materials::Technology;

fn random_matrix(rng: &mut Xorshift, rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.uniform_in(-1.0, 1.0))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// One RelGAT layer of the 12-layer surrogate works on roughly these
/// shapes: a `[nodes × hidden]` activation against a `[hidden × hidden]`
/// head weight, with an equal-shaped upstream gradient in backward.
const GAT_NODES: usize = 64;
const GAT_HIDDEN: usize = 32;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = Xorshift::new(42);
    let x = random_matrix(&mut rng, GAT_NODES, GAT_HIDDEN);
    let w = random_matrix(&mut rng, GAT_HIDDEN, GAT_HIDDEN);
    let g = random_matrix(&mut rng, GAT_NODES, GAT_HIDDEN);

    let mut group = c.benchmark_group("gemm_gat_layer");
    group.bench_function("matmul_alloc", |b| b.iter(|| x.matmul(&w)));
    group.bench_function("gemm_into_reused", |b| {
        let mut out = Matrix::zeros(GAT_NODES, GAT_HIDDEN);
        b.iter(|| {
            out.reset_zeroed(GAT_NODES, GAT_HIDDEN);
            x.gemm_into(&w, &mut out);
        })
    });
    // MatMul backward, da = g · wᵀ.
    group.bench_function("nt_transpose_then_matmul", |b| {
        b.iter(|| g.matmul(&w.transpose()))
    });
    group.bench_function("gemm_nt_into_reused", |b| {
        let mut out = Matrix::zeros(GAT_NODES, GAT_HIDDEN);
        b.iter(|| {
            out.reset_zeroed(GAT_NODES, GAT_HIDDEN);
            g.gemm_nt_into(&w, &mut out);
        })
    });
    // MatMul backward, dw = xᵀ · g.
    group.bench_function("tn_transpose_then_matmul", |b| {
        b.iter(|| x.transpose().matmul(&g))
    });
    group.bench_function("gemm_tn_into_reused", |b| {
        let mut out = Matrix::zeros(GAT_HIDDEN, GAT_HIDDEN);
        b.iter(|| {
            out.reset_zeroed(GAT_HIDDEN, GAT_HIDDEN);
            x.gemm_tn_into(&g, &mut out);
        })
    });
    group.finish();
}

/// Blocked versus naive GEMM at the shapes the batched forward runs: a
/// 32-graph union of 64-node graphs is a `[2048 × 32]` activation
/// against `[32 × 32]` weights (DESIGN.md §15).
const BATCHED_NODES: usize = 2048;

fn bench_blocked_gemm(c: &mut Criterion) {
    let mut rng = Xorshift::new(11);
    for (label, m) in [("gat", GAT_NODES), ("batched_gat", BATCHED_NODES)] {
        let x = random_matrix(&mut rng, m, GAT_HIDDEN);
        let w = random_matrix(&mut rng, GAT_HIDDEN, GAT_HIDDEN);
        let g = random_matrix(&mut rng, m, GAT_HIDDEN);
        let mut group = c.benchmark_group(&format!("gemm_blocked_{label}"));
        group.bench_function("nn_naive", |b| {
            let mut out = Matrix::zeros(m, GAT_HIDDEN);
            b.iter(|| {
                out.reset_zeroed(m, GAT_HIDDEN);
                x.gemm_into_naive(&w, &mut out);
            })
        });
        group.bench_function("nn_blocked", |b| {
            let mut out = Matrix::zeros(m, GAT_HIDDEN);
            b.iter(|| {
                out.reset_zeroed(m, GAT_HIDDEN);
                x.gemm_into_blocked(&w, &mut out);
            })
        });
        group.bench_function("nt_naive", |b| {
            let mut out = Matrix::zeros(m, GAT_HIDDEN);
            b.iter(|| {
                out.reset_zeroed(m, GAT_HIDDEN);
                g.gemm_nt_into_naive(&w, &mut out);
            })
        });
        group.bench_function("nt_blocked", |b| {
            let mut out = Matrix::zeros(m, GAT_HIDDEN);
            b.iter(|| {
                out.reset_zeroed(m, GAT_HIDDEN);
                g.gemm_nt_into_blocked(&w, &mut out);
            })
        });
        group.bench_function("tn_naive", |b| {
            let mut out = Matrix::zeros(GAT_HIDDEN, GAT_HIDDEN);
            b.iter(|| {
                out.reset_zeroed(GAT_HIDDEN, GAT_HIDDEN);
                x.gemm_tn_into_naive(&g, &mut out);
            })
        });
        group.bench_function("tn_blocked", |b| {
            let mut out = Matrix::zeros(GAT_HIDDEN, GAT_HIDDEN);
            b.iter(|| {
                out.reset_zeroed(GAT_HIDDEN, GAT_HIDDEN);
                x.gemm_tn_into_blocked(&g, &mut out);
            })
        });
        // The f32 fast-path kernel at the same shape.
        let xf = MatrixF32::from_f64(&x);
        let wf = MatrixF32::from_f64(&w);
        group.bench_function("nn_blocked_f32", |b| {
            let mut out = MatrixF32::zeros(m, GAT_HIDDEN);
            b.iter(|| {
                out.reset_zeroed(m, GAT_HIDDEN);
                xf.gemm_into_blocked(&wf, &mut out);
            })
        });
        group.finish();
    }
}

/// Encodes one cell graph per (kind, corner) pair, cycling until `n`
/// graphs exist — the inference population the serving path batches.
fn encoded_graphs(n: usize) -> Vec<CellGraph> {
    let base = TechnologyCard::reference(Technology::Ltps);
    let corners = CornerGrid::default().corners(4);
    let kinds = [CellKind::Inv, CellKind::Nand2, CellKind::Nor2];
    let mut out = Vec::with_capacity(n);
    'outer: loop {
        for &kind in &kinds {
            let cell = CellType::by_kind(kind);
            for corner in &corners {
                if out.len() == n {
                    break 'outer;
                }
                let card = base.at_corner(*corner);
                let built = cell.build(&card, 1.0);
                let mut ctx = EncodingContext::default();
                for pin in &cell.inputs {
                    ctx.input_slew.insert((*pin).to_string(), 2.0e-9);
                    ctx.current_state.insert((*pin).to_string(), 0.0);
                    ctx.next_state.insert((*pin).to_string(), 1.0);
                }
                for pin in &cell.outputs {
                    ctx.output_load
                        .insert((*pin).to_string(), 10.0e-15 * corner.cox_scale);
                }
                out.push(encode_cell(&built, &ctx));
            }
        }
    }
    out
}

fn bench_batched_forward(c: &mut Criterion) {
    const BATCH: usize = 32;
    let graphs = encoded_graphs(BATCH);
    let refs: Vec<&CellGraph> = graphs.iter().collect();
    let metrics: Vec<usize> = vec![0, 1, 2];
    let lists: Vec<&[usize]> = (0..BATCH).map(|_| metrics.as_slice()).collect();
    let model = CellModel::new(CellModelConfig::default());

    let mut group = c.benchmark_group("batched_forward");
    group.bench_function("looped_predict_many_32", |b| {
        b.iter(|| {
            refs.iter()
                .map(|g| model.predict_many(g, &metrics))
                .collect::<Vec<_>>()
        })
    });
    group.bench_function("predict_batch_32", |b| {
        b.iter(|| {
            let batch = BatchedCellGraph::pack(&refs);
            model.predict_batch(&batch, &lists)
        })
    });
    group.bench_function("predict_batch_32_prepacked", |b| {
        let batch = BatchedCellGraph::pack(&refs);
        b.iter(|| model.predict_batch(&batch, &lists))
    });
    let mut f32_model = model.clone();
    f32_model.set_precision(InferencePrecision::F32);
    group.bench_function("predict_batch_32_f32", |b| {
        let batch = BatchedCellGraph::pack(&refs);
        b.iter(|| f32_model.predict_batch(&batch, &lists))
    });
    group.finish();
}

fn bench_lu(c: &mut Criterion) {
    // A DFF characterization bench stamps an MNA system of roughly this
    // size every Newton iteration.
    const N: usize = 24;
    let mut rng = Xorshift::new(7);
    let mut a = random_matrix(&mut rng, N, N);
    for i in 0..N {
        let off: f64 = a.row(i).iter().map(|v| v.abs()).sum();
        a.set(i, i, off + 1.0);
    }
    let b_vec: Vec<f64> = (0..N).map(|_| rng.uniform_in(-1.0, 1.0)).collect();

    let mut group = c.benchmark_group("lu_mna_24");
    group.bench_function("factor_alloc", |b| {
        b.iter(|| a.lu_factor().expect("nonsingular"))
    });
    group.bench_function("factor_into_reused", |b| {
        let mut factors = LuFactors::default();
        b.iter(|| a.lu_factor_into(&mut factors).expect("nonsingular"))
    });
    let factors = a.lu_factor().expect("nonsingular");
    group.bench_function("solve_alloc", |b| {
        b.iter(|| factors.solve(&b_vec).expect("solves"))
    });
    group.bench_function("solve_into_reused", |b| {
        let mut x = Vec::new();
        b.iter(|| factors.solve_into(&b_vec, &mut x).expect("solves"))
    });
    group.finish();
}

fn bench_charac_transient(c: &mut Criterion) {
    // A single inverter switching transient — the unit of work the
    // characterization bisection searches repeat per probe.
    let card = TechnologyCard::reference(Technology::Ltps);
    let mut ckt = Circuit::new();
    let gnd = ckt.node("0");
    let vdd = ckt.node("vdd");
    let inp = ckt.node("a");
    let out = ckt.node("y");
    ckt.add_vsource("vvdd", vdd, gnd, Waveform::Dc(card.vdd));
    ckt.add_vsource(
        "vin",
        inp,
        gnd,
        Waveform::Pulse {
            v0: 0.0,
            v1: card.vdd,
            delay: 1.0e-9,
            rise: 2.0e-9,
            fall: 2.0e-9,
            width: 20.0e-9,
            period: 0.0,
        },
    );
    ckt.add_tft("mp", out, inp, vdd, card.pfet_sized(2.0));
    ckt.add_tft("mn", out, inp, gnd, card.nfet_sized(1.0));
    ckt.add_capacitor("cload", out, gnd, 10.0e-15);
    let config = TranConfig {
        t_stop: 40.0e-9,
        dt: 0.2e-9,
    };

    let mut group = c.benchmark_group("charac");
    group.sample_size(20);
    group.bench_function("inverter_transient", |b| {
        b.iter(|| ckt.transient(&config).expect("converges"))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_blocked_gemm,
    bench_batched_forward,
    bench_lu,
    bench_charac_transient
);
criterion_main!(benches);
