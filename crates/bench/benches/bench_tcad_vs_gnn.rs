//! Criterion bench behind the paper's ">100× TCAD speedup" claim
//! (§II: 142.07 s commercial TCAD vs 1.38 s GNN): full nonlinear Poisson
//! device solves versus one RelGAT surrogate inference on the same
//! device.

use criterion::{criterion_group, criterion_main, Criterion};
use stco_nn::train::TrainConfig;
use stco_surrogate::poisson_emulator::{PoissonConfig, PoissonEmulator};
use stco_tcad::dataset::generate_dataset;
use stco_tcad::device::Bias;
use stco_tcad::materials::Technology;
use stco_tcad::poisson::solve_poisson;

fn bench_tcad_vs_gnn(c: &mut Criterion) {
    let data = generate_dataset(42, 6, &[Technology::Cnt]).expect("devices");
    let sample = data[0].clone();
    let bias = Bias {
        gate: sample.bias.gate,
        drain: sample.bias.drain,
    };

    // A small trained emulator (training cost excluded — it is the
    // paper's offline environment setup).
    let mut emulator = PoissonEmulator::new(PoissonConfig {
        depth: 2,
        heads: 1,
        head_dim: 8,
        ..PoissonConfig::default()
    });
    let (train, val) = data.split_at(5);
    emulator
        .train(
            train,
            val,
            &TrainConfig {
                epochs: 5,
                batch_size: 2,
                patience: None,
                ..TrainConfig::default()
            },
        )
        .expect("trains");

    let mut group = c.benchmark_group("tcad_vs_gnn");
    group.sample_size(10);
    group.bench_function("fem_poisson_solve", |b| {
        b.iter(|| solve_poisson(&sample.device, bias).expect("solves"))
    });
    group.bench_function("relgat_inference", |b| b.iter(|| emulator.predict(&sample)));
    group.finish();
}

criterion_group!(benches, bench_tcad_vs_gnn);
criterion_main!(benches);
