//! Criterion bench of the system-evaluation stage (the part both flows
//! share and the paper keeps on commercial tools): full mapping →
//! placement → STA → power on two design sizes, showing the runtime
//! growth that shapes Table I's speedup column.

use criterion::{criterion_group, criterion_main, Criterion};
use stco_bench::bench_char_config;
use stco_cells::liberty::Library;
use stco_compact::tech::TechnologyCard;
use stco_system::bench_gen::Benchmark;
use stco_system::ppa::{evaluate_system, map_netlist_cells, EvalConfig};
use stco_tcad::materials::Technology;

fn bench_system_eval(c: &mut Criterion) {
    let card = TechnologyCard::reference(Technology::Ltps);
    let mut group = c.benchmark_group("system_evaluation");
    group.sample_size(10);
    for bench in [Benchmark::S298, Benchmark::S1488] {
        let logic = bench.generate();
        let cells = map_netlist_cells(&logic).expect("cells");
        let library = Library::characterize_subset(&card, &bench_char_config(), &cells)
            .expect("library characterizes");
        group.bench_function(bench.name(), |b| {
            b.iter(|| evaluate_system(&logic, &library, &EvalConfig::fast()).expect("evaluates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_system_eval);
criterion_main!(benches);
