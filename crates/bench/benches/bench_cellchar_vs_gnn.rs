//! Criterion bench behind the "~1900 s → 8.88 s characterization" claim:
//! transistor-level SPICE characterization of a cell versus GCN surrogate
//! prediction of the same metrics.

use criterion::{criterion_group, criterion_main, Criterion};
use stco_bench::bench_char_config;
use stco_cells::charac::characterize;
use stco_cells::encode::{encode_cell, EncodingContext};
use stco_cells::library::{CellKind, CellType};
use stco_compact::tech::{Corner, TechnologyCard};
use stco_nn::train::TrainConfig;
use stco_surrogate::cell_model::{metric_index, CellModel, CellModelConfig};
use stco_surrogate::pipeline::build_cell_dataset;
use stco_tcad::materials::Technology;

fn bench_cellchar(c: &mut Criterion) {
    let card = TechnologyCard::reference(Technology::Ltps);
    let config = bench_char_config();
    let cell = CellType::by_kind(CellKind::Nand2);

    // Train a small GCN on two corners (offline setup, not benched).
    let cells = [CellType::by_kind(CellKind::Inv), cell.clone()];
    let samples = build_cell_dataset(
        &card,
        &[Corner::nominal(2.5), Corner::nominal(3.5)],
        &cells,
        &config,
    )
    .expect("dataset");
    let mut model = CellModel::new(CellModelConfig::default());
    model
        .train(
            &samples,
            &[],
            &TrainConfig {
                epochs: 10,
                batch_size: 16,
                patience: None,
                ..TrainConfig::default()
            },
        )
        .expect("trains");

    let built = cell.build(&card, 1.0);
    let mut ctx = EncodingContext::default();
    for pin in &cell.inputs {
        ctx.input_slew.insert((*pin).to_string(), 2.0e-9);
        ctx.current_state.insert((*pin).to_string(), 0.0);
        ctx.next_state.insert((*pin).to_string(), 1.0);
    }
    ctx.output_load.insert("Y".to_string(), 10.0e-15);
    let graph = encode_cell(&built, &ctx);
    let m_delay = metric_index("delay").expect("known");

    let mut group = c.benchmark_group("cellchar_vs_gnn");
    group.sample_size(10);
    group.bench_function("spice_characterize_nand2", |b| {
        b.iter(|| characterize(&cell, &card, &config).expect("characterizes"))
    });
    group.bench_function("gcn_predict_delay", |b| {
        b.iter(|| model.predict(&graph, m_delay))
    });
    group.finish();
}

criterion_group!(benches, bench_cellchar);
criterion_main!(benches);
