//! Shared helpers for the table/figure regenerator binaries and the
//! Criterion benches.
//!
//! Every binary honours a `STCO_SCALE` environment variable:
//! `STCO_SCALE=paper` runs closer to paper scale (slow), anything else
//! (or unset) runs the scaled-down defaults documented in EXPERIMENTS.md.

use std::path::PathBuf;

use stco_cells::charac::CharConfig;
use stco_obs::{JsonlSink, Profile, Recorder, RingBufferHandle, RingBufferSink};

/// Whether the expensive "paper-scale" mode was requested.
pub fn paper_scale() -> bool {
    std::env::var("STCO_SCALE")
        .map(|v| v == "paper")
        .unwrap_or(false)
}

/// Whether `--trace` was passed on the command line.
pub fn trace_flag() -> bool {
    std::env::args().any(|a| a == "--trace")
}

/// Whether `--no-cache` was passed on the command line (forces a full
/// retrain even when the artifact registry holds a matching model).
pub fn no_cache_flag() -> bool {
    std::env::args().any(|a| a == "--no-cache")
}

/// The artifact registry the bench binaries cache trained models in:
/// `$STCO_STORE_DIR` (default `.stco-store`), or `None` with
/// `--no-cache`. A registry that cannot be opened degrades to `None`
/// with a warning rather than failing the bench.
pub fn artifact_registry() -> Option<stco_store::Registry> {
    if no_cache_flag() {
        // stco-check: allow(no-print, user-facing bench harness status)
        println!("artifact cache disabled (--no-cache)");
        return None;
    }
    match stco_store::Registry::open_default() {
        Ok(reg) => {
            // stco-check: allow(no-print, user-facing bench harness status)
            println!("artifact cache: {}", reg.dir().display());
            Some(reg)
        }
        Err(e) => {
            // stco-check: allow(no-print, user-facing bench harness warning)
            eprintln!("warning: artifact cache unavailable ({e}); retraining");
            None
        }
    }
}

/// Reads the global cache hit/miss counters (registered by
/// `stco_store::Registry`), for before/after deltas around a cached
/// stage.
pub fn cache_counters() -> (u64, u64) {
    let metrics = stco_obs::Recorder::global().metrics();
    (
        metrics.counter("store.cache_hit").get(),
        metrics.counter("store.cache_miss").get(),
    )
}

/// Prints the hit/miss delta since `before` (from [`cache_counters`]).
pub fn report_cache_delta(label: &str, before: (u64, u64)) {
    let (hit, miss) = cache_counters();
    // stco-check: allow(no-print, user-facing bench harness status)
    println!(
        "{label}: artifact cache {} hit(s), {} miss(es)",
        hit - before.0,
        miss - before.1
    );
}

/// A live tracing session for a bench binary: a JSONL sink streaming to
/// `results/trace_<bin>.jsonl` plus an in-memory ring buffer the binary
/// can fold into [`Profile`]s.
pub struct TraceSession {
    handle: RingBufferHandle,
    path: PathBuf,
}

impl TraceSession {
    /// Starts tracing if `--trace` is on the command line; returns
    /// `None` (recording stays disabled, near-zero overhead) otherwise.
    pub fn start(bin: &str) -> Option<TraceSession> {
        if !trace_flag() {
            return None;
        }
        let path = PathBuf::from(format!("results/trace_{bin}.jsonl"));
        let recorder = Recorder::global();
        recorder.clear_sinks();
        let jsonl = JsonlSink::create(&path).expect("trace file under results/");
        // Large enough that a full bench run never evicts (records are
        // dominated by per-Newton-iteration and per-epoch events).
        let (ring, handle) = RingBufferSink::with_capacity(1 << 21);
        recorder.add_sink(Box::new(jsonl));
        recorder.add_sink(Box::new(ring));
        Some(TraceSession { handle, path })
    }

    /// Number of records captured so far — use as a mark, then fold
    /// `records_since(mark)` to profile one section of the run.
    pub fn mark(&self) -> usize {
        self.handle.len()
    }

    /// Folds the records captured since `mark` into a profile.
    pub fn profile_since(&self, mark: usize) -> Profile {
        let records = self.handle.records();
        Profile::from_records(&records[mark.min(records.len())..])
    }

    /// Ends the session: uninstalls the sinks (flushing the JSONL file)
    /// and returns the full-run profile plus the trace path.
    pub fn finish(self) -> (Profile, PathBuf) {
        let recorder = Recorder::global();
        recorder.clear_sinks();
        let dropped = self.handle.dropped();
        if dropped > 0 {
            // stco-check: allow(no-print, user-facing warning from the bench harness itself)
            eprintln!("warning: trace ring buffer evicted {dropped} records");
        }
        let profile = Profile::from_records(&self.handle.records());
        (profile, self.path)
    }
}

/// The characterization grid used by the benches (2×2; paper grids are
/// denser but the NLDM structure is identical).
pub fn bench_char_config() -> CharConfig {
    CharConfig {
        slews: vec![2.0e-9, 8.0e-9],
        loads: vec![5.0e-15, 20.0e-15],
        samples: 200,
        max_leakage_states: 2,
    }
}

/// Prints a horizontal rule with a title.
pub fn banner(title: &str) {
    // stco-check: allow(no-print, bench table output is this helper's purpose)
    println!("\n=== {title} ===");
}

/// Formats seconds in engineering style.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(0.0025), "2.50 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.50 us");
    }

    #[test]
    fn bench_grid_is_square() {
        let c = bench_char_config();
        assert_eq!(c.slews.len(), 2);
        assert_eq!(c.loads.len(), 2);
    }
}
