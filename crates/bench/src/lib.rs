//! Shared helpers for the table/figure regenerator binaries and the
//! Criterion benches.
//!
//! Every binary honours a `STCO_SCALE` environment variable:
//! `STCO_SCALE=paper` runs closer to paper scale (slow), anything else
//! (or unset) runs the scaled-down defaults documented in EXPERIMENTS.md.

use std::path::PathBuf;

use stco_cells::charac::CharConfig;
use stco_obs::{JsonlSink, Profile, Recorder, RingBufferHandle, RingBufferSink};

/// Whether the expensive "paper-scale" mode was requested.
pub fn paper_scale() -> bool {
    std::env::var("STCO_SCALE")
        .map(|v| v == "paper")
        .unwrap_or(false)
}

/// Whether `--trace` was passed on the command line.
pub fn trace_flag() -> bool {
    std::env::args().any(|a| a == "--trace")
}

/// Whether `--no-cache` was passed on the command line (forces a full
/// retrain even when the artifact registry holds a matching model).
pub fn no_cache_flag() -> bool {
    std::env::args().any(|a| a == "--no-cache")
}

/// The artifact registry the bench binaries cache trained models in:
/// `$STCO_STORE_DIR` (default `.stco-store`), or `None` with
/// `--no-cache`. A registry that cannot be opened degrades to `None`
/// with a warning rather than failing the bench.
pub fn artifact_registry() -> Option<stco_store::Registry> {
    if no_cache_flag() {
        // stco-check: allow(no-print, user-facing bench harness status)
        println!("artifact cache disabled (--no-cache)");
        return None;
    }
    match stco_store::Registry::open_default() {
        Ok(reg) => {
            // stco-check: allow(no-print, user-facing bench harness status)
            println!("artifact cache: {}", reg.dir().display());
            Some(reg)
        }
        Err(e) => {
            // stco-check: allow(no-print, user-facing bench harness warning)
            eprintln!("warning: artifact cache unavailable ({e}); retraining");
            None
        }
    }
}

/// Reads the global cache hit/miss counters (registered by
/// `stco_store::Registry`), for before/after deltas around a cached
/// stage.
pub fn cache_counters() -> (u64, u64) {
    let metrics = stco_obs::Recorder::global().metrics();
    (
        metrics.counter("store.cache_hit").get(),
        metrics.counter("store.cache_miss").get(),
    )
}

/// Prints the hit/miss delta since `before` (from [`cache_counters`]).
pub fn report_cache_delta(label: &str, before: (u64, u64)) {
    let (hit, miss) = cache_counters();
    // stco-check: allow(no-print, user-facing bench harness status)
    println!(
        "{label}: artifact cache {} hit(s), {} miss(es)",
        hit - before.0,
        miss - before.1
    );
}

/// A live tracing session for a bench binary: a JSONL sink streaming to
/// `results/trace_<bin>.jsonl` plus an in-memory ring buffer the binary
/// can fold into [`Profile`]s.
pub struct TraceSession {
    handle: RingBufferHandle,
    path: PathBuf,
}

impl TraceSession {
    /// Starts tracing if `--trace` is on the command line; returns
    /// `None` (recording stays disabled, near-zero overhead) otherwise.
    pub fn start(bin: &str) -> Option<TraceSession> {
        if !trace_flag() {
            return None;
        }
        let path = PathBuf::from(format!("results/trace_{bin}.jsonl"));
        let recorder = Recorder::global();
        recorder.clear_sinks();
        let jsonl = JsonlSink::create(&path).expect("trace file under results/");
        // Large enough that a full bench run never evicts (records are
        // dominated by per-Newton-iteration and per-epoch events).
        let (ring, handle) = RingBufferSink::with_capacity(1 << 21);
        recorder.add_sink(Box::new(jsonl));
        recorder.add_sink(Box::new(ring));
        Some(TraceSession { handle, path })
    }

    /// Number of records captured so far — use as a mark, then fold
    /// `records_since(mark)` to profile one section of the run.
    pub fn mark(&self) -> usize {
        self.handle.len()
    }

    /// Folds the records captured since `mark` into a profile.
    pub fn profile_since(&self, mark: usize) -> Profile {
        let records = self.handle.records();
        Profile::from_records(&records[mark.min(records.len())..])
    }

    /// Ends the session: uninstalls the sinks (flushing the JSONL file)
    /// and returns the full-run profile plus the trace path.
    pub fn finish(self) -> (Profile, PathBuf) {
        let recorder = Recorder::global();
        recorder.clear_sinks();
        let dropped = self.handle.dropped();
        if dropped > 0 {
            // stco-check: allow(no-print, user-facing warning from the bench harness itself)
            eprintln!("warning: trace ring buffer evicted {dropped} records");
        }
        let profile = Profile::from_records(&self.handle.records());
        (profile, self.path)
    }
}

/// The characterization grid used by the benches (2×2; paper grids are
/// denser but the NLDM structure is identical).
pub fn bench_char_config() -> CharConfig {
    CharConfig {
        slews: vec![2.0e-9, 8.0e-9],
        loads: vec![5.0e-15, 20.0e-15],
        samples: 200,
        max_leakage_states: 2,
    }
}

/// Prints a horizontal rule with a title.
pub fn banner(title: &str) {
    // stco-check: allow(no-print, bench table output is this helper's purpose)
    println!("\n=== {title} ===");
}

/// Formats seconds in engineering style.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} us", s * 1e6)
    }
}

/// Validates a `BENCH_serving.json` document against the
/// `stco-serving-curve/v2` schema emitted by
/// [`stco_serve::loadgen::sweep_to_json`]: required top-level fields
/// (including the worker shard count), at least `min_steps` sweep
/// steps with strictly increasing concurrency, and internally
/// consistent per-step latencies (`p50 <= p99`, non-negative rates
/// and shed counts). CI calls this against the file the serving smoke
/// wrote; the smoke itself calls it before writing.
///
/// # Errors
///
/// A human-readable description of the first schema violation.
pub fn validate_serving_curve(
    doc: &stco_obs::json::JsonValue,
    min_steps: usize,
) -> Result<(), String> {
    use stco_obs::json::JsonValue;

    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema field")?;
    if schema != "stco-serving-curve/v2" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let threads = doc
        .get("threads")
        .and_then(JsonValue::as_u64)
        .ok_or("missing threads field")?;
    if threads == 0 {
        return Err("threads must be at least 1".to_string());
    }
    let shards = doc
        .get("shards")
        .and_then(JsonValue::as_u64)
        .ok_or("missing shards field")?;
    if shards == 0 {
        return Err("shards must be at least 1".to_string());
    }
    match doc.get("bitwise_identical") {
        Some(JsonValue::Bool(_)) => {}
        _ => return Err("missing bitwise_identical boolean".to_string()),
    }
    let Some(JsonValue::Arr(steps)) = doc.get("steps") else {
        return Err("missing steps array".to_string());
    };
    if steps.len() < min_steps {
        return Err(format!(
            "sweep has {} steps, need at least {min_steps}",
            steps.len()
        ));
    }
    let mut prev_concurrency = 0u64;
    for (i, step) in steps.iter().enumerate() {
        let num = |key: &str| -> Result<f64, String> {
            step.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("step {i}: missing numeric {key}"))
        };
        let concurrency = step
            .get("concurrency")
            .and_then(JsonValue::as_u64)
            .ok_or(format!("step {i}: missing concurrency"))?;
        if concurrency <= prev_concurrency {
            return Err(format!(
                "step {i}: concurrency {concurrency} must increase (previous {prev_concurrency})"
            ));
        }
        prev_concurrency = concurrency;
        let wall = num("wall_seconds")?;
        if wall <= 0.0 {
            return Err(format!("step {i}: wall_seconds must be positive"));
        }
        for key in [
            "ok",
            "errors",
            "shed",
            "offered_rps",
            "achieved_rps",
            "client_mean_seconds",
        ] {
            if num(key)? < 0.0 {
                return Err(format!("step {i}: {key} must be non-negative"));
            }
        }
        let p50 = num("client_p50_seconds")?;
        let p99 = num("client_p99_seconds")?;
        if p50 < 0.0 || p99 < p50 {
            return Err(format!(
                "step {i}: client quantiles inconsistent (p50 {p50}, p99 {p99})"
            ));
        }
        match step.get("server_window_p99_seconds") {
            Some(JsonValue::Null | JsonValue::Num(_)) => {}
            _ => {
                return Err(format!(
                    "step {i}: server_window_p99_seconds must be a number or null"
                ))
            }
        }
    }
    Ok(())
}

/// Schema check of a `BENCH_sweep.json` document (`stco-sweep/v1`) —
/// CI's sweep-smoke gate calls this against the file the smoke wrote;
/// the smoke itself calls it before writing.
///
/// The hard gates: a resumed sweep recomputed **zero** scenarios and
/// reproduced the front **bitwise** (locally and over the wire), and
/// the GP-lite BayesOpt explorer reached the reference front in fewer
/// unique evaluations than ε-greedy.
///
/// # Errors
///
/// A human-readable description of the first schema violation.
pub fn validate_sweep_bench(doc: &stco_obs::json::JsonValue) -> Result<(), String> {
    use stco_obs::json::JsonValue;

    let schema = doc
        .get("schema")
        .and_then(JsonValue::as_str)
        .ok_or("missing schema field")?;
    if schema != "stco-sweep/v1" {
        return Err(format!("unexpected schema {schema:?}"));
    }
    let threads = doc
        .get("threads")
        .and_then(JsonValue::as_u64)
        .ok_or("missing threads field")?;
    if threads == 0 {
        return Err("threads must be at least 1".to_string());
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(JsonValue::as_u64)
        .ok_or("missing scenarios field")?;
    if scenarios == 0 {
        return Err("scenarios must be positive".to_string());
    }
    let rate = doc
        .get("scenarios_per_sec")
        .and_then(JsonValue::as_f64)
        .ok_or("missing scenarios_per_sec field")?;
    // NaN must be rejected too, hence the finite check first.
    if !rate.is_finite() || rate <= 0.0 {
        return Err(format!("scenarios_per_sec must be positive (got {rate})"));
    }

    let bitwise = |section: &JsonValue, name: &str| -> Result<(), String> {
        match section.get("front_bitwise_identical") {
            Some(JsonValue::Bool(true)) => Ok(()),
            Some(JsonValue::Bool(false)) => {
                Err(format!("{name}: front_bitwise_identical is false"))
            }
            _ => Err(format!("{name}: missing front_bitwise_identical boolean")),
        }
    };

    let resume = doc.get("resume").ok_or("missing resume section")?;
    let recomputed = resume
        .get("recomputed")
        .and_then(JsonValue::as_u64)
        .ok_or("resume: missing recomputed field")?;
    if recomputed != 0 {
        return Err(format!(
            "resume: recomputed must be 0, got {recomputed} (the journal failed its job)"
        ));
    }
    let resumed = resume
        .get("resumed")
        .and_then(JsonValue::as_u64)
        .ok_or("resume: missing resumed field")?;
    if resumed == 0 {
        return Err(
            "resume: resumed must be positive (nothing was journaled before the kill)".to_string(),
        );
    }
    bitwise(resume, "resume")?;

    let remote = doc.get("remote").ok_or("missing remote section")?;
    let workers = remote
        .get("workers")
        .and_then(JsonValue::as_u64)
        .ok_or("remote: missing workers field")?;
    if workers < 2 {
        return Err(format!("remote: need at least 2 workers, got {workers}"));
    }
    bitwise(remote, "remote")?;

    let ablation = doc.get("ablation").ok_or("missing ablation section")?;
    let Some(JsonValue::Arr(cells)) = ablation.get("cells") else {
        return Err("ablation: missing cells array".to_string());
    };
    if cells.is_empty() {
        return Err("ablation: needs at least one cell".to_string());
    }
    let eps = ablation
        .get("epsilon_greedy_samples")
        .and_then(JsonValue::as_u64)
        .ok_or("ablation: missing epsilon_greedy_samples")?;
    let bayes = ablation
        .get("bayesopt_samples")
        .and_then(JsonValue::as_u64)
        .ok_or("ablation: missing bayesopt_samples")?;
    if bayes >= eps {
        return Err(format!(
            "ablation: BayesOpt must reach the front in fewer samples than ε-greedy \
             (bayesopt {bayes} >= epsilon-greedy {eps})"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(0.0025), "2.50 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.50 us");
    }

    #[test]
    fn bench_grid_is_square() {
        let c = bench_char_config();
        assert_eq!(c.slews.len(), 2);
        assert_eq!(c.loads.len(), 2);
    }

    fn demo_curve(step_count: usize) -> stco_obs::json::JsonValue {
        let steps: Vec<stco_serve::LoadStep> = (0..step_count)
            .map(|i| stco_serve::LoadStep {
                concurrency: 4 << i,
                ok: 64,
                errors: 0,
                shed: 0,
                wall_seconds: 0.25,
                offered_rps: 300.0,
                achieved_rps: 256.0,
                client_p50_seconds: 0.010,
                client_p99_seconds: 0.045,
                client_mean_seconds: 0.014,
                server_window_p99_seconds: Some(0.040),
            })
            .collect();
        stco_serve::loadgen::sweep_to_json(4, 2, true, &steps)
    }

    #[test]
    fn serving_curve_schema_accepts_valid_sweep() {
        let doc = demo_curve(5);
        assert_eq!(validate_serving_curve(&doc, 5), Ok(()));
        // And survives a render/parse roundtrip, as CI reads the file.
        let reparsed = stco_obs::json::JsonValue::parse(&doc.render()).expect("reparse");
        assert_eq!(validate_serving_curve(&reparsed, 5), Ok(()));
    }

    #[test]
    fn serving_curve_schema_rejects_short_and_malformed_sweeps() {
        let err = validate_serving_curve(&demo_curve(3), 5).expect_err("too short");
        assert!(err.contains("at least 5"), "{err}");

        let err = validate_serving_curve(&stco_obs::json::JsonValue::Obj(vec![]), 1)
            .expect_err("missing schema");
        assert!(err.contains("schema"), "{err}");

        // p99 below p50 must be rejected.
        let mut steps = vec![stco_serve::LoadStep {
            concurrency: 4,
            ok: 1,
            errors: 0,
            shed: 0,
            wall_seconds: 0.1,
            offered_rps: 1.0,
            achieved_rps: 1.0,
            client_p50_seconds: 0.5,
            client_p99_seconds: 0.1,
            client_mean_seconds: 0.5,
            server_window_p99_seconds: None,
        }];
        let doc = stco_serve::loadgen::sweep_to_json(1, 1, true, &steps);
        let err = validate_serving_curve(&doc, 1).expect_err("inconsistent quantiles");
        assert!(err.contains("quantiles"), "{err}");

        // Non-increasing concurrency must be rejected.
        steps[0].client_p99_seconds = 1.0;
        steps.push(steps[0].clone());
        let doc = stco_serve::loadgen::sweep_to_json(1, 1, true, &steps);
        let err = validate_serving_curve(&doc, 1).expect_err("flat concurrency");
        assert!(err.contains("concurrency"), "{err}");
    }

    fn demo_sweep_doc() -> stco_obs::json::JsonValue {
        use stco_obs::json::JsonValue;
        let obj = |pairs: Vec<(&str, JsonValue)>| {
            JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let cell = obj(vec![
            ("technology", JsonValue::Str("cnt".to_string())),
            ("benchmark", JsonValue::Str("s298".to_string())),
            ("epsilon_samples", JsonValue::Num(40.0)),
            ("bayes_samples", JsonValue::Num(12.0)),
        ]);
        obj(vec![
            ("schema", JsonValue::Str("stco-sweep/v1".to_string())),
            ("threads", JsonValue::Num(4.0)),
            ("scenarios", JsonValue::Num(16.0)),
            ("scenarios_per_sec", JsonValue::Num(2.5)),
            (
                "resume",
                obj(vec![
                    ("executed_before_kill", JsonValue::Num(7.0)),
                    ("resumed", JsonValue::Num(7.0)),
                    ("executed_after", JsonValue::Num(9.0)),
                    ("recomputed", JsonValue::Num(0.0)),
                    ("front_bitwise_identical", JsonValue::Bool(true)),
                ]),
            ),
            (
                "remote",
                obj(vec![
                    ("workers", JsonValue::Num(2.0)),
                    ("completed", JsonValue::Num(54.0)),
                    ("front_bitwise_identical", JsonValue::Bool(true)),
                ]),
            ),
            (
                "ablation",
                obj(vec![
                    ("levels", JsonValue::Num(5.0)),
                    ("cells", JsonValue::Arr(vec![cell])),
                    ("epsilon_greedy_samples", JsonValue::Num(40.0)),
                    ("bayesopt_samples", JsonValue::Num(12.0)),
                ]),
            ),
        ])
    }

    /// Replaces `path` in the demo doc; returns false when the path is
    /// absent so callers can assert it (a renamed field then breaks the
    /// test instead of silently validating the unmodified doc).
    fn set_field(
        doc: &mut stco_obs::json::JsonValue,
        path: &[&str],
        v: stco_obs::json::JsonValue,
    ) -> bool {
        let stco_obs::json::JsonValue::Obj(pairs) = doc else {
            return false;
        };
        let Some((key, rest)) = path.split_first() else {
            return false;
        };
        let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key).map(|(_, s)| s) else {
            return false;
        };
        if rest.is_empty() {
            *slot = v;
            true
        } else {
            set_field(slot, rest, v)
        }
    }

    #[test]
    fn sweep_bench_schema_accepts_valid_doc() -> stco_obs::Result<()> {
        let doc = demo_sweep_doc();
        assert_eq!(validate_sweep_bench(&doc), Ok(()));
        // And survives a render/parse roundtrip, as CI reads the file.
        let reparsed = stco_obs::json::JsonValue::parse(&doc.render())?;
        assert_eq!(validate_sweep_bench(&reparsed), Ok(()));
        Ok(())
    }

    #[test]
    fn sweep_bench_schema_rejects_broken_gates() {
        use stco_obs::json::JsonValue;

        let err = validate_sweep_bench(&JsonValue::Obj(vec![])).expect_err("missing schema");
        assert!(err.contains("schema"), "{err}");

        // A resumed run that recomputed anything fails the journal gate.
        let mut doc = demo_sweep_doc();
        assert!(set_field(
            &mut doc,
            &["resume", "recomputed"],
            JsonValue::Num(3.0)
        ));
        let err = validate_sweep_bench(&doc).expect_err("recompute");
        assert!(err.contains("recomputed"), "{err}");

        // A non-bitwise remote front fails.
        let mut doc = demo_sweep_doc();
        assert!(set_field(
            &mut doc,
            &["remote", "front_bitwise_identical"],
            JsonValue::Bool(false),
        ));
        let err = validate_sweep_bench(&doc).expect_err("remote drift");
        assert!(err.contains("remote"), "{err}");

        // BayesOpt must beat ε-greedy on samples-to-front.
        let mut doc = demo_sweep_doc();
        assert!(set_field(
            &mut doc,
            &["ablation", "bayesopt_samples"],
            JsonValue::Num(40.0),
        ));
        let err = validate_sweep_bench(&doc).expect_err("ablation tie");
        assert!(err.contains("fewer samples"), "{err}");

        // An empty ablation is no evidence at all.
        let mut doc = demo_sweep_doc();
        assert!(set_field(
            &mut doc,
            &["ablation", "cells"],
            JsonValue::Arr(vec![])
        ));
        let err = validate_sweep_bench(&doc).expect_err("empty cells");
        assert!(err.contains("cell"), "{err}");
    }
}
