//! Shared helpers for the table/figure regenerator binaries and the
//! Criterion benches.
//!
//! Every binary honours a `STCO_SCALE` environment variable:
//! `STCO_SCALE=paper` runs closer to paper scale (slow), anything else
//! (or unset) runs the scaled-down defaults documented in EXPERIMENTS.md.

use stco_cells::charac::CharConfig;

/// Whether the expensive "paper-scale" mode was requested.
pub fn paper_scale() -> bool {
    std::env::var("STCO_SCALE").map(|v| v == "paper").unwrap_or(false)
}

/// The characterization grid used by the benches (2×2; paper grids are
/// denser but the NLDM structure is identical).
pub fn bench_char_config() -> CharConfig {
    CharConfig {
        slews: vec![2.0e-9, 8.0e-9],
        loads: vec![5.0e-15, 20.0e-15],
        samples: 200,
        max_leakage_states: 2,
    }
}

/// Prints a horizontal rule with a title.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Formats seconds in engineering style.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} us", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(2.5), "2.50 s");
        assert_eq!(fmt_seconds(0.0025), "2.50 ms");
        assert_eq!(fmt_seconds(2.5e-6), "2.50 us");
    }

    #[test]
    fn bench_grid_is_square() {
        let c = bench_char_config();
        assert_eq!(c.slews.len(), 2);
        assert_eq!(c.loads.len(), 2);
    }
}
