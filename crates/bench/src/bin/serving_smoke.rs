//! CI serving-smoke gate: exercises the full artifact → registry →
//! TCP serving path under concurrent batched load and proves the
//! replies are bitwise-identical to in-process `predict_many`.
//!
//! 1. trains the tiny demo cell model and exports it to a scratch
//!    registry;
//! 2. starts a `ModelService` + `TcpServer` on an ephemeral port;
//! 3. fires 64 concurrent predict requests (one TCP connection each)
//!    and asserts every reply bitwise-matches the in-process
//!    prediction;
//! 4. probes the `metrics` op: the JSON snapshot must carry the serve
//!    histograms and the Prometheus text must parse as exposition
//!    lines;
//! 5. runs the closed-loop latency-curve sweep (concurrency 4→512 via
//!    `stco_serve::loadgen`, per-connection request scaling + warmup so
//!    every step measures steady state), cross-checks the server's
//!    rolling-window p99 against the exact client-side p99 (tolerance
//!    below), and writes the `stco-serving-curve/v2` document to
//!    `BENCH_serving.json` after validating it with
//!    `stco_bench::validate_serving_curve`.
//!
//! Honours `STCO_SHARDS` (via `BatchConfig::default()`): CI's
//! multi-shard leg runs the whole gate — bitwise phase included —
//! against ≥ 2 worker shards, plus a drain/resume wire probe.
//!
//! **p99 tolerance.** The server quantile interpolates inside
//! histogram buckets over the rolling window (every request since the
//! window opened, all concurrency levels mixed) and times only the
//! service's enqueue→reply span; the client quantile is an exact order
//! statistic per step and includes TCP framing. The gate therefore
//! only requires the two to agree within a factor of 4 or 2 ms,
//! whichever is looser — see DESIGN.md §13.
//!
//! Honours `STCO_THREADS` like every other parallel path, so CI runs
//! it at 1 and 4 threads.
//!
//! **`STCO_PRECISION=f32`.** The server process (this process) loads
//! artifacts through `precision_from_env()`, so setting the variable
//! switches the *served* model to the narrowed-weight f32 fast path
//! while the in-process reference model here stays f64. Phase 3 then
//! validates the precision contract end-to-end over TCP: every reply
//! must land within `F32_REL_ERROR_BOUND` of the f64 prediction
//! instead of bitwise-matching it, and the serving-curve document is
//! written with `bitwise_identical: false`.

use std::time::Instant;

use stco_obs::json::JsonValue;
use stco_par::ParConfig;
use stco_serve::demo::{demo_graph, demo_key, train_demo_model, DEMO_CELLS};
use stco_serve::loadgen::{run_sweep, sweep_to_json, SweepConfig};
use stco_serve::service::{BatchConfig, ModelService, PredictInput};
use stco_serve::{Client, TcpServer};
use stco_store::Registry;
use stco_surrogate::cell_model::{CellModel, F32_REL_ERROR_BOUND, METRICS};

const CONCURRENT_REQUESTS: usize = 64;
const SWEEP_STEPS: [usize; 8] = [4, 8, 16, 32, 64, 128, 256, 512];
const SWEEP_REQUESTS_PER_CONN: usize = 32;
const SWEEP_WARMUP_PER_CONN: usize = 8;

/// Mirrors the serve-side `precision_from_env()`: the served model and
/// this gate must agree on the mode from the same variable.
fn f32_mode() -> bool {
    std::env::var("STCO_PRECISION").is_ok_and(|v| v.trim().eq_ignore_ascii_case("f32"))
}

fn main() {
    let t_total = Instant::now();
    let f32_mode = f32_mode();

    // 1. Train and export into a scratch registry (unless STCO_STORE_DIR
    // points somewhere explicit, which CI uses to keep runs hermetic).
    let dir = std::env::var("STCO_STORE_DIR").map_or_else(
        |_| std::env::temp_dir().join(format!("stco-serving-smoke-{}", std::process::id())),
        std::path::PathBuf::from,
    );
    let registry = Registry::open(&dir).expect("open registry");
    let key = demo_key();
    let model = train_demo_model().expect("train demo model");
    registry
        .put(key, &model.to_artifact())
        .expect("export artifact");
    println!("exported demo model to {}", dir.display());

    // 2. Serve it (BatchConfig::default() resolves STCO_SHARDS).
    let service = ModelService::start(Some(registry), BatchConfig::default());
    let shard_count = service.shard_count();
    let server = TcpServer::start("127.0.0.1:0", service).expect("bind server");
    let addr = server.addr().to_string();
    let (model_id, model_shard) = {
        let mut admin = Client::connect(&addr).expect("connect admin client");
        admin
            .load_with_shard(CellModel::ARTIFACT_KIND, key)
            .expect("load artifact")
    };
    println!(
        "serving {model_id} on {addr} (STCO_THREADS={}, shards={shard_count}, \
         model shard {model_shard}, precision={})",
        ParConfig::current().threads,
        if f32_mode { "f32" } else { "f64" }
    );

    // 3. 64 concurrent requests; every request's expected reply is the
    // in-process f64 prediction for the same input. In the default mode
    // replies must match it bitwise; under STCO_PRECISION=f32 the served
    // model runs the narrowed fast path, so replies must instead land
    // within F32_REL_ERROR_BOUND of the f64 reference.
    let all_metrics: Vec<usize> = (0..METRICS.len()).collect();
    let requests: Vec<(PredictInput, Vec<f64>)> = (0..CONCURRENT_REQUESTS)
        .map(|i| {
            let kind = DEMO_CELLS[i % DEMO_CELLS.len()];
            let metrics: Vec<usize> = match i % 3 {
                0 => all_metrics.clone(),
                1 => vec![0],
                _ => vec![2, 5, 8],
            };
            let graph = demo_graph(kind);
            let expected = model.predict_many(&graph, &metrics);
            (PredictInput::Cell { graph, metrics }, expected)
        })
        .collect();

    let mismatches: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|(input, expected)| {
                let addr = addr.clone();
                let model_id = model_id.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let got = client
                        .predict(&model_id, input, Some(10_000))
                        .expect("predict");
                    if got.len() != expected.len() {
                        return 1usize;
                    }
                    let ok = got.iter().zip(expected).all(|(g, e)| {
                        if f32_mode {
                            ((g - e) / e).abs() <= F32_REL_ERROR_BOUND
                        } else {
                            g.to_bits() == e.to_bits()
                        }
                    });
                    usize::from(!ok)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join")).sum()
    });
    if f32_mode {
        assert_eq!(
            mismatches, 0,
            "{mismatches}/{CONCURRENT_REQUESTS} f32 TCP replies exceeded the \
             {F32_REL_ERROR_BOUND:e} relative-error bound vs in-process f64 predict_many"
        );
        println!(
            "all {CONCURRENT_REQUESTS} concurrent f32 replies within {F32_REL_ERROR_BOUND:e} \
             of in-process f64 predict_many"
        );
    } else {
        assert_eq!(
            mismatches, 0,
            "{mismatches}/{CONCURRENT_REQUESTS} TCP replies differed from in-process predict_many"
        );
        println!(
            "all {CONCURRENT_REQUESTS} concurrent replies bitwise-match in-process predict_many"
        );
    }

    // 4. The metrics op must expose the serve telemetry in both
    // renderings, and stats must carry the moving counters + slow log.
    let mut admin = Client::connect(&addr).expect("connect admin client");
    let stats = admin.stats().expect("stats");
    assert!(
        stats.requests >= CONCURRENT_REQUESTS as u64,
        "request counter must cover the bitwise phase: {stats:?}"
    );
    assert!(
        !stats.slow_requests.is_empty(),
        "slow-request log must have entries after {CONCURRENT_REQUESTS} requests"
    );
    let (snapshot, text) = admin.metrics().expect("metrics");
    let JsonValue::Arr(entries) = snapshot.get("metrics").expect("metrics array") else {
        panic!("metrics snapshot must hold an array");
    };
    let names: Vec<&str> = entries
        .iter()
        .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
        .collect();
    for required in [
        "serve.batch_size",
        "serve.latency_seconds",
        "serve.queue_depth",
        "serve.queue_wait_seconds",
        "serve.requests",
        // cache_miss only appears once a miss happens; the load above
        // guarantees at least the hit counter exists.
        "store.cache_hit",
    ] {
        assert!(
            names.contains(&required),
            "metrics snapshot must include {required}, got {names:?}"
        );
    }
    for series in [
        "# TYPE serve_latency_seconds summary",
        "serve_latency_seconds_count",
        "serve_batch_size_bucket",
        "serve_requests",
    ] {
        assert!(
            text.contains(series),
            "Prometheus text must carry {series:?}"
        );
    }
    println!(
        "metrics op ok: {} snapshot entries, {} exposition lines",
        entries.len(),
        text.lines().count()
    );
    assert_eq!(
        stats.shards, shard_count,
        "stats must report the resolved shard count"
    );
    assert_eq!(
        stats.shard_queue_depths.len(),
        shard_count,
        "stats must carry one queue depth per shard"
    );

    // 4b. Multi-shard leg only: drain/resume roundtrip over the wire.
    // A drained shard must refuse predicts with the typed "draining"
    // code and accept them again after resume.
    if shard_count > 1 {
        let target = shard_count - 1;
        admin.drain(target).expect("drain shard over the wire");
        admin.resume(target).expect("resume shard over the wire");
        println!("drain/resume probe ok on shard {target}");
    }

    // 5. Latency-curve sweep + BENCH_serving.json. Requests scale with
    // concurrency (per-connection count + warmup) so every step
    // measures a steady-state window of comparable duration.
    let sweep = SweepConfig {
        addr: addr.clone(),
        model: model_id.clone(),
        inputs: requests.iter().map(|(input, _)| input.clone()).collect(),
        steps: SWEEP_STEPS.to_vec(),
        requests_per_conn: SWEEP_REQUESTS_PER_CONN,
        warmup_per_conn: SWEEP_WARMUP_PER_CONN,
        deadline_ms: Some(10_000),
    };
    let steps = run_sweep(&sweep).expect("load sweep");
    let mut client_max_p99 = 0.0f64;
    for step in &steps {
        println!(
            "concurrency {:>3}: achieved {:>7.0} req/s (offered {:>7.0}), \
             client p50 {:.3} ms / p99 {:.3} ms, shed {}, server window p99 {}",
            step.concurrency,
            step.achieved_rps,
            step.offered_rps,
            step.client_p50_seconds * 1e3,
            step.client_p99_seconds * 1e3,
            step.shed,
            step.server_window_p99_seconds
                .map_or("n/a".to_string(), |p| format!("{:.3} ms", p * 1e3)),
        );
        // Sheds are admission control doing its job under deliberate
        // overload; hard errors are not.
        assert_eq!(
            step.errors, 0,
            "sweep step at concurrency {} saw errors",
            step.concurrency
        );
        client_max_p99 = client_max_p99.max(step.client_p99_seconds);
    }

    // Cross-check, per step: the service span (enqueue→reply) is a
    // component of what the client times, so the server's rolling p99
    // must never sit far *above* the step's client p99 (4x or 2 ms of
    // bucket-interpolation slack). The reverse bound only holds while
    // transport is cheap: past the core count the client number is
    // dominated by multiplexer out-queues and kernel buffers that the
    // service span deliberately excludes (DESIGN.md §13), so two-sided
    // agreement is gated on the lowest-concurrency step only.
    for step in &steps {
        let Some(server_p99) = step.server_window_p99_seconds else {
            panic!(
                "step at concurrency {} must carry a server window p99",
                step.concurrency
            );
        };
        assert!(
            server_p99 <= step.client_p99_seconds * 4.0 + 2e-3,
            "server rolling p99 {server_p99:.6}s exceeds client p99 {:.6}s at concurrency {} \
             beyond the documented tolerance (4x + 2 ms)",
            step.client_p99_seconds,
            step.concurrency
        );
    }
    let low = steps.first().expect("sweep has steps");
    let low_server = low
        .server_window_p99_seconds
        .expect("first step carries a server window p99");
    let low_client = low.client_p99_seconds;
    let ratio_ok = low_server <= low_client * 4.0 && low_client <= low_server.max(1e-12) * 4.0;
    let abs_ok = (low_server - low_client).abs() <= 2e-3;
    assert!(
        ratio_ok || abs_ok,
        "at concurrency {} (cheap transport) server p99 {low_server:.6}s must agree with \
         client p99 {low_client:.6}s within 4x or 2 ms",
        low.concurrency
    );
    println!(
        "p99 cross-check ok: server window {:.3} ms vs client {:.3} ms at concurrency {}, \
         client max {:.3} ms across the sweep",
        low_server * 1e3,
        low_client * 1e3,
        low.concurrency,
        client_max_p99 * 1e3
    );

    let doc = sweep_to_json(ParConfig::current().threads, shard_count, !f32_mode, &steps);
    stco_bench::validate_serving_curve(&doc, SWEEP_STEPS.len())
        .expect("BENCH_serving.json schema validation");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_serving.json");
    println!("wrote {path}");

    // Graceful shutdown over the wire, then tear down.
    admin.shutdown().expect("shutdown");
    server.stop();
    if std::env::var("STCO_STORE_DIR").is_err() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("done in {:.2} s", t_total.elapsed().as_secs_f64());
}
