//! CI serving-smoke gate: exercises the full artifact → registry →
//! TCP serving path under concurrent batched load and proves the
//! replies are bitwise-identical to in-process `predict_many`.
//!
//! 1. trains the tiny demo cell model and exports it to a scratch
//!    registry;
//! 2. starts a `ModelService` + `TcpServer` on an ephemeral port;
//! 3. fires 64 concurrent predict requests (one TCP connection each);
//! 4. asserts every reply bitwise-matches the in-process prediction;
//! 5. writes `BENCH_serving.json` (throughput, p50/p99 latency, mean
//!    batch occupancy) at the repository root.
//!
//! Honours `STCO_THREADS` like every other parallel path, so CI runs it
//! at 1 and 4 threads.

use std::time::Instant;

use stco_par::ParConfig;
use stco_serve::demo::{demo_graph, demo_key, train_demo_model, DEMO_CELLS};
use stco_serve::service::{BatchConfig, ModelService, PredictInput};
use stco_serve::{Client, TcpServer};
use stco_store::Registry;
use stco_surrogate::cell_model::{CellModel, METRICS};

const CONCURRENT_REQUESTS: usize = 64;

fn main() {
    let t_total = Instant::now();

    // 1. Train and export into a scratch registry (unless STCO_STORE_DIR
    // points somewhere explicit, which CI uses to keep runs hermetic).
    let dir = std::env::var("STCO_STORE_DIR").map_or_else(
        |_| std::env::temp_dir().join(format!("stco-serving-smoke-{}", std::process::id())),
        std::path::PathBuf::from,
    );
    let registry = Registry::open(&dir).expect("open registry");
    let key = demo_key();
    let model = train_demo_model().expect("train demo model");
    registry
        .put(key, &model.to_artifact())
        .expect("export artifact");
    println!("exported demo model to {}", dir.display());

    // 2. Serve it.
    let service = ModelService::start(Some(registry), BatchConfig::default());
    let server = TcpServer::start("127.0.0.1:0", service).expect("bind server");
    let addr = server.addr().to_string();
    let model_id = {
        let mut admin = Client::connect(&addr).expect("connect admin client");
        admin
            .load(CellModel::ARTIFACT_KIND, key)
            .expect("load artifact")
    };
    println!(
        "serving {model_id} on {addr} (STCO_THREADS={})",
        ParConfig::current().threads
    );

    // 3. 64 concurrent requests; every request's expected reply is the
    // in-process prediction for the same input.
    let all_metrics: Vec<usize> = (0..METRICS.len()).collect();
    let requests: Vec<(PredictInput, Vec<u64>)> = (0..CONCURRENT_REQUESTS)
        .map(|i| {
            let kind = DEMO_CELLS[i % DEMO_CELLS.len()];
            let metrics: Vec<usize> = match i % 3 {
                0 => all_metrics.clone(),
                1 => vec![0],
                _ => vec![2, 5, 8],
            };
            let graph = demo_graph(kind);
            let expected: Vec<u64> = model
                .predict_many(&graph, &metrics)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            (PredictInput::Cell { graph, metrics }, expected)
        })
        .collect();

    let t0 = Instant::now();
    let mismatches: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = requests
            .iter()
            .map(|(input, expected)| {
                let addr = addr.clone();
                let model_id = model_id.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let got: Vec<u64> = client
                        .predict(&model_id, input, Some(10_000))
                        .expect("predict")
                        .iter()
                        .map(|v| v.to_bits())
                        .collect();
                    usize::from(&got != expected)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("join")).sum()
    });
    let wall = t0.elapsed().as_secs_f64();

    // 4. Bitwise gate.
    assert_eq!(
        mismatches, 0,
        "{mismatches}/{CONCURRENT_REQUESTS} TCP replies differed from in-process predict_many"
    );
    println!("all {CONCURRENT_REQUESTS} concurrent replies bitwise-match in-process predict_many");

    // 5. Metrics + BENCH_serving.json.
    let metrics = stco_obs::Recorder::global().metrics();
    let latency = metrics.histogram(
        "serve.latency_seconds",
        &stco_obs::metrics::seconds_buckets(),
    );
    let occupancy_bounds: Vec<f64> = (1..=BatchConfig::default().max_batch)
        .map(|n| n as f64)
        .collect();
    let occupancy = metrics.histogram("serve.batch_occupancy", &occupancy_bounds);
    let p50 = latency.quantile(0.50).unwrap_or(0.0);
    let p99 = latency.quantile(0.99).unwrap_or(0.0);
    let mean_occupancy = occupancy.mean().unwrap_or(0.0);
    let throughput = CONCURRENT_REQUESTS as f64 / wall.max(1e-9);
    println!(
        "throughput {throughput:.0} req/s, latency p50 {:.3} ms / p99 {:.3} ms, mean batch occupancy {mean_occupancy:.2}",
        p50 * 1e3,
        p99 * 1e3
    );
    assert!(
        mean_occupancy >= 1.0,
        "batch occupancy must be at least 1 (got {mean_occupancy})"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    let out = format!(
        "{{\n  \"threads\": {},\n  \"concurrent_requests\": {CONCURRENT_REQUESTS},\n  \
         \"wall_seconds\": {wall:.6},\n  \"throughput_rps\": {throughput:.3},\n  \
         \"latency_p50_seconds\": {p50:.9},\n  \"latency_p99_seconds\": {p99:.9},\n  \
         \"mean_batch_occupancy\": {mean_occupancy:.3},\n  \"bitwise_identical\": true\n}}\n",
        ParConfig::current().threads
    );
    std::fs::write(path, out).expect("write BENCH_serving.json");
    println!("wrote {path}");

    // Graceful shutdown over the wire, then tear down.
    let mut admin = Client::connect(&addr).expect("connect admin client");
    admin.shutdown().expect("shutdown");
    server.stop();
    if std::env::var("STCO_STORE_DIR").is_err() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!("done in {:.2} s", t_total.elapsed().as_secs_f64());
}
