//! CI sweep-smoke gate: exercises the whole `stco-sweep` subsystem on a
//! small grid and writes `BENCH_sweep.json` (`stco-sweep/v1`).
//!
//! 1. **Real-flow kill/resume leg** — a 2-technology × 1-benchmark ×
//!    2³-corner grid evaluated with [`FlowEval`] (traditional fast
//!    config). A reference run covers the grid uninterrupted; a second
//!    run is killed after 7 scenarios (the engine is dropped), reopened
//!    over the same journal, and finished. The gate: zero recompute and
//!    a bitwise-identical Pareto front.
//! 2. **Remote leg** — the synthetic demo spec served through a
//!    [`SweepQueue`] attached to a live `TcpServer`, drained by two
//!    concurrent workers over the `sweep` wire op. The gate: the
//!    server-journaled front bitwise-matches a local engine run.
//! 3. **Ablation leg** — GP-lite BayesOpt vs the ε-greedy Q-learning
//!    agent over every (technology, benchmark) cell of a 5³ synthetic
//!    grid. The gate: BayesOpt reaches the exhaustive grid optimum in
//!    fewer total unique evaluations.
//!
//! The document is validated with `stco_bench::validate_sweep_bench`
//! before it is written — the same check CI re-runs against the file.
//!
//! Honours `STCO_THREADS` like every other parallel path, so CI runs
//! it at 1 and 4 threads; the fronts must not depend on the choice.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use stco_compact::tech::CornerGrid;
use stco_core::flow::TechnologyStage;
use stco_core::rl::AgentConfig;
use stco_obs::json::JsonValue;
use stco_par::ParConfig;
use stco_serve::{BatchConfig, Client, ModelService, SweepBackend, TcpServer};
use stco_store::Registry;
use stco_sweep::{
    explorer_ablation, front_fingerprint, pareto_front, run_remote_worker, BayesOptConfig,
    FlowEval, SweepEngine, SweepQueue, SweepSpec, SyntheticEval,
};
use stco_system::bench_gen::Benchmark;
use stco_tcad::materials::Technology;

/// Scenarios the kill/resume leg completes before the simulated kill.
const KILL_AFTER: usize = 7;
/// Concurrent workers draining the remote leg.
const REMOTE_WORKERS: usize = 2;
/// Grid depth of the ablation leg (5³ = 125 corners per cell).
const ABLATION_LEVELS: usize = 5;

/// The real-flow spec: small enough for CI, real enough to exercise the
/// full TCAD → SPICE → cells → system path per scenario. The grid stays
/// away from the default ranges' extremes, whose corners can fail cell
/// characterization — that failure mode has its own tests.
fn flow_spec() -> SweepSpec {
    SweepSpec {
        technologies: vec![Technology::Cnt, Technology::Ltps],
        benchmarks: vec![Benchmark::S298],
        grid: CornerGrid {
            vdd: (2.8, 3.4),
            vth_shift: (-0.05, 0.05),
            cox_scale: (0.95, 1.1),
        },
        levels: 2,
        eval_tag: "traditional-fast-config".to_string(),
    }
}

/// The remote leg's spec: synthetic evaluation, 54 scenarios.
fn remote_spec() -> SweepSpec {
    let mut spec = SweepSpec::demo();
    spec.technologies.truncate(2);
    spec.benchmarks.truncate(1);
    spec.levels = 3;
    spec
}

fn scratch_registry(base: &std::path::Path, leg: &str) -> Registry {
    let dir = base.join(leg);
    let _ = std::fs::remove_dir_all(&dir);
    Registry::open(&dir).expect("open scratch registry")
}

fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn main() {
    let t_total = Instant::now();
    let threads = ParConfig::current().threads;
    let base = std::env::var("STCO_STORE_DIR").map_or_else(
        |_| std::env::temp_dir().join(format!("stco-sweep-smoke-{}", std::process::id())),
        PathBuf::from,
    );
    println!(
        "sweep smoke (STCO_THREADS={threads}, scratch {})",
        base.display()
    );

    // 1. Real-flow kill/resume leg.
    let spec = flow_spec();
    let total = spec.scenario_count();
    let eval = FlowEval::new(&spec, TechnologyStage::Traditional, None).expect("build flows");

    let reference = SweepEngine::new(&spec, scratch_registry(&base, "flow-ref"))
        .expect("reference engine")
        .run_sweep(&eval, None)
        .expect("reference sweep");
    assert!(reference.is_complete());
    assert_eq!(reference.executed, total);
    let reference_front = front_fingerprint(&pareto_front(&reference.records));
    let scenarios_per_sec = reference.executed as f64 / reference.seconds.max(1e-9);
    println!(
        "flow leg: {total} scenarios in {:.2} s ({scenarios_per_sec:.2}/s), \
         front {reference_front:016x}",
        reference.seconds
    );

    let killed_dir = base.join("flow-killed");
    let _ = std::fs::remove_dir_all(&killed_dir);
    let before_kill = {
        let engine = SweepEngine::new(&spec, Registry::open(&killed_dir).expect("registry"))
            .expect("killed engine");
        let partial = engine
            .run_sweep(&eval, Some(KILL_AFTER))
            .expect("partial sweep");
        assert_eq!(partial.executed, KILL_AFTER);
        assert!(!partial.is_complete());
        partial.executed
    }; // engine dropped here — the "kill"
    let resumed_run = SweepEngine::new(&spec, Registry::open(&killed_dir).expect("registry"))
        .expect("resumed engine")
        .run_sweep(&eval, None)
        .expect("resumed sweep");
    assert!(resumed_run.is_complete());
    assert_eq!(
        resumed_run.resumed, KILL_AFTER,
        "journal must restore every pre-kill scenario"
    );
    let recomputed = resumed_run.executed - (total - before_kill);
    assert_eq!(
        recomputed, 0,
        "resume must not re-evaluate journaled scenarios"
    );
    let resumed_front = front_fingerprint(&pareto_front(&resumed_run.records));
    let resume_bitwise = resumed_front == reference_front;
    assert!(
        resume_bitwise,
        "resumed front must bitwise-match the uninterrupted run"
    );
    println!(
        "kill/resume: {before_kill} before kill, {} resumed + {} executed after, \
         0 recomputed, front bitwise-identical",
        resumed_run.resumed, resumed_run.executed
    );

    // 2. Remote leg: two workers over the sweep wire op.
    let rspec = remote_spec();
    let local = SweepEngine::new(&rspec, scratch_registry(&base, "remote-local"))
        .expect("local engine")
        .run_sweep(&SyntheticEval, None)
        .expect("local sweep");
    let local_front = front_fingerprint(&pareto_front(&local.records));

    let service = ModelService::start(None, BatchConfig::default());
    let (queue, _) =
        SweepQueue::open(&rspec, scratch_registry(&base, "remote-server")).expect("open queue");
    service.attach_sweep(Arc::clone(&queue) as Arc<dyn SweepBackend>);
    let server = TcpServer::start("127.0.0.1:0", Arc::clone(&service)).expect("bind server");
    let addr = server.addr().to_string();
    let handles: Vec<_> = (0..REMOTE_WORKERS)
        .map(|w| {
            let addr = addr.clone();
            let spec = rspec.clone();
            std::thread::spawn(move || {
                run_remote_worker(&addr, &spec, &SyntheticEval, &format!("smoke-w{w}"), 4)
            })
        })
        .collect();
    let completed: usize = handles
        .into_iter()
        .map(|h| h.join().expect("worker thread").expect("remote worker"))
        .sum();
    assert_eq!(completed, rspec.scenario_count());
    let status = Client::connect(&addr)
        .expect("status client")
        .sweep_status()
        .expect("wire status");
    assert_eq!(status.completed, rspec.scenario_count());
    server.stop();
    service.shutdown();
    let remote_front = front_fingerprint(&pareto_front(&queue.records().expect("records")));
    let remote_bitwise = remote_front == local_front;
    assert!(
        remote_bitwise,
        "remote front must bitwise-match the local engine"
    );
    println!(
        "remote leg: {REMOTE_WORKERS} workers completed {completed} scenarios, \
         front bitwise-identical to local"
    );

    // 3. Ablation leg: samples-to-front, BayesOpt vs ε-greedy.
    let ablation = explorer_ablation(
        ABLATION_LEVELS,
        &Technology::ALL,
        &[Benchmark::S298, Benchmark::S386],
        &AgentConfig::default(),
        &BayesOptConfig::default(),
    )
    .expect("ablation");
    assert!(
        ablation.bayes_total < ablation.epsilon_total,
        "BayesOpt must reach the front in fewer samples ({} vs {})",
        ablation.bayes_total,
        ablation.epsilon_total
    );
    println!(
        "ablation: ε-greedy {} vs BayesOpt {} unique evaluations over {} cells",
        ablation.epsilon_total,
        ablation.bayes_total,
        ablation.cells.len()
    );

    // Assemble, validate, write.
    let cells: Vec<JsonValue> = ablation
        .cells
        .iter()
        .map(|c| {
            obj(vec![
                (
                    "technology",
                    JsonValue::Str(c.technology.name().to_string()),
                ),
                ("benchmark", JsonValue::Str(c.benchmark.name().to_string())),
                ("epsilon_samples", JsonValue::Num(c.epsilon_samples as f64)),
                ("bayes_samples", JsonValue::Num(c.bayes_samples as f64)),
            ])
        })
        .collect();
    let doc = obj(vec![
        ("schema", JsonValue::Str("stco-sweep/v1".to_string())),
        ("threads", JsonValue::Num(threads as f64)),
        ("scenarios", JsonValue::Num(total as f64)),
        ("scenarios_per_sec", JsonValue::Num(scenarios_per_sec)),
        (
            "resume",
            obj(vec![
                ("executed_before_kill", JsonValue::Num(before_kill as f64)),
                ("resumed", JsonValue::Num(resumed_run.resumed as f64)),
                (
                    "executed_after",
                    JsonValue::Num(resumed_run.executed as f64),
                ),
                ("recomputed", JsonValue::Num(recomputed as f64)),
                ("front_bitwise_identical", JsonValue::Bool(resume_bitwise)),
            ]),
        ),
        (
            "remote",
            obj(vec![
                ("workers", JsonValue::Num(REMOTE_WORKERS as f64)),
                ("completed", JsonValue::Num(completed as f64)),
                ("front_bitwise_identical", JsonValue::Bool(remote_bitwise)),
            ]),
        ),
        (
            "ablation",
            obj(vec![
                ("levels", JsonValue::Num(ABLATION_LEVELS as f64)),
                ("cells", JsonValue::Arr(cells)),
                (
                    "epsilon_greedy_samples",
                    JsonValue::Num(ablation.epsilon_total as f64),
                ),
                (
                    "bayesopt_samples",
                    JsonValue::Num(ablation.bayes_total as f64),
                ),
            ]),
        ),
    ]);
    stco_bench::validate_sweep_bench(&doc).expect("BENCH_sweep.json schema validation");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_sweep.json");
    println!("wrote {path}");

    if std::env::var("STCO_STORE_DIR").is_err() {
        let _ = std::fs::remove_dir_all(&base);
    }
    println!("done in {:.2} s", t_total.elapsed().as_secs_f64());
}
