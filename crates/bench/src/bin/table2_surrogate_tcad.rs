//! Table II regenerator: MSE and R² of the surrogate-TCAD models
//! (Poisson emulator + IV predictor) on validation / testing / unseen
//! device sets.
//!
//! Default: 150-device CNT population, 4-layer emulator. With
//! `STCO_SCALE=paper`: 1200 devices and the 12-layer architecture (still
//! far below the paper's 50 000 — see EXPERIMENTS.md).

use stco_bench::{artifact_registry, banner, cache_counters, paper_scale, report_cache_delta};
use stco_nn::train::TrainConfig;
use stco_surrogate::iv_predictor::IvConfig;
use stco_surrogate::pipeline::{run_table2_cached, Table2Config};
use stco_surrogate::poisson_emulator::PoissonConfig;
use stco_tcad::materials::Technology;

fn main() {
    let config = if paper_scale() {
        Table2Config {
            dataset_size: 1200,
            unseen_size: 400,
            technologies: vec![Technology::Cnt],
            poisson: PoissonConfig {
                depth: 12,
                heads: 2,
                head_dim: 16,
                ..PoissonConfig::default()
            },
            iv: IvConfig::default(),
            train: TrainConfig {
                epochs: 60,
                batch_size: 8,
                patience: Some(15),
                ..TrainConfig::default()
            },
            seed: 2024,
        }
    } else {
        Table2Config {
            dataset_size: 150,
            unseen_size: 50,
            ..Table2Config::default()
        }
    };

    banner("Table II: MSE of the surrogate TCAD models");
    println!(
        "dataset: {} devices (+{} unseen), technologies {:?}",
        config.dataset_size, config.unseen_size, config.technologies
    );
    let registry = artifact_registry();
    let cache_before = cache_counters();
    let t0 = std::time::Instant::now();
    let report = run_table2_cached(&config, registry.as_ref()).expect("table 2 pipeline");
    println!(
        "pipeline wall clock: {:.1} s (generation + training + eval)",
        t0.elapsed().as_secs_f64()
    );
    report_cache_delta("table2", cache_before);
    println!();

    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>10}",
        "", "Validation", "Testing", "Unseen", "R2(unseen)"
    );
    println!(
        "{:<18} {:>12.3e} {:>12.3e} {:>12.3e} {:>10.4}",
        "Poisson Emulator",
        report.poisson[0].mse,
        report.poisson[1].mse,
        report.poisson[2].mse,
        report.poisson[2].r_squared
    );
    println!(
        "{:<18} {:>12.3e} {:>12.3e} {:>12.3e} {:>10.4}",
        "IV Predictor",
        report.iv[0].mse,
        report.iv[1].mse,
        report.iv[2].mse,
        report.iv[2].r_squared
    );
    println!(
        "\nsplits: train {} / val {} / test {} / unseen {} devices",
        report.sizes[0], report.sizes[1], report.sizes[2], report.sizes[3]
    );
    println!(
        "parameters: poisson {:.2} M (paper ~1 M), iv {:.3} M (paper ~0.15 M)",
        report.parameter_counts.0 as f64 / 1e6,
        report.parameter_counts.1 as f64 / 1e6
    );
    println!("\npaper Table II: Poisson 6.17e-5 / 7.02e-5 / 7.15e-5, IV 1.67e-3 / 1.60e-3 / 1.78e-3, R2 = 0.9999");
}
