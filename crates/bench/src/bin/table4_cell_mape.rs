//! Table IV regenerator: MAPE of the GCN cell-library model per metric,
//! for the LTPS and CNT technologies (the paper's two columns).
//!
//! Default: 6 cells, 2³ training / 3³ testing corners. With
//! `STCO_SCALE=paper`: 12 cells, 3³ / 4³ corners (the paper's 125/512
//! grids and 35 cells are hours of single-core SPICE; see
//! EXPERIMENTS.md).

use stco_bench::{
    artifact_registry, banner, bench_char_config, cache_counters, paper_scale, report_cache_delta,
};
use stco_cells::library::{CellKind, CellType};
use stco_surrogate::pipeline::{run_table4_cached, Table4Config};
use stco_tcad::materials::Technology;

fn main() {
    let registry = artifact_registry();
    let mut reports = Vec::new();
    for tech in [Technology::Ltps, Technology::Cnt] {
        let mut config = Table4Config::scaled_default(tech);
        config.char_config = bench_char_config();
        if paper_scale() {
            config.train_levels = 3;
            config.test_levels = 4;
            config.cells = [
                CellKind::Inv,
                CellKind::Buf,
                CellKind::Nand2,
                CellKind::Nand3,
                CellKind::Nor2,
                CellKind::And2,
                CellKind::Or2,
                CellKind::Xor2,
                CellKind::Aoi21,
                CellKind::Mux2,
                CellKind::Dff,
                CellKind::Dlatch,
            ]
            .into_iter()
            .map(CellType::by_kind)
            .collect();
        }
        banner(&format!(
            "Table IV ({tech}): {} cells, {}^3 train / {}^3 test corners",
            config.cells.len(),
            config.train_levels,
            config.test_levels
        ));
        let cache_before = cache_counters();
        let t0 = std::time::Instant::now();
        let report = run_table4_cached(&config, registry.as_ref()).expect("table 4 pipeline");
        println!(
            "characterization + training wall clock: {:.1} s",
            t0.elapsed().as_secs_f64()
        );
        report_cache_delta(&format!("table4/{tech}"), cache_before);
        println!(
            "samples: {} train / {} test\n",
            report.sizes.0, report.sizes.1
        );
        println!("{:<20} {:>9} {:>12}", "metric", "MAPE", "data points");
        for (metric, mape, count) in &report.rows {
            println!("{:<20} {:>8.2}% {:>12}", metric, mape, count);
        }
        reports.push(report);
    }

    banner("paper Table IV reference (35 cells, 125/512 corners)");
    let paper = [
        ("delay", 0.47, 0.62),
        ("output_slew", 0.79, 0.83),
        ("capacitance", 0.18, 0.21),
        ("flip_power", 5.74, 4.96),
        ("nonflip_power", 3.36, 5.60),
        ("leakage_power", 2.78, 2.39),
        ("min_pulse_width", 1.20, 1.67),
        ("min_setup", 0.50, 0.27),
        ("min_hold", 0.45, 0.38),
    ];
    println!("{:<20} {:>8} {:>8}", "metric", "LTPS", "CNT");
    for (m, l, c) in paper {
        println!("{:<20} {:>7.2}% {:>7.2}%", m, l, c);
    }
    println!("\nshape check: power metrics carry the largest errors in both reproductions,");
    println!("matching the paper's observation about dynamic-power dynamic range.");
}
