//! CI bench-smoke gate: validates `BENCH_table1.json` after a fresh
//! `table1_runtime` run.
//!
//! Checks, in order:
//!
//! 1. the file parses and matches the expected schema (benchmarks with
//!    per-stage traditional/fast seconds, scaling rows with a
//!    determinism flag, kernel rows with a bitwise-identity flag);
//! 2. every fast-loop speedup is at least [`MIN_SPEEDUP`] — the paper's
//!    headline claim, with headroom below our measured 25×–35×;
//! 3. every scaling and kernel row reports `identical_outputs: true`
//!    (the determinism contract is part of the benchmark, not an aside);
//! 4. scaling rows may be `"status": "skipped"` on hosts below
//!    [`SCALING_CORE_GATE`] cores — but a machine at or above the gate
//!    must carry measured rows (a stale file is an error there), and
//!    the characterization stage must scale (> 1× at 4 threads);
//! 5. on gated machines every kernel row (blocked GEMM, batched
//!    forward) must be at least [`KERNEL_MIN_SPEEDUP`] over its naive
//!    baseline.
//!
//! Exits nonzero with a one-line reason on the first failure.

use stco_obs::json::JsonValue;

/// Minimum accepted end-to-end fast-loop speedup per benchmark.
///
/// Calibrated against the workspace-reuse overhaul: the hot-kernel work
/// sped the *traditional* loop ~2.8× (its characterization stage was
/// allocation-bound), which compresses the measured ratio from the old
/// 52×–75× to ~25×–35× even though the fast loop also got faster in
/// absolute terms. 20× keeps a hard floor under the claim — a genuine
/// fast-loop regression (e.g. reintroducing per-call tape allocation)
/// lands near 10×.
const MIN_SPEEDUP: f64 = 20.0;

/// Parallel-scaling assertions only apply at or above this core count;
/// below it the measurement is noise (CI runners vary).
const SCALING_CORE_GATE: u64 = 4;

/// Minimum accepted kernel-row speedup (blocked GEMM over naive,
/// batched forward over looped `predict_many`) on gated machines.
const KERNEL_MIN_SPEEDUP: f64 = 2.0;

fn get_f64(obj: &JsonValue, key: &str, ctx: &str) -> Result<f64, String> {
    let v = obj
        .get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric field `{key}`"))?;
    if !v.is_finite() {
        return Err(format!("{ctx}: field `{key}` is not finite ({v})"));
    }
    Ok(v)
}

/// Validates one per-stage seconds object and returns its total.
fn check_stage_seconds(obj: &JsonValue, ctx: &str) -> Result<f64, String> {
    let mut sum = 0.0;
    for key in ["device", "compact", "cells", "system"] {
        let v = get_f64(obj, key, ctx)?;
        if v < 0.0 {
            return Err(format!("{ctx}: stage `{key}` is negative ({v})"));
        }
        sum += v;
    }
    let total = get_f64(obj, "total", ctx)?;
    let rel = (total - sum).abs() / total.abs().max(1e-9);
    if rel > 0.01 {
        return Err(format!(
            "{ctx}: total {total:.6} disagrees with stage sum {sum:.6} ({:.2}% off)",
            rel * 100.0
        ));
    }
    Ok(total)
}

fn run(text: &str) -> Result<String, String> {
    let root = JsonValue::parse(text).map_err(|e| format!("parse error: {e}"))?;
    let threads = root
        .get("threads")
        .and_then(JsonValue::as_u64)
        .ok_or("missing `threads`")?;
    let cores = root
        .get("available_parallelism")
        .and_then(JsonValue::as_u64)
        .ok_or("missing `available_parallelism`")?;

    let benches = match root.get("benchmarks") {
        Some(JsonValue::Arr(rows)) if !rows.is_empty() => rows,
        _ => return Err("`benchmarks` missing or empty".to_string()),
    };
    let mut worst: Option<(String, f64)> = None;
    for row in benches {
        let name = row
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("benchmark row missing `name`")?
            .to_string();
        let trad = row
            .get("traditional")
            .ok_or_else(|| format!("{name}: missing `traditional`"))?;
        let fast = row
            .get("fast")
            .ok_or_else(|| format!("{name}: missing `fast`"))?;
        let trad_total = check_stage_seconds(trad, &format!("{name}/traditional"))?;
        let fast_total = check_stage_seconds(fast, &format!("{name}/fast"))?;
        let speedup = get_f64(row, "speedup", &name)?;
        let recomputed = trad_total / fast_total.max(1e-12);
        let rel = (speedup - recomputed).abs() / recomputed.max(1e-9);
        if rel > 0.01 {
            return Err(format!(
                "{name}: recorded speedup {speedup:.3} disagrees with totals ({recomputed:.3})"
            ));
        }
        if speedup < MIN_SPEEDUP {
            return Err(format!(
                "{name}: fast-loop speedup {speedup:.1}x below the {MIN_SPEEDUP:.0}x gate"
            ));
        }
        if worst.as_ref().is_none_or(|(_, s)| speedup < *s) {
            worst = Some((name, speedup));
        }
    }

    let scaling = match root.get("scaling") {
        Some(JsonValue::Arr(rows)) if !rows.is_empty() => rows,
        _ => return Err("`scaling` missing or empty".to_string()),
    };
    let mut charac_speedup = None;
    let mut measured_rows = 0usize;
    for row in scaling {
        let stage = row
            .get("stage")
            .and_then(JsonValue::as_str)
            .ok_or("scaling row missing `stage`")?
            .to_string();
        match row.get("identical_outputs") {
            Some(JsonValue::Bool(true)) => {}
            other => {
                return Err(format!(
                    "{stage}: identical_outputs must be true, got {other:?} \
                     (stco-par determinism contract)"
                ))
            }
        }
        // Rows without a `status` field predate it and are measured.
        let status = match row.get("status") {
            None => "measured",
            Some(JsonValue::Str(s)) => s.as_str(),
            other => return Err(format!("{stage}: non-string `status` ({other:?})")),
        };
        match status {
            "measured" => {
                measured_rows += 1;
                for key in ["serial_seconds", "parallel_seconds"] {
                    let v = get_f64(row, key, &stage)?;
                    if v <= 0.0 {
                        return Err(format!("{stage}: `{key}` must be positive ({v})"));
                    }
                }
                let speedup = get_f64(row, "speedup", &stage)?;
                if stage == "characterization" {
                    charac_speedup = Some(speedup);
                }
            }
            "skipped" => {
                row.get("reason")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| format!("{stage}: skipped scaling row missing `reason`"))?;
            }
            other => return Err(format!("{stage}: unknown scaling status `{other}`")),
        }
    }
    let scaling_line = if cores >= SCALING_CORE_GATE {
        if measured_rows == 0 {
            return Err(format!(
                "every scaling row is skipped on a {cores}-core machine — \
                 stale BENCH_table1.json from a core-starved host?"
            ));
        }
        let charac = charac_speedup.ok_or("no measured `characterization` scaling row")?;
        if charac <= 1.0 {
            return Err(format!(
                "characterization parallel scaling {charac:.3}x <= 1x on a \
                 {cores}-core machine (thread-local workspace regression?)"
            ));
        }
        format!("characterization scales {charac:.2}x at {threads} threads")
    } else if let Some(charac) = charac_speedup {
        format!(
            "characterization scaling {charac:.2}x recorded \
             (gate skipped: {cores} core(s))"
        )
    } else {
        format!("scaling timings skipped ({cores} core(s), outputs verified identical)")
    };

    let kernels = match root.get("kernels") {
        Some(JsonValue::Arr(rows)) if !rows.is_empty() => rows,
        _ => return Err("`kernels` missing or empty".to_string()),
    };
    let mut kernel_worst: Option<(String, f64)> = None;
    for row in kernels {
        let name = row
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("kernel row missing `name`")?
            .to_string();
        let baseline = get_f64(row, "baseline_seconds", &name)?;
        let optimized = get_f64(row, "optimized_seconds", &name)?;
        if baseline <= 0.0 || optimized <= 0.0 {
            return Err(format!("{name}: kernel seconds must be positive"));
        }
        let speedup = get_f64(row, "speedup", &name)?;
        let recomputed = baseline / optimized.max(1e-12);
        let rel = (speedup - recomputed).abs() / recomputed.max(1e-9);
        if rel > 0.01 {
            return Err(format!(
                "{name}: recorded kernel speedup {speedup:.3} disagrees with seconds ({recomputed:.3})"
            ));
        }
        match row.get("identical_outputs") {
            Some(JsonValue::Bool(true)) => {}
            other => {
                return Err(format!(
                    "{name}: identical_outputs must be true, got {other:?} \
                     (blocked/batched kernels are bitwise-pinned to their baselines)"
                ))
            }
        }
        if cores >= SCALING_CORE_GATE && speedup < KERNEL_MIN_SPEEDUP {
            return Err(format!(
                "{name}: kernel speedup {speedup:.2}x below the \
                 {KERNEL_MIN_SPEEDUP:.0}x gate on a {cores}-core machine"
            ));
        }
        if kernel_worst.as_ref().is_none_or(|(_, s)| speedup < *s) {
            kernel_worst = Some((name, speedup));
        }
    }
    let (kernel_name, kernel_speedup) = kernel_worst.ok_or("no kernel rows")?;

    let (worst_name, worst_speedup) = worst.ok_or("no benchmark rows")?;
    Ok(format!(
        "bench-smoke OK: {} benchmark(s), slowest fast-loop speedup {worst_speedup:.1}x \
         ({worst_name}) >= {MIN_SPEEDUP:.0}x; {scaling_line}; slowest kernel \
         {kernel_speedup:.2}x ({kernel_name}); all outputs bit-identical",
        benches.len()
    ))
}

fn main() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_table1.json");
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench-smoke FAIL: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match run(&text) {
        Ok(summary) => println!("{summary}"),
        Err(reason) => {
            eprintln!("bench-smoke FAIL: {reason}");
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_full(
        speedup: f64,
        charac_speedup: f64,
        identical: bool,
        cores: u64,
        scaling_skipped: bool,
        kernel_speedup: f64,
        kernel_identical: bool,
    ) -> String {
        let fast_total = 0.02;
        let trad_total = fast_total * speedup;
        let trad_cells = trad_total - 0.003;
        let scaling = if scaling_skipped {
            format!(
                r#"    {{"stage": "dataset_generation", "status": "skipped", "reason": "thread-scaling timings need >= 4 cores, host has {cores}", "identical_outputs": true}},
    {{"stage": "characterization", "status": "skipped", "reason": "thread-scaling timings need >= 4 cores, host has {cores}", "identical_outputs": {identical}}}"#
            )
        } else {
            format!(
                r#"    {{"stage": "dataset_generation", "status": "measured", "serial_seconds": 0.08, "parallel_seconds": 0.04, "speedup": 2.0, "identical_outputs": true}},
    {{"stage": "characterization", "status": "measured", "serial_seconds": 2.0, "parallel_seconds": {}, "speedup": {charac_speedup}, "identical_outputs": {identical}}}"#,
                2.0 / charac_speedup
            )
        };
        format!(
            r#"{{
  "threads": 4,
  "available_parallelism": {cores},
  "benchmarks": [
    {{"name": "s298",
      "traditional": {{"device": 0.001, "compact": 0.001, "cells": {trad_cells}, "system": 0.001, "total": {trad_total}}},
      "fast": {{"device": 0.005, "compact": 0.005, "cells": 0.005, "system": 0.005, "total": {fast_total}}},
      "speedup": {speedup}}}
  ],
  "scaling": [
{scaling}
  ],
  "kernels": [
    {{"name": "blocked_gemm_2048x32x32", "baseline_seconds": {}, "optimized_seconds": 0.0001, "speedup": {kernel_speedup}, "identical_outputs": {kernel_identical}}},
    {{"name": "batched_forward_32", "baseline_seconds": 0.009, "optimized_seconds": 0.003, "speedup": 3.0, "identical_outputs": true}}
  ]
}}"#,
            0.0001 * kernel_speedup
        )
    }

    fn sample(speedup: f64, charac_speedup: f64, identical: bool, cores: u64) -> String {
        sample_full(speedup, charac_speedup, identical, cores, false, 3.4, true)
    }

    #[test]
    fn healthy_report_passes() -> Result<(), String> {
        let summary = run(&sample(55.0, 2.5, true, 8))?;
        assert!(summary.contains("55.0x"));
        assert!(summary.contains("2.50x"));
        Ok(())
    }

    #[test]
    fn slow_fast_loop_fails() {
        let err = run(&sample(19.0, 2.5, true, 8)).unwrap_err();
        assert!(err.contains("below the 20x gate"), "{err}");
    }

    #[test]
    fn charac_scaling_regression_fails_on_big_machines_only() -> Result<(), String> {
        let err = run(&sample(55.0, 0.95, true, 8)).unwrap_err();
        assert!(err.contains("characterization parallel scaling"), "{err}");
        // The same report is accepted on a small CI runner.
        let summary = run(&sample(55.0, 0.95, true, 1))?;
        assert!(summary.contains("gate skipped"));
        Ok(())
    }

    #[test]
    fn broken_determinism_flag_fails() {
        let err = run(&sample(55.0, 2.5, false, 8)).unwrap_err();
        assert!(err.contains("identical_outputs"), "{err}");
    }

    #[test]
    fn schema_violations_fail() {
        assert!(run("not json").is_err());
        assert!(run("{}").is_err());
        let missing_scaling = r#"{"threads": 4, "available_parallelism": 1,
            "benchmarks": [{"name": "x",
              "traditional": {"device": 1.0, "compact": 1.0, "cells": 1.0, "system": 1.0, "total": 4.0},
              "fast": {"device": 0.025, "compact": 0.025, "cells": 0.025, "system": 0.025, "total": 0.1},
              "speedup": 40.0}]}"#;
        assert!(run(missing_scaling).unwrap_err().contains("scaling"));
    }

    #[test]
    fn skipped_scaling_rows_accepted_on_small_hosts_only() -> Result<(), String> {
        // A 1-core host records skipped scaling rows: structurally valid.
        let summary = run(&sample_full(55.0, 2.5, true, 1, true, 3.4, true))?;
        assert!(summary.contains("scaling timings skipped"), "{summary}");
        // The same skipped rows on a gated machine mean the file is stale.
        let err = run(&sample_full(55.0, 2.5, true, 8, true, 3.4, true)).unwrap_err();
        assert!(err.contains("stale"), "{err}");
        Ok(())
    }

    #[test]
    fn skipped_scaling_row_requires_reason() {
        let report = sample_full(55.0, 2.5, true, 1, true, 3.4, true).replace(
            ", \"reason\": \"thread-scaling timings need >= 4 cores, host has 1\"",
            "",
        );
        let err = run(&report).unwrap_err();
        assert!(err.contains("missing `reason`"), "{err}");
    }

    #[test]
    fn slow_kernel_fails_on_gated_machines_only() -> Result<(), String> {
        let err = run(&sample_full(55.0, 2.5, true, 8, false, 1.4, true)).unwrap_err();
        assert!(err.contains("below the 2x gate"), "{err}");
        // Recorded but not gated on a small host.
        let summary = run(&sample_full(55.0, 2.5, true, 1, true, 1.4, true))?;
        assert!(summary.contains("1.40x"), "{summary}");
        Ok(())
    }

    #[test]
    fn kernel_identity_flag_must_hold() {
        let err = run(&sample_full(55.0, 2.5, true, 8, false, 3.4, false)).unwrap_err();
        assert!(err.contains("bitwise-pinned"), "{err}");
    }

    #[test]
    fn missing_kernels_section_fails() {
        let report = sample(55.0, 2.5, true, 8);
        let stripped = report
            .split("  \"kernels\": [")
            .next()
            .map(|head| format!("{}  \"kernels\": []\n}}", head))
            .unwrap_or_default();
        let err = run(&stripped).unwrap_err();
        assert!(err.contains("kernels"), "{err}");
    }
}
