//! Closed-loop latency-curve load generator for `stco-serve`.
//!
//! ```text
//! stco_loadgen                              # self-host a demo server and sweep it
//! stco_loadgen --addr HOST:PORT MODEL_ID   # sweep an already-running server
//! stco_loadgen --steps 8,16,32 --requests 64 --warmup 8 --out curve.json
//! stco_loadgen --max-conns 128             # truncate the sweep at 128 connections
//! ```
//!
//! Each step runs `--requests` measured predictions *per connection*
//! (after `--warmup` discarded warmup predictions per connection, so
//! every step measures steady state rather than connection-setup
//! transients) through N closed-loop workers — own TCP connection
//! each — and prints offered vs achieved throughput with exact
//! client-side p50/p99 plus the typed-shed count, cross-referenced
//! against the server's rolling `serve.latency_seconds` window fetched
//! over the `metrics` op. `--out` writes the `stco-serving-curve/v2`
//! document (schema-validated before writing).
//!
//! Self-hosted runs honour `STCO_THREADS` for the forward pool and
//! `STCO_SHARDS` for the worker-shard count, like the server binary.

use stco_par::ParConfig;
use stco_serve::demo::{demo_graph, demo_key, train_demo_model, DEMO_CELLS};
use stco_serve::loadgen::{run_sweep, sweep_to_json, SweepConfig};
use stco_serve::service::{BatchConfig, ModelService, PredictInput};
use stco_serve::{Client, TcpServer};
use stco_store::Registry;
use stco_surrogate::cell_model::{CellModel, METRICS};

const DEFAULT_STEPS: [usize; 7] = [8, 16, 32, 64, 128, 256, 512];
const DEFAULT_REQUESTS_PER_CONN: usize = 32;
const DEFAULT_WARMUP_PER_CONN: usize = 8;

struct Args {
    addr: Option<String>,
    model: Option<String>,
    steps: Vec<usize>,
    requests_per_conn: usize,
    warmup_per_conn: usize,
    max_conns: Option<usize>,
    deadline_ms: u64,
    out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        model: None,
        steps: DEFAULT_STEPS.to_vec(),
        requests_per_conn: DEFAULT_REQUESTS_PER_CONN,
        warmup_per_conn: DEFAULT_WARMUP_PER_CONN,
        max_conns: None,
        deadline_ms: 10_000,
        out: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "usage: stco_loadgen [--addr HOST:PORT MODEL_ID] [--steps N,N,...] \
             [--requests PER_CONN] [--warmup PER_CONN] [--max-conns N] \
             [--deadline-ms MS] [--out PATH]"
        );
        std::process::exit(2);
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                if i + 2 >= argv.len() {
                    usage();
                }
                args.addr = Some(argv[i + 1].clone());
                args.model = Some(argv[i + 2].clone());
                i += 3;
            }
            "--steps" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                let parsed: Option<Vec<usize>> = argv[i + 1]
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().ok().filter(|&n| n > 0))
                    .collect();
                match parsed {
                    Some(steps) if !steps.is_empty() => args.steps = steps,
                    _ => usage(),
                }
                i += 2;
            }
            "--requests" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                match argv[i + 1].parse::<usize>() {
                    Ok(n) if n > 0 => args.requests_per_conn = n,
                    _ => usage(),
                }
                i += 2;
            }
            "--warmup" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                match argv[i + 1].parse::<usize>() {
                    Ok(n) => args.warmup_per_conn = n,
                    Err(_) => usage(),
                }
                i += 2;
            }
            "--max-conns" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                match argv[i + 1].parse::<usize>() {
                    Ok(n) if n > 0 => args.max_conns = Some(n),
                    _ => usage(),
                }
                i += 2;
            }
            "--deadline-ms" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                match argv[i + 1].parse::<u64>() {
                    Ok(ms) => args.deadline_ms = ms,
                    Err(_) => usage(),
                }
                i += 2;
            }
            "--out" => {
                if i + 1 >= argv.len() {
                    usage();
                }
                args.out = Some(argv[i + 1].clone());
                i += 2;
            }
            _ => usage(),
        }
    }
    args
}

fn demo_inputs() -> Vec<PredictInput> {
    let all: Vec<usize> = (0..METRICS.len()).collect();
    DEMO_CELLS
        .iter()
        .map(|&kind| PredictInput::Cell {
            graph: demo_graph(kind),
            metrics: all.clone(),
        })
        .collect()
}

fn main() {
    let mut args = parse_args();
    if let Some(cap) = args.max_conns {
        args.steps.retain(|&c| c <= cap);
        if args.steps.is_empty() {
            eprintln!("--max-conns {cap} leaves no sweep steps");
            std::process::exit(2);
        }
    }

    // Self-host a demo server unless --addr points at a live one. The
    // server (and its scratch registry) lives for the whole sweep.
    let hosted = if args.addr.is_none() {
        let dir = std::env::temp_dir().join(format!("stco-loadgen-{}", std::process::id()));
        let registry = Registry::open(&dir).expect("open registry");
        let key = demo_key();
        let model = train_demo_model().expect("train demo model");
        registry.put(key, &model.to_artifact()).expect("export");
        let service = ModelService::start(Some(registry), BatchConfig::default());
        let server = TcpServer::start("127.0.0.1:0", service).expect("bind server");
        let addr = server.addr().to_string();
        let mut admin = Client::connect(&addr).expect("connect");
        let id = admin.load(CellModel::ARTIFACT_KIND, key).expect("load");
        println!(
            "self-hosting {id} on {addr} (STCO_THREADS={})",
            ParConfig::current().threads
        );
        Some((server, dir, addr, id))
    } else {
        None
    };
    let (addr, model_id) = match (&hosted, &args.addr, &args.model) {
        (Some((_, _, addr, id)), _, _) => (addr.clone(), id.clone()),
        (None, Some(addr), Some(model)) => (addr.clone(), model.clone()),
        _ => unreachable!("--addr always carries a model id"),
    };

    let sweep = SweepConfig {
        addr: addr.clone(),
        model: model_id,
        inputs: demo_inputs(),
        steps: args.steps.clone(),
        requests_per_conn: args.requests_per_conn,
        warmup_per_conn: args.warmup_per_conn,
        deadline_ms: Some(args.deadline_ms).filter(|&ms| ms > 0),
    };
    let steps = run_sweep(&sweep).expect("load sweep");

    println!(
        "{:>11} {:>8} {:>7} {:>6} {:>12} {:>12} {:>11} {:>11} {:>14}",
        "concurrency",
        "ok",
        "errors",
        "shed",
        "offered r/s",
        "achieved r/s",
        "p50 ms",
        "p99 ms",
        "server p99 ms"
    );
    for step in &steps {
        println!(
            "{:>11} {:>8} {:>7} {:>6} {:>12.0} {:>12.0} {:>11.3} {:>11.3} {:>14}",
            step.concurrency,
            step.ok,
            step.errors,
            step.shed,
            step.offered_rps,
            step.achieved_rps,
            step.client_p50_seconds * 1e3,
            step.client_p99_seconds * 1e3,
            step.server_window_p99_seconds
                .map_or("n/a".to_string(), |p| format!("{:.3}", p * 1e3)),
        );
    }

    if let Some(out) = &args.out {
        // The shard count comes from the live server, so remote sweeps
        // (--addr) record it faithfully too.
        let shards = Client::connect(&addr)
            .and_then(|mut c| c.stats())
            .map_or(1, |s| s.shards.max(1));
        let doc = sweep_to_json(ParConfig::current().threads, shards, false, &steps);
        // Single steps (or user-chosen step lists) are fine here; only
        // monotone concurrency and field consistency are enforced.
        stco_bench::validate_serving_curve(&doc, 1).expect("serving curve schema");
        std::fs::write(out, doc.render() + "\n").expect("write sweep JSON");
        println!("wrote {out}");
    }

    if let Some((server, dir, addr, _)) = hosted {
        let mut admin = Client::connect(&addr).expect("connect");
        admin.shutdown().expect("shutdown");
        server.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
