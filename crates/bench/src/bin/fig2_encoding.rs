//! Fig. 2 regenerator: the unified device encoding over a FEM mesh —
//! dumps the graph statistics, the feature layout and sample node/edge
//! vectors for one simulated CNT device.

use stco_bench::banner;
use stco_surrogate::encoding::{encode_device, TaskFeatures, EDGE_DIM, NODE_DIM};
use stco_tcad::dataset::generate_dataset;
use stco_tcad::materials::{ChannelParams, Material, Technology};
use stco_tcad::mesh::Region;

fn main() {
    banner("Fig. 2: unified device encoding");
    let sample = &generate_dataset(7, 1, &[Technology::Cnt]).expect("device")[0];
    println!(
        "device: {} channel, L = {:.2} um, tox = {:.0} nm, bias (Vg {:.2} V, Vd {:.2} V)",
        sample.spec.channel.technology,
        sample.spec.channel_length * 1e6,
        sample.spec.oxide_thickness * 1e9,
        sample.bias.gate,
        sample.bias.drain
    );

    println!("\nnode feature layout ({NODE_DIM} slots):");
    println!(
        "  [0..{})    material one-hot ({} classes)",
        Material::NUM_CLASSES,
        Material::NUM_CLASSES
    );
    let p0 = Material::NUM_CLASSES;
    println!("  [{p0}..{})  material parameter vector:", p0 + 12);
    for (i, name) in ChannelParams::PARAM_NAMES.iter().enumerate() {
        println!("      slot {:>2}: {name}", p0 + i);
    }
    let r0 = p0 + 12;
    println!(
        "  [{r0}..{})  region one-hot ({} classes)",
        r0 + Region::NUM_CLASSES,
        Region::NUM_CLASSES
    );
    let a0 = r0 + Region::NUM_CLASSES;
    println!(
        "  [{a0}..{})  device-level attributes: x/L, y/stack, Vg, Vd, quasi-Fermi",
        a0 + 5
    );
    println!(
        "  [{}..{NODE_DIM})  task-specific self-consistent: log-charge, potential",
        a0 + 5
    );
    println!("edge features ({EDGE_DIM}): dx/L, dy/stack, ln(coupling)");

    for (task, name) in [
        (TaskFeatures::Poisson, "Poisson emulator"),
        (TaskFeatures::Iv, "IV predictor"),
        (TaskFeatures::None, "ablation (no self-consistent)"),
    ] {
        let g = encode_device(sample, task);
        println!(
            "\n{name}: {} nodes x {} features, {} directed edges",
            g.num_nodes(),
            g.node_features.cols(),
            g.num_edges()
        );
        // Show one channel node's vector.
        let mesh = sample.device.mesh();
        let node = (0..g.num_nodes())
            .find(|&i| mesh.region(i) == Region::Channel)
            .expect("channel node");
        let row = g.node_features.row(node);
        let (x, y) = mesh.position(node);
        println!(
            "  sample channel node at ({:.2} um, {:.0} nm): {:?}",
            x * 1e6,
            y * 1e9,
            row.iter()
                .map(|v| (v * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
}
