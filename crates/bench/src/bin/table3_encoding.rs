//! Table III regenerator: prints the node-feature vector definition and
//! the concrete feature matrix for representative cells, verifying the
//! encoding against the paper's specification row by row.

use stco_bench::banner;
use stco_cells::encode::{encode_cell, CellNodeKind, EncodingContext, FEATURE_NAMES};
use stco_cells::library::{CellKind, CellType};
use stco_compact::tech::TechnologyCard;
use stco_tcad::materials::Technology;

fn main() {
    banner("Table III: node feature vector definition");
    println!("{:<6} {:<24} populated for", "bit", "slot");
    let populated = [
        "VDD, VSS",
        "OUT, N-FET, P-FET",
        "IN, N-FET, P-FET, VSS",
        "N-FET (-1), P-FET (+1)",
        "VDD (value)",
        "FETs (width, um)",
        "FETs (Cox, mF/m^2)",
        "FETs (Vth, V)",
        "IN (input slew, ns)",
        "OUT (output load, fF)",
        "IN (current state)",
        "IN (next state)",
    ];
    for (i, (name, pop)) in FEATURE_NAMES.iter().zip(populated).enumerate() {
        println!("{:<6} {:<24} {}", i, name, pop);
    }

    let card = TechnologyCard::reference(Technology::Ltps);
    for kind in [CellKind::Inv, CellKind::Nand2] {
        let cell = CellType::by_kind(kind);
        let built = cell.build(&card, 1.0);
        let mut ctx = EncodingContext::default();
        for pin in &cell.inputs {
            ctx.current_state.insert((*pin).to_string(), 0.0);
            ctx.next_state.insert((*pin).to_string(), 1.0);
            ctx.input_slew.insert((*pin).to_string(), 2.0e-9);
        }
        for pin in &cell.outputs {
            ctx.output_load.insert((*pin).to_string(), 10.0e-15);
        }
        let graph = encode_cell(&built, &ctx);
        banner(&format!("{} feature matrix", cell.name));
        print!("{:<16}", "node");
        for i in 0..FEATURE_NAMES.len() {
            print!(" {:>7}", format!("b{i}"));
        }
        println!("  kind");
        for i in 0..graph.num_nodes() {
            print!("{:<16.16}", graph.labels[i]);
            for v in graph.feature_row(i) {
                print!(" {:>7.2}", v);
            }
            let kind = match graph.kinds[i] {
                CellNodeKind::Input => "IN",
                CellNodeKind::Output => "OUT",
                CellNodeKind::NFet => "N-FET",
                CellNodeKind::PFet => "P-FET",
                CellNodeKind::Vdd => "VDD",
                CellNodeKind::Vss => "VSS",
            };
            println!("  {kind}");
        }
        println!(
            "nodes: {}, directed edges: {}",
            graph.num_nodes(),
            graph.edges.len()
        );
    }
}
