//! RL ablation bench: sample efficiency of Q-learning versus random
//! search versus exhaustive grid search on the technology design space,
//! using the analytic PPA proxy (instant per-corner cost) so the
//! comparison isolates the explorers themselves.

use stco_bench::{banner, TraceSession};
use stco_compact::tech::{Corner, TechnologyCard};
use stco_core::rl::{grid_search, q_learning_explore, random_search, AgentConfig};
use stco_core::space::DesignSpace;
use stco_tcad::materials::Technology;

/// Analytic PPA proxy with a timing-constraint cliff: corners whose
/// delay misses the target take a large penalty, as real sign-off does.
/// The cliff makes the landscape non-smooth — the regime where a learner
/// that exploits local structure beats uniform sampling.
fn ppa_proxy(base: &TechnologyCard, corner: Corner) -> f64 {
    let card = base.at_corner(corner);
    let ion = card.nfet.on_current(card.vdd).max(1e-15);
    let cload = 20.0e-15 * corner.cox_scale;
    let delay = cload * card.vdd / ion;
    let leak = card.nfet.off_current(card.vdd) * card.vdd;
    let dynamic = cload * card.vdd * card.vdd / delay * 0.1;
    let mut cost = (delay.ln() + (leak + dynamic).ln() + corner.cox_scale.ln()) / 3.0;
    // Timing sign-off: delay worse than 60 ns fails the constraint.
    if delay > 60.0e-9 {
        cost += 2.0 + (delay / 60.0e-9).ln();
    }
    cost
}

fn main() {
    let trace = TraceSession::start("ablation_rl");
    banner("RL ablation: explorer sample efficiency");
    let base = TechnologyCard::reference(Technology::Ltps);
    for levels in [4, 6, 8] {
        let space = DesignSpace::new(levels);
        let grid = grid_search(&space, |c| ppa_proxy(&base, c));
        let mut rl_evals = Vec::new();
        let mut rl_gap = Vec::new();
        let mut rand_gap = Vec::new();
        for seed in 0..5u64 {
            let rl = q_learning_explore(
                &space,
                &AgentConfig {
                    seed: 100 + seed,
                    episodes: 5 * levels,
                    steps_per_episode: 3 * levels,
                    ..AgentConfig::default()
                },
                |c| ppa_proxy(&base, c),
            );
            let rand = random_search(&space, rl.evaluations, 200 + seed, |c| ppa_proxy(&base, c));
            rl_evals.push(rl.evaluations as f64);
            rl_gap.push(rl.best_cost - grid.best_cost);
            rand_gap.push(rand.best_cost - grid.best_cost);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "space {0}^3 = {1:>4} corners | grid: {1} evals (exact) | rl: {2:>5.1} evals, gap {3:+.4} | random (same budget): gap {4:+.4}",
            levels,
            space.size(),
            mean(&rl_evals),
            mean(&rl_gap),
            mean(&rand_gap)
        );
    }
    println!("\nexpected shape: both samplers reach (near-)optimal corners with a");
    println!("fraction of the exhaustive budget; the RL agent additionally learns a");
    println!("*policy* over moves — the asset the paper's framework carries across");
    println!("benchmarks, where each corner evaluation costs a full system run.");

    if let Some(t) = trace {
        let (profile, path) = t.finish();
        banner("Profile (folded from the recorded trace)");
        print!("{}", profile.to_markdown());
        println!("\ntrace: {}", path.display());
    }
}
