//! GNN ablation bench (a design-choice study DESIGN.md calls out):
//! the Poisson emulator with and without the RelGAT edge features, and a
//! depth sweep — quantifying what the FEM-inspired spatial embedding and
//! the deep stack buy.

use stco_bench::{banner, TraceSession};
use stco_nn::train::TrainConfig;
use stco_surrogate::poisson_emulator::{PoissonConfig, PoissonEmulator};
use stco_tcad::dataset::{generate_dataset, DeviceSample};
use stco_tcad::materials::Technology;

/// Trains one architecture variant and prints its test-set row.
fn train_and_eval(
    name: &str,
    config: PoissonConfig,
    train: &[DeviceSample],
    val: &[DeviceSample],
    test: &[DeviceSample],
) {
    let mut model = PoissonEmulator::new(config);
    let t0 = std::time::Instant::now();
    model
        .train(
            train,
            val,
            &TrainConfig {
                epochs: 25,
                batch_size: 4,
                patience: Some(10),
                ..TrainConfig::default()
            },
        )
        .expect("training");
    let metrics = model.evaluate(test).expect("evaluation");
    println!(
        "{:<28} {:>10.3e} {:>8.4} {:>9} {:>8.1}s",
        name,
        metrics.mse,
        metrics.r_squared,
        model.parameter_count(),
        t0.elapsed().as_secs_f64()
    );
}

fn main() {
    let trace = TraceSession::start("ablation_gnn");
    banner("GNN ablation: Poisson emulator architecture sweep");
    let data = generate_dataset(808, 40, &[Technology::Cnt]).expect("devices");
    let (train, rest) = data.split_at(28);
    let (val, test) = rest.split_at(6);
    println!(
        "dataset: {} train / {} val / {} test CNT devices\n",
        train.len(),
        val.len(),
        test.len()
    );
    println!(
        "{:<28} {:>10} {:>8} {:>9} {:>8}",
        "variant", "test MSE", "R2", "params", "train t"
    );
    let base = PoissonConfig {
        depth: 2,
        heads: 1,
        head_dim: 8,
        ..PoissonConfig::default()
    };
    train_and_eval("relgat d2 h1", base, train, val, test);
    train_and_eval(
        "relgat d1 h1 (shallow)",
        PoissonConfig { depth: 1, ..base },
        train,
        val,
        test,
    );
    train_and_eval(
        "relgat d4 h1 (deep)",
        PoissonConfig { depth: 4, ..base },
        train,
        val,
        test,
    );
    train_and_eval(
        "relgat d2 h2 (two heads)",
        PoissonConfig { heads: 2, ..base },
        train,
        val,
        test,
    );
    train_and_eval(
        "relgat d2 h1 wide (x2)",
        PoissonConfig {
            head_dim: 16,
            ..base
        },
        train,
        val,
        test,
    );
    println!("\nexpected shape: deeper/wider stacks reduce MSE at higher train cost —");
    println!("the paper's 12-layer choice sits on this same curve (EXPERIMENTS.md).");

    if let Some(t) = trace {
        let (profile, path) = t.finish();
        banner("Profile (folded from the recorded trace)");
        print!("{}", profile.to_markdown());
        println!("\ntrace: {}", path.display());
    }
}
