//! Table I regenerator: per-benchmark runtime of the traditional versus
//! fast STCO iteration.
//!
//! Prints three views:
//!
//! 1. **measured** — both flows timed end to end on our substrates for a
//!    subset of benchmarks (all ten with `STCO_SCALE=paper`);
//! 2. **calibrated/paper** — the paper's technology-stage constants with
//!    the paper's reported system-evaluation seconds (sanity check: must
//!    reproduce the published 1.9×–14.1× column);
//! 3. **calibrated/measured** — paper constants composed with *our*
//!    measured system-evaluation seconds (scaled so the largest matches),
//!    showing the crossover emerges from design size alone.

use std::time::Instant;

use stco_bench::{banner, fmt_seconds, paper_scale, TraceSession};
use stco_cells::charac::CharConfig;
use stco_cells::encode::{encode_cell, CellGraph, EncodingContext};
use stco_compact::tech::Corner;
use stco_core::flow::StageSeconds;
use stco_core::flow::{FlowConfig, StcoFlow, TechnologyStage, TrainedSurrogates};
use stco_core::speedup::{calibrated_from_measured, calibrated_rows, paper_table1, MeasuredRow};
use stco_nn::train::TrainConfig;
use stco_numerics::Matrix;
use stco_par::{set_global_threads, ParConfig};
use stco_surrogate::cell_model::{BatchedCellGraph, CellModel, CellModelConfig};
use stco_surrogate::iv_predictor::{IvConfig, IvPredictor};
use stco_surrogate::pipeline::build_cell_dataset;
use stco_surrogate::poisson_emulator::{PoissonConfig, PoissonEmulator};
use stco_system::bench_gen::Benchmark;
use stco_system::ppa::{evaluate_system, EvalConfig};
use stco_tcad::dataset::generate_dataset;
use stco_tcad::materials::Technology;

/// Measured thread-scaling of one parallel hot path.
struct ScalingRow {
    stage: &'static str,
    serial_seconds: f64,
    parallel_seconds: f64,
}

impl ScalingRow {
    fn speedup(&self) -> f64 {
        self.serial_seconds / self.parallel_seconds.max(1e-12)
    }
}

/// Times `work` at 1 thread and at `threads`, asserting via `fingerprint`
/// that both runs produce identical outputs (the determinism contract of
/// stco-par makes this an equality, not a tolerance).
fn time_scaling<T>(
    stage: &'static str,
    threads: usize,
    work: impl Fn() -> T,
    fingerprint: impl Fn(&T) -> Vec<u64>,
) -> ScalingRow {
    set_global_threads(1);
    let t0 = Instant::now();
    let serial = work();
    let serial_seconds = t0.elapsed().as_secs_f64();
    set_global_threads(threads);
    let t0 = Instant::now();
    let parallel = work();
    let parallel_seconds = t0.elapsed().as_secs_f64();
    set_global_threads(0);
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "{stage}: outputs differ between 1 and {threads} threads"
    );
    ScalingRow {
        stage,
        serial_seconds,
        parallel_seconds,
    }
}

/// One measured single-thread kernel optimization: a baseline
/// implementation against its drop-in replacement, with a bitwise
/// output-identity verdict (DESIGN.md §15).
struct KernelRow {
    name: &'static str,
    baseline_seconds: f64,
    optimized_seconds: f64,
    identical_outputs: bool,
}

impl KernelRow {
    fn speedup(&self) -> f64 {
        self.baseline_seconds / self.optimized_seconds.max(1e-12)
    }
}

/// Times `baseline` and `optimized` over `reps` calls each after one
/// warmup, comparing their outputs bitwise via `fingerprint`.
fn time_kernel<T>(
    name: &'static str,
    reps: usize,
    baseline: impl Fn() -> T,
    optimized: impl Fn() -> T,
    fingerprint: impl Fn(&T) -> Vec<u64>,
) -> KernelRow {
    let identical = fingerprint(&baseline()) == fingerprint(&optimized());
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(baseline());
    }
    let baseline_seconds = t0.elapsed().as_secs_f64() / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(optimized());
    }
    let optimized_seconds = t0.elapsed().as_secs_f64() / reps as f64;
    KernelRow {
        name,
        baseline_seconds,
        optimized_seconds,
        identical_outputs: identical,
    }
}

/// Encodes cell graphs for the batched-forward kernel row, cycling
/// (kind, corner) pairs until `n` graphs exist.
fn encoded_graphs(n: usize) -> Vec<CellGraph> {
    let base = stco_compact::tech::TechnologyCard::reference(Technology::Ltps);
    let corners = stco_compact::tech::CornerGrid::default().corners(4);
    let kinds = [
        stco_cells::library::CellKind::Inv,
        stco_cells::library::CellKind::Nand2,
        stco_cells::library::CellKind::Nor2,
    ];
    let mut out = Vec::with_capacity(n);
    'outer: loop {
        for &kind in &kinds {
            let cell = stco_cells::library::CellType::by_kind(kind);
            for corner in &corners {
                if out.len() == n {
                    break 'outer;
                }
                let card = base.at_corner(*corner);
                let built = cell.build(&card, 1.0);
                let mut ctx = EncodingContext::default();
                for pin in &cell.inputs {
                    ctx.input_slew.insert((*pin).to_string(), 2.0e-9);
                    ctx.current_state.insert((*pin).to_string(), 0.0);
                    ctx.next_state.insert((*pin).to_string(), 1.0);
                }
                for pin in &cell.outputs {
                    ctx.output_load
                        .insert((*pin).to_string(), 10.0e-15 * corner.cox_scale);
                }
                out.push(encode_cell(&built, &ctx));
            }
        }
    }
    out
}

/// Measures the two tentpole kernel optimizations at their serving
/// shapes: the three blocked GEMM variants (aggregate) at the batched
/// GAT trunk shape `2048×32×32`, and the packed batched forward against
/// looped `predict_many` at batch 32.
fn measure_kernels() -> Vec<KernelRow> {
    let mut rng = stco_numerics::rng::Xorshift::new(4242);
    let (m, k, n) = (2048usize, 32usize, 32usize);
    let fill = |rows: usize, cols: usize, rng: &mut stco_numerics::rng::Xorshift| {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| rng.uniform_in(-1.0, 1.0))
                .collect(),
        )
    };
    let a = fill(m, k, &mut rng);
    let b = fill(k, n, &mut rng);
    let g = fill(m, n, &mut rng);
    let at = fill(k, m, &mut rng); // k×m storage for the TN variant
    let gemm_row = time_kernel(
        "blocked_gemm_2048x32x32",
        40,
        || {
            let mut nn = Matrix::zeros(m, n);
            a.gemm_into_naive(&b, &mut nn);
            let mut nt = Matrix::zeros(m, k);
            g.gemm_nt_into_naive(&b, &mut nt);
            let mut tn = Matrix::zeros(m, n);
            at.gemm_tn_into_naive(&b, &mut tn);
            (nn, nt, tn)
        },
        || {
            let mut nn = Matrix::zeros(m, n);
            a.gemm_into_blocked(&b, &mut nn);
            let mut nt = Matrix::zeros(m, k);
            g.gemm_nt_into_blocked(&b, &mut nt);
            let mut tn = Matrix::zeros(m, n);
            at.gemm_tn_into_blocked(&b, &mut tn);
            (nn, nt, tn)
        },
        |(nn, nt, tn)| {
            nn.as_slice()
                .iter()
                .chain(nt.as_slice())
                .chain(tn.as_slice())
                .map(|v| v.to_bits())
                .collect()
        },
    );

    const BATCH: usize = 32;
    let graphs = encoded_graphs(BATCH);
    let refs: Vec<&CellGraph> = graphs.iter().collect();
    let metrics: Vec<usize> = (0..stco_surrogate::cell_model::METRICS.len()).collect();
    let lists: Vec<&[usize]> = (0..BATCH).map(|_| metrics.as_slice()).collect();
    let model = CellModel::new(CellModelConfig::default());
    let forward_row = time_kernel(
        "batched_forward_32",
        20,
        || {
            refs.iter()
                .map(|graph| model.predict_many(graph, &metrics))
                .collect::<Vec<Vec<f64>>>()
        },
        || {
            let batch = BatchedCellGraph::pack(&refs);
            model.predict_batch(&batch, &lists)
        },
        |rows| rows.iter().flatten().map(|v| v.to_bits()).collect(),
    );
    vec![gemm_row, forward_row]
}

fn json_stage(s: &StageSeconds) -> String {
    format!(
        "{{\"device\": {:.6}, \"compact\": {:.6}, \"cells\": {:.6}, \"system\": {:.6}, \"total\": {:.6}}}",
        s.device,
        s.compact,
        s.cells,
        s.system,
        s.total()
    )
}

/// Writes the machine-readable companion of the printed table to
/// `BENCH_table1.json` at the repository root.
///
/// Scaling rows carry a `"status"` field: `"measured"` when the host
/// has at least 4 cores (so the timings are meaningful), `"skipped"`
/// otherwise — the outputs are still verified identical, but no timing
/// claim is recorded for a core-starved host.
fn write_bench_json(
    rows: &[(String, StageSeconds, StageSeconds, f64)],
    scaling: &[ScalingRow],
    kernels: &[KernelRow],
) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_table1.json");
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"threads\": {},\n  \"available_parallelism\": {},\n",
        ParConfig::current().threads,
        cores
    ));
    out.push_str("  \"benchmarks\": [\n");
    let bench_rows: Vec<String> = rows
        .iter()
        .map(|(name, trad, fast, speedup)| {
            format!(
                "    {{\"name\": \"{name}\", \"traditional\": {}, \"fast\": {}, \"speedup\": {speedup:.3}}}",
                json_stage(trad),
                json_stage(fast)
            )
        })
        .collect();
    out.push_str(&bench_rows.join(",\n"));
    out.push_str("\n  ],\n  \"scaling\": [\n");
    let scaling_rows: Vec<String> = scaling
        .iter()
        .map(|r| {
            if cores >= 4 {
                format!(
                    "    {{\"stage\": \"{}\", \"status\": \"measured\", \"serial_seconds\": {:.6}, \"parallel_seconds\": {:.6}, \"speedup\": {:.3}, \"identical_outputs\": true}}",
                    r.stage,
                    r.serial_seconds,
                    r.parallel_seconds,
                    r.speedup()
                )
            } else {
                format!(
                    "    {{\"stage\": \"{}\", \"status\": \"skipped\", \"reason\": \"thread-scaling timings need >= 4 cores, host has {cores}\", \"identical_outputs\": true}}",
                    r.stage
                )
            }
        })
        .collect();
    out.push_str(&scaling_rows.join(",\n"));
    out.push_str("\n  ],\n  \"kernels\": [\n");
    let kernel_rows: Vec<String> = kernels
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"baseline_seconds\": {:.6}, \"optimized_seconds\": {:.6}, \"speedup\": {:.3}, \"identical_outputs\": {}}}",
                r.name,
                r.baseline_seconds,
                r.optimized_seconds,
                r.speedup(),
                r.identical_outputs
            )
        })
        .collect();
    out.push_str(&kernel_rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_table1.json");
    println!("\nwrote {path}");
}

/// Trains (or cache-loads) the surrogate bundle the fast flow uses.
///
/// Every cache key is a pure function of the configs below, so a second
/// run with identical configs loads all three artifacts and performs
/// zero training steps; `--no-cache` (registry = `None`) forces the
/// full retrain. The device dataset and the SPICE cell characterization
/// are only generated when at least one model actually needs training.
fn train_bundle(
    flow: &StcoFlow,
    char_config: &CharConfig,
    registry: Option<&stco_store::Registry>,
) -> TrainedSurrogates {
    const DATASET_SPEC: &str = "table1 dataset seed=505 n=12 tech=Ltps split=10";
    let schedule = TrainConfig {
        epochs: 15,
        batch_size: 2,
        patience: None,
        ..TrainConfig::default()
    };
    let poisson_config = PoissonConfig {
        depth: 2,
        heads: 1,
        head_dim: 8,
        ..PoissonConfig::default()
    };
    let iv_config = IvConfig {
        depth: 2,
        head_dim: 8,
        mlp_hidden: 12,
        ..IvConfig::default()
    };
    let poisson_key = stco_store::ArtifactKey::from_parts(
        PoissonEmulator::ARTIFACT_KIND,
        &[
            DATASET_SPEC,
            &format!("{poisson_config:?}"),
            &format!("{schedule:?}"),
        ],
    );
    let iv_key = stco_store::ArtifactKey::from_parts(
        IvPredictor::ARTIFACT_KIND,
        &[
            DATASET_SPEC,
            &format!("{iv_config:?}"),
            &format!("{schedule:?}"),
        ],
    );
    let cell_config = CellModelConfig::default();
    let cell_schedule = TrainConfig {
        epochs: 25,
        batch_size: 16,
        patience: None,
        ..TrainConfig::default()
    };
    let corners = [Corner::nominal(2.5), Corner::nominal(3.5)];
    let cell_names: Vec<&str> = flow.cells().iter().map(|c| c.name).collect();
    let cell_key = stco_store::ArtifactKey::from_parts(
        CellModel::ARTIFACT_KIND,
        &[
            "table1 base=Ltps-reference",
            &format!("{cell_config:?}"),
            &format!("{cell_schedule:?}"),
            &format!("{char_config:?}"),
            &format!("{corners:?}"),
            &cell_names.join(","),
        ],
    );

    let load = |kind: &str, key: stco_store::ArtifactKey| {
        registry.and_then(|reg| reg.load(kind, key).expect("artifact cache read"))
    };
    let mut poisson = load(PoissonEmulator::ARTIFACT_KIND, poisson_key)
        .map(|a| PoissonEmulator::from_artifact(&a).expect("rehydrate poisson"));
    let mut iv = load(IvPredictor::ARTIFACT_KIND, iv_key)
        .map(|a| IvPredictor::from_artifact(&a).expect("rehydrate iv"));
    let mut cells = load(CellModel::ARTIFACT_KIND, cell_key)
        .map(|a| CellModel::from_artifact(&a).expect("rehydrate cell model"));

    if poisson.is_none() || iv.is_none() {
        let data = generate_dataset(505, 12, &[Technology::Ltps]).expect("devices");
        let (train, val) = data.split_at(10);
        if poisson.is_none() {
            let mut model = PoissonEmulator::new(poisson_config);
            model.train(train, val, &schedule).expect("poisson");
            if let Some(reg) = registry {
                reg.put(poisson_key, &model.to_artifact())
                    .expect("cache poisson");
            }
            poisson = Some(model);
        }
        if iv.is_none() {
            let mut model = IvPredictor::new(iv_config);
            model.train(train, val, &schedule).expect("iv");
            if let Some(reg) = registry {
                reg.put(iv_key, &model.to_artifact()).expect("cache iv");
            }
            iv = Some(model);
        }
    }
    if cells.is_none() {
        let base = stco_compact::tech::TechnologyCard::reference(Technology::Ltps);
        let samples =
            build_cell_dataset(&base, &corners, flow.cells(), char_config).expect("cell ds");
        let mut model = CellModel::new(cell_config);
        model
            .train(&samples, &[], &cell_schedule)
            .expect("cell model");
        if let Some(reg) = registry {
            reg.put(cell_key, &model.to_artifact())
                .expect("cache cell model");
        }
        cells = Some(model);
    }
    TrainedSurrogates {
        poisson: poisson.expect("poisson trained or loaded"),
        iv: iv.expect("iv trained or loaded"),
        cells: cells.expect("cell model trained or loaded"),
    }
}

/// Checks that the per-stage seconds folded from the recorded trace
/// agree with the seconds printed in the table (same clock reading, so
/// the tolerance is far looser than the actual agreement).
fn verify_trace_agreement(trace: &TraceSession, mark: usize, label: &str, printed: &StageSeconds) {
    let profile = trace.profile_since(mark);
    for (stage, seconds) in [
        ("device", printed.device),
        ("compact", printed.compact),
        ("cells", printed.cells),
        ("system", printed.system),
    ] {
        let folded = profile.total_of(&format!("flow.stage{{stage={stage}}}"));
        let rel = (folded - seconds).abs() / seconds.abs().max(1e-9);
        assert!(
            rel < 0.01,
            "{label}/{stage}: folded {folded:.6} s vs printed {seconds:.6} s ({:.3}% off)",
            rel * 100.0
        );
    }
}

fn main() {
    let trace = TraceSession::start("table1_runtime");
    let registry = stco_bench::artifact_registry();
    let measured_set: Vec<Benchmark> = if paper_scale() {
        Benchmark::ALL.to_vec()
    } else {
        vec![Benchmark::S298, Benchmark::S1488]
    };

    banner("Table I view 1: measured on our substrates");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
        "benchmark", "sys-eval", "trad tech", "fast tech", "trad tot", "speedup", "tech x"
    );
    let mut measured_sys: Vec<(Benchmark, f64)> = Vec::new();
    let mut json_rows: Vec<(String, StageSeconds, StageSeconds, f64)> = Vec::new();
    for &bench in &measured_set {
        let config = FlowConfig::fast(Technology::Ltps, bench);
        let char_config = config.char_config.clone();
        let flow = StcoFlow::new(config).expect("flow");
        let cache_before = stco_bench::cache_counters();
        let surrogates = train_bundle(&flow, &char_config, registry.as_ref());
        stco_bench::report_cache_delta(&format!("{}/surrogates", bench.name()), cache_before);
        let corner = Corner::nominal(3.0);
        let trad_mark = trace.as_ref().map(|t| t.mark());
        let trad = flow
            .run_iteration(corner, TechnologyStage::Traditional, None)
            .expect("traditional");
        if let Some(t) = trace.as_ref() {
            verify_trace_agreement(
                t,
                trad_mark.expect("marked"),
                &format!("{}/traditional", bench.name()),
                &trad.seconds,
            );
        }
        let fast_mark = trace.as_ref().map(|t| t.mark());
        let fast = flow
            .run_iteration(corner, TechnologyStage::Fast, Some(&surrogates))
            .expect("fast");
        if let Some(t) = trace.as_ref() {
            verify_trace_agreement(
                t,
                fast_mark.expect("marked"),
                &format!("{}/fast", bench.name()),
                &fast.seconds,
            );
        }
        let row = MeasuredRow::from_results(bench, &trad, &fast).expect("one result per flow");
        println!(
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>8.1}x {:>8.1}x",
            row.benchmark,
            fmt_seconds(row.traditional.system),
            fmt_seconds(row.traditional.technology()),
            fmt_seconds(row.fast.technology()),
            fmt_seconds(row.traditional.total()),
            row.speedup(),
            row.technology_speedup(),
        );
        measured_sys.push((bench, row.traditional.system));
        json_rows.push((
            bench.name().to_string(),
            trad.seconds,
            fast.seconds,
            row.speedup(),
        ));
    }

    banner("Table I view 2: calibrated with the paper's system-eval seconds");
    println!(
        "{:<12} {:>10} {:>12} {:>10} {:>9} {:>9}",
        "benchmark", "sys-eval", "traditional", "ours", "speedup", "paper"
    );
    let sys: Vec<(Benchmark, f64)> = paper_table1().iter().map(|(b, s, _)| (*b, *s)).collect();
    for (row, (_, _, paper)) in calibrated_rows(&sys).iter().zip(paper_table1()) {
        println!(
            "{:<12} {:>9.0}s {:>11.0}s {:>9.0}s {:>8.1}x {:>8.1}x",
            row.benchmark, row.system_eval, row.traditional, row.ours, row.speedup, paper
        );
    }

    banner("Table I view 3: calibrated with OUR measured system-eval seconds");
    // One shared library (the union of all benchmarks' cells) is
    // characterized once; only the system evaluations are timed.
    let card = stco_compact::tech::TechnologyCard::reference(Technology::Ltps);
    let mut kinds = Vec::new();
    for bench in Benchmark::ALL {
        let mapped = stco_system::mapper::map_netlist(&bench.generate()).expect("maps");
        kinds.extend(stco_system::ppa::used_cells(&mapped));
    }
    kinds.sort_unstable();
    kinds.dedup();
    let cells: Vec<stco_cells::library::CellType> = kinds
        .into_iter()
        .map(stco_cells::library::CellType::by_kind)
        .collect();
    let lib = stco_cells::liberty::Library::characterize_subset(
        &card,
        &stco_bench::bench_char_config(),
        &cells,
    )
    .expect("library");
    let mut all_measured = Vec::new();
    for bench in Benchmark::ALL {
        let logic = bench.generate();
        let t0 = std::time::Instant::now();
        let _ = evaluate_system(&logic, &lib, &EvalConfig::fast()).expect("evaluates");
        all_measured.push((bench, t0.elapsed().as_secs_f64()));
    }
    println!(
        "{:<12} {:>12} {:>12} {:>10} {:>9}",
        "benchmark", "sys (ours)", "traditional", "ours", "speedup"
    );
    for row in calibrated_from_measured(&all_measured) {
        println!(
            "{:<12} {:>11.0}s {:>11.0}s {:>9.0}s {:>8.1}x",
            row.benchmark, row.system_eval, row.traditional, row.ours, row.speedup
        );
    }
    println!("\n(see EXPERIMENTS.md for the paper-vs-measured discussion)");

    banner("stco-par thread scaling (1 vs 4 threads, identical outputs)");
    let scaling_threads = 4usize;
    let scaling = vec![
        time_scaling(
            "dataset_generation",
            scaling_threads,
            || generate_dataset(606, 10, &[Technology::Ltps]).expect("scaling dataset"),
            |ds| {
                ds.iter()
                    .flat_map(|s| {
                        std::iter::once(s.current.to_bits())
                            .chain(s.solution.psi.iter().map(|p| p.to_bits()))
                    })
                    .collect()
            },
        ),
        time_scaling(
            "characterization",
            scaling_threads,
            || {
                stco_cells::liberty::Library::characterize_subset(
                    &card,
                    &stco_bench::bench_char_config(),
                    &cells,
                )
                .expect("scaling characterization")
            },
            |lib| {
                // Debug formatting prints f64 with shortest-roundtrip
                // precision, so hashing the bytes is a bit-exact fingerprint.
                let text = format!("{lib:?}");
                text.into_bytes().into_iter().map(u64::from).collect()
            },
        ),
    ];
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "{:<22} {:>10} {:>10} {:>9}",
        "stage", "1 thread", "4 threads", "speedup"
    );
    for row in &scaling {
        println!(
            "{:<22} {:>9.3}s {:>9.3}s {:>8.2}x",
            row.stage,
            row.serial_seconds,
            row.parallel_seconds,
            row.speedup()
        );
    }
    if cores >= 4 {
        for row in &scaling {
            assert!(
                row.speedup() >= 2.0,
                "{}: expected >= 2x speedup at 4 threads on a {cores}-core machine, got {:.2}x",
                row.stage,
                row.speedup()
            );
        }
        println!("speedup >= 2x at 4 threads verified on {cores} cores.");
    } else {
        println!(
            "(speedup assertion skipped: {cores} core(s) available; \
             scaling rows recorded as \"skipped\"; outputs verified identical)"
        );
    }

    banner("kernel optimizations (single thread, bitwise-identical outputs)");
    let kernels = measure_kernels();
    println!(
        "{:<26} {:>12} {:>12} {:>9} {:>10}",
        "kernel", "baseline", "optimized", "speedup", "identical"
    );
    for row in &kernels {
        println!(
            "{:<26} {:>11.6}s {:>11.6}s {:>8.2}x {:>10}",
            row.name,
            row.baseline_seconds,
            row.optimized_seconds,
            row.speedup(),
            row.identical_outputs
        );
        assert!(
            row.identical_outputs,
            "{}: optimized kernel must be bitwise-identical to its baseline",
            row.name
        );
    }
    if cores >= 4 {
        for row in &kernels {
            assert!(
                row.speedup() >= 2.0,
                "{}: expected >= 2x over the baseline on a {cores}-core machine, got {:.2}x",
                row.name,
                row.speedup()
            );
        }
        println!("kernel speedup >= 2x verified on {cores} cores.");
    } else {
        println!("(kernel speedup assertion skipped: {cores} core(s); timings recorded anyway)");
    }

    write_bench_json(&json_rows, &scaling, &kernels);

    if let Some(t) = trace {
        let (profile, path) = t.finish();
        banner("Profile (folded from the recorded trace)");
        let md = profile.to_markdown();
        print!("{md}");
        assert!(
            md.contains("tcad.newton_iter"),
            "profile must break down Newton iterations inside the TCAD stage"
        );
        assert!(
            md.contains("nn.epoch"),
            "profile must break down epochs inside surrogate training"
        );
        println!("\nper-stage agreement with the printed rows verified (<1%).");
        println!("trace: {}", path.display());
        banner("Metrics");
        print!("{}", stco_obs::Recorder::global().metrics().markdown());
    }
}
