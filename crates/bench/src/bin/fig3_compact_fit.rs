//! Fig. 3 regenerator: the unified compact model fitted to (synthetic)
//! measured transfer curves of the paper's three devices — CNT
//! (L 25 / W 125 µm), LTPS (16 / 40) and IGZO (20 / 30) — emitting the
//! full CSV series per panel plus the fit-quality summary.

use stco_bench::banner;
use stco_compact::extract::extract_parameters;
use stco_compact::measure::{synthesize_measurement, MeasuredDevice, MeasurementNoise};
use stco_compact::model::{CompactModel, DeviceType};

fn main() {
    banner("Fig. 3: unified TFT model vs measured I-V (synthetic measurements)");
    let noise = MeasurementNoise::default();
    let mut summary = Vec::new();
    for device in MeasuredDevice::fig3_devices() {
        let curves = synthesize_measurement(&device, &noise);
        let template = match device.true_model().device_type() {
            DeviceType::NType => CompactModel::ntype_reference(),
            DeviceType::PType => CompactModel::ptype_reference(),
        }
        .resized(device.width, device.length);
        let ex = extract_parameters(&template, &curves).expect("extraction converges");
        banner(&format!(
            "{}-TFT  L={:.0}um W={:.0}um  (mu0 {:.2} cm2/Vs, Vth {:+.2} V, gamma {:.2}, logRMSE {:.3})",
            device.technology,
            device.length * 1e6,
            device.width * 1e6,
            ex.model.mu0 * 1e4,
            ex.model.vth,
            ex.model.gamma,
            ex.log_rmse
        ));
        println!("vds,vgs,meas_id_A,model_id_A");
        for curve in &curves {
            for (&vg, &im) in curve.vgs.iter().zip(&curve.id) {
                let imod = ex.model.drain_current(vg, curve.vds);
                println!("{:.2},{:+.3},{:.5e},{:.5e}", curve.vds, vg, im, imod);
            }
        }
        summary.push((device.technology, ex.log_rmse));
    }
    banner("summary");
    for (tech, rmse) in summary {
        println!(
            "{tech:<5} log-RMSE {rmse:.3} decades ({:.1}% average magnitude error)",
            (10f64.powf(rmse) - 1.0) * 100.0
        );
    }
    println!("\n(the paper overlays model curves on measured devices; our measurements are");
    println!("synthesized with contact-resistance and Vth-drift mismatch — see DESIGN.md)");
}
