//! Iterative Krylov solvers for the sparse systems the TCAD crate
//! assembles.
//!
//! The nonlinear Poisson Newton loop produces nonsymmetric Jacobians (the
//! Boltzmann carrier terms make the diagonal state-dependent), so the
//! workhorse is Jacobi-preconditioned [`bicgstab`]. [`conjugate_gradient`]
//! is provided for the symmetric positive-definite systems that arise in
//! the placement solver and in tests.

use crate::dense::{axpy, dot, norm2};
use crate::sparse::CsrMatrix;
use crate::{NumericsError, Result};

/// Options controlling an iterative solve.
#[derive(Debug, Clone, Copy)]
pub struct IterOptions {
    /// Relative residual target: stop when `‖r‖ ≤ tol · ‖b‖`.
    pub tol: f64,
    /// Iteration cap before reporting [`NumericsError::NoConvergence`].
    pub max_iter: usize,
}

impl Default for IterOptions {
    fn default() -> Self {
        IterOptions {
            tol: 1e-10,
            max_iter: 2000,
        }
    }
}

/// Outcome of a converged iterative solve.
#[derive(Debug, Clone)]
pub struct IterSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations consumed.
    pub iterations: usize,
    /// Final residual norm ‖b − Ax‖.
    pub residual: f64,
}

/// Conjugate gradient for symmetric positive-definite systems, with Jacobi
/// (diagonal) preconditioning.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] for non-square systems or
/// mismatched right-hand sides, and [`NumericsError::NoConvergence`] if the
/// tolerance is not met within `opts.max_iter` iterations.
///
/// # Example
///
/// ```
/// use stco_numerics::sparse::CsrMatrix;
/// use stco_numerics::solve::{conjugate_gradient, IterOptions};
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 3.0)]);
/// let sol = conjugate_gradient(&a, &[1.0, 2.0], &IterOptions::default())?;
/// assert!(sol.residual < 1e-8);
/// # Ok::<(), stco_numerics::NumericsError>(())
/// ```
pub fn conjugate_gradient(a: &CsrMatrix, b: &[f64], opts: &IterOptions) -> Result<IterSolution> {
    check_system(a, b)?;
    let n = b.len();
    let inv_diag = jacobi_inverse(a);
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let bnorm = norm2(b).max(1e-300);
    if norm2(&r) / bnorm <= opts.tol {
        return Ok(IterSolution {
            x,
            iterations: 0,
            residual: norm2(&r),
        });
    }
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, d)| ri * d).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];
    for it in 1..=opts.max_iter {
        a.matvec_into(&p, &mut ap);
        let denom = dot(&p, &ap);
        if denom.abs() < 1e-300 {
            return Err(NumericsError::NoConvergence {
                iterations: it,
                residual: norm2(&r),
            });
        }
        let alpha = rz / denom;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let rnorm = norm2(&r);
        if rnorm / bnorm <= opts.tol {
            return Ok(IterSolution {
                x,
                iterations: it,
                residual: rnorm,
            });
        }
        for (zi, (ri, d)) in z.iter_mut().zip(r.iter().zip(&inv_diag)) {
            *zi = ri * d;
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: opts.max_iter,
        residual: norm2(&r),
    })
}

/// BiCGSTAB for general nonsymmetric systems, with Jacobi preconditioning.
///
/// This is the solver the TCAD Newton loop uses for its Poisson Jacobians.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] for malformed systems and
/// [`NumericsError::NoConvergence`] if the residual target is not met
/// (including on breakdown of the recurrence).
pub fn bicgstab(a: &CsrMatrix, b: &[f64], opts: &IterOptions) -> Result<IterSolution> {
    check_system(a, b)?;
    let n = b.len();
    let inv_diag = jacobi_inverse(a);
    let precond = |v: &[f64], out: &mut Vec<f64>| {
        out.clear();
        out.extend(v.iter().zip(&inv_diag).map(|(vi, d)| vi * d));
    };

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let bnorm = norm2(b).max(1e-300);
    if norm2(&r) / bnorm <= opts.tol {
        return Ok(IterSolution {
            x,
            iterations: 0,
            residual: norm2(&r),
        });
    }
    let r_hat = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut phat = Vec::with_capacity(n);
    let mut shat = Vec::with_capacity(n);
    let mut t = vec![0.0; n];

    for it in 1..=opts.max_iter {
        let rho_new = dot(&r_hat, &r);
        if rho_new.abs() < 1e-300 {
            return Err(NumericsError::NoConvergence {
                iterations: it,
                residual: norm2(&r),
            });
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        precond(&p, &mut phat);
        a.matvec_into(&phat, &mut v);
        let denom = dot(&r_hat, &v);
        if denom.abs() < 1e-300 {
            return Err(NumericsError::NoConvergence {
                iterations: it,
                residual: norm2(&r),
            });
        }
        alpha = rho / denom;
        // s = r - alpha * v (reuse r in place).
        axpy(-alpha, &v, &mut r);
        if norm2(&r) / bnorm <= opts.tol {
            axpy(alpha, &phat, &mut x);
            return Ok(IterSolution {
                x,
                iterations: it,
                residual: norm2(&r),
            });
        }
        precond(&r, &mut shat);
        a.matvec_into(&shat, &mut t);
        let tt = dot(&t, &t);
        if tt.abs() < 1e-300 {
            return Err(NumericsError::NoConvergence {
                iterations: it,
                residual: norm2(&r),
            });
        }
        omega = dot(&t, &r) / tt;
        axpy(alpha, &phat, &mut x);
        axpy(omega, &shat, &mut x);
        axpy(-omega, &t, &mut r);
        let rnorm = norm2(&r);
        if rnorm / bnorm <= opts.tol {
            return Ok(IterSolution {
                x,
                iterations: it,
                residual: rnorm,
            });
        }
        if omega.abs() < 1e-300 {
            return Err(NumericsError::NoConvergence {
                iterations: it,
                residual: rnorm,
            });
        }
    }
    Err(NumericsError::NoConvergence {
        iterations: opts.max_iter,
        residual: norm2(&r),
    })
}

fn check_system(a: &CsrMatrix, b: &[f64]) -> Result<()> {
    if a.rows() != a.cols() {
        return Err(NumericsError::ShapeMismatch {
            context: format!("iterative solve of non-square {}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != a.rows() {
        return Err(NumericsError::ShapeMismatch {
            context: format!("rhs length {} vs matrix dim {}", b.len(), a.rows()),
        });
    }
    Ok(())
}

fn jacobi_inverse(a: &CsrMatrix) -> Vec<f64> {
    a.diagonal()
        .into_iter()
        .map(|d| if d.abs() < 1e-300 { 1.0 } else { 1.0 / d })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xorshift;

    fn residual(a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        norm2(&ax.iter().zip(b).map(|(p, q)| p - q).collect::<Vec<_>>())
    }

    /// A 1-D Laplacian: SPD and the exact shape of the Poisson stencil.
    fn laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn cg_solves_laplacian() {
        let a = laplacian(50);
        let b: Vec<f64> = (0..50).map(|i| (i as f64 * 0.1).sin()).collect();
        let sol = conjugate_gradient(&a, &b, &IterOptions::default()).unwrap();
        assert!(residual(&a, &sol.x, &b) < 1e-7, "residual {}", sol.residual);
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        // Convection-diffusion style: dominant diagonal plus skewed off-diagonals.
        let n = 60;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 4.0));
            if i > 0 {
                t.push((i, i - 1, -1.5));
            }
            if i + 1 < n {
                t.push((i, i + 1, -0.5));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        let sol = bicgstab(&a, &b, &IterOptions::default()).unwrap();
        assert!(residual(&a, &sol.x, &b) < 1e-6);
    }

    #[test]
    fn bicgstab_matches_dense_lu() {
        let n = 20;
        let mut rng = Xorshift::new(7);
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 5.0 + rng.uniform()));
            for _ in 0..2 {
                let j = rng.gen_range(n);
                if j != i {
                    t.push((i, j, rng.uniform() - 0.5));
                }
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let b: Vec<f64> = (0..n).map(|_| rng.uniform() * 2.0 - 1.0).collect();
        let sparse = bicgstab(&a, &b, &IterOptions::default()).unwrap();
        let dense = a.to_dense().lu_solve(&b).unwrap();
        for (s, d) in sparse.x.iter().zip(&dense) {
            assert!((s - d).abs() < 1e-6, "sparse {s} vs dense {d}");
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let a = laplacian(10);
        let sol = conjugate_gradient(&a, &[0.0; 10], &IterOptions::default()).unwrap();
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_cap_is_enforced() {
        let a = laplacian(200);
        let b = vec![1.0; 200];
        let opts = IterOptions {
            tol: 1e-14,
            max_iter: 2,
        };
        assert!(matches!(
            conjugate_gradient(&a, &b, &opts),
            Err(NumericsError::NoConvergence { .. })
        ));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let a = laplacian(5);
        assert!(matches!(
            bicgstab(&a, &[1.0; 4], &IterOptions::default()),
            Err(NumericsError::ShapeMismatch { .. })
        ));
    }
}
