//! Compressed sparse row (CSR) matrices and a coordinate-format builder.
//!
//! The TCAD Poisson solver assembles its Jacobian as a [`CooBuilder`]
//! (duplicate entries are summed, matching finite-volume stamp semantics)
//! and converts it to a [`CsrMatrix`] for the Krylov solvers in
//! [`crate::solve`].

use crate::{NumericsError, Result};

/// Coordinate-format builder that accumulates `(row, col, value)` triplets.
///
/// Duplicates are summed on conversion, so assembly code can stamp the same
/// entry repeatedly — exactly how finite-volume discretizations and MNA
/// stamps want to work.
///
/// # Example
///
/// ```
/// use stco_numerics::sparse::CooBuilder;
///
/// let mut coo = CooBuilder::new(2, 2);
/// coo.push(0, 0, 1.0);
/// coo.push(0, 0, 2.0); // summed with the previous entry
/// coo.push(1, 1, 4.0);
/// let csr = coo.to_csr();
/// assert_eq!(csr.matvec(&[1.0, 1.0]), vec![3.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct CooBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooBuilder {
    /// Creates an empty builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooBuilder {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Appends a triplet.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "coo index out of range");
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Converts to CSR, summing duplicate coordinates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut entries = self.entries.clone();
        entries.sort_unstable_by_key(|a| (a.0, a.1));
        let mut entry_rows = Vec::with_capacity(entries.len());
        let mut col_idx = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        for &(r, c, v) in &entries {
            if entry_rows.last() == Some(&r) && col_idx.last() == Some(&c) {
                *values.last_mut().expect("non-empty when last matches") += v;
            } else {
                entry_rows.push(r);
                col_idx.push(c);
                values.push(v);
            }
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        for &r in &entry_rows {
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed sparse row matrix.
///
/// # Example
///
/// ```
/// use stco_numerics::sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (1, 1, 3.0), (2, 0, 1.0)]);
/// assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![2.0, 3.0, 1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix directly from triplets (duplicates summed).
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut coo = CooBuilder::new(rows, cols);
        for &(r, c, v) in triplets {
            coo.push(r, c, v);
        }
        coo.to_csr()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterator over `(col, value)` pairs of row `i`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Sparse matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "spmv shape mismatch");
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Sparse matrix–vector product into a caller-owned buffer (hot path of
    /// the Krylov solvers; avoids reallocating each iteration).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv shape mismatch");
        assert_eq!(y.len(), self.rows, "spmv output shape mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                s += self.values[k] * x[self.col_idx[k]];
            }
            *yi = s;
        }
    }

    /// The main diagonal, with zeros for missing entries.
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.rows.min(self.cols)];
        for (i, di) in d.iter_mut().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    *di = self.values[k];
                    break;
                }
            }
        }
        d
    }

    /// Returns the stored value at `(i, j)`, or 0 if absent.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        for k in self.row_ptr[i]..self.row_ptr[i + 1] {
            if self.col_idx[k] == j {
                return self.values[k];
            }
        }
        0.0
    }

    /// Converts to a dense matrix (test/debug helper; O(rows·cols) memory).
    pub fn to_dense(&self) -> crate::dense::Matrix {
        let mut m = crate::dense::Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                m.add_at(i, j, v);
            }
        }
        m
    }

    /// Transposed copy.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                triplets.push((j, i, v));
            }
        }
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Checks strict diagonal dominance (a sufficient condition for the
    /// Jacobi-preconditioned solvers to behave).
    pub fn is_diagonally_dominant(&self) -> bool {
        for i in 0..self.rows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (j, v) in self.row_entries(i) {
                if j == i {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            if diag < off {
                return false;
            }
        }
        true
    }

    /// Validates internal invariants; used by property tests.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::InvalidArgument`] describing the violated
    /// invariant.
    pub fn validate(&self) -> Result<()> {
        if self.row_ptr.len() != self.rows + 1 {
            return Err(NumericsError::InvalidArgument {
                context: "row_ptr length".into(),
            });
        }
        if self.row_ptr[0] != 0 || *self.row_ptr.last().unwrap() != self.values.len() {
            return Err(NumericsError::InvalidArgument {
                context: "row_ptr endpoints".into(),
            });
        }
        for w in self.row_ptr.windows(2) {
            if w[1] < w[0] {
                return Err(NumericsError::InvalidArgument {
                    context: "row_ptr not monotone".into(),
                });
            }
        }
        for i in 0..self.rows {
            let s = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
            for w in s.windows(2) {
                if w[1] <= w[0] {
                    return Err(NumericsError::InvalidArgument {
                        context: format!("row {i} columns not strictly increasing"),
                    });
                }
            }
            if s.iter().any(|&c| c >= self.cols) {
                return Err(NumericsError::InvalidArgument {
                    context: format!("row {i} column out of range"),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coo_duplicates_are_summed() {
        let mut coo = CooBuilder::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 0, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 3.5);
        assert_eq!(csr.get(1, 0), -1.0);
        assert_eq!(csr.get(1, 1), 0.0);
        csr.validate().unwrap();
    }

    #[test]
    fn empty_rows_are_handled() {
        let csr = CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (3, 3, 2.0)]);
        csr.validate().unwrap();
        assert_eq!(csr.matvec(&[1.0, 1.0, 1.0, 1.0]), vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn matvec_matches_dense() {
        let triplets = [
            (0, 0, 2.0),
            (0, 2, -1.0),
            (1, 1, 3.0),
            (2, 0, 0.5),
            (2, 2, 4.0),
        ];
        let csr = CsrMatrix::from_triplets(3, 3, &triplets);
        let dense = csr.to_dense();
        let x = [1.0, -2.0, 3.0];
        assert_eq!(csr.matvec(&x), dense.matvec(&x));
    }

    #[test]
    fn diagonal_extraction() {
        let csr = CsrMatrix::from_triplets(3, 3, &[(0, 0, 5.0), (1, 2, 1.0), (2, 2, -3.0)]);
        assert_eq!(csr.diagonal(), vec![5.0, 0.0, -3.0]);
    }

    #[test]
    fn transpose_is_involutive() {
        let csr = CsrMatrix::from_triplets(2, 3, &[(0, 1, 1.0), (1, 0, 2.0), (1, 2, 3.0)]);
        assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn diagonal_dominance_check() {
        let dominant =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 3.0), (0, 1, 1.0), (1, 1, 2.0), (1, 0, -1.0)]);
        assert!(dominant.is_diagonally_dominant());
        let not = CsrMatrix::from_triplets(2, 2, &[(0, 0, 0.5), (0, 1, 1.0), (1, 1, 2.0)]);
        assert!(!not.is_diagonally_dominant());
    }
}
