//! Nonlinear solvers: damped Newton for square systems and
//! Levenberg–Marquardt for least-squares parameter extraction.
//!
//! The TCAD Poisson solver drives [`newton`] with an analytic sparse
//! Jacobian; the compact-model extractor drives [`levenberg_marquardt`]
//! with finite-difference Jacobians over a handful of parameters.

use crate::dense::{norm2, norm_inf, Matrix};
use crate::guard::{check_finite, check_finite_scalar};
use crate::{NumericsError, Result};

/// Options for the damped Newton iteration.
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Stop when the residual infinity-norm falls below this.
    pub residual_tol: f64,
    /// Stop when the update infinity-norm falls below this.
    pub step_tol: f64,
    /// Maximum Newton iterations.
    pub max_iter: usize,
    /// Maximum damping halvings per iteration.
    pub max_backtracks: usize,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            residual_tol: 1e-10,
            step_tol: 1e-12,
            max_iter: 100,
            max_backtracks: 20,
        }
    }
}

/// Result of a converged Newton solve.
#[derive(Debug, Clone)]
pub struct NewtonSolution {
    /// The converged state vector.
    pub x: Vec<f64>,
    /// Newton iterations consumed.
    pub iterations: usize,
    /// Final residual infinity-norm.
    pub residual: f64,
}

/// Damped Newton iteration on `F(x) = 0`.
///
/// `system` must, given a state `x`, return the residual `F(x)` and solve
/// the linearized update `J(x) · dx = F(x)`, returning `dx`. Pushing the
/// linear solve into the callback lets the TCAD crate keep its sparse
/// Jacobian assembly and Krylov solve fused, while tests can use dense LU.
///
/// Damping: the full step is halved until the residual norm decreases (or
/// `max_backtracks` is hit, in which case the last trial step is accepted —
/// Poisson problems occasionally need to climb before converging).
///
/// # Errors
///
/// Returns [`NumericsError::NonFinite`] if the initial state contains
/// NaN/Inf or the residual norm goes non-finite and damping cannot
/// recover it, [`NumericsError::NoConvergence`] if the tolerances are
/// not met within `opts.max_iter` iterations, or propagates errors
/// from `system`.
pub fn newton<F>(x0: Vec<f64>, opts: &NewtonOptions, mut system: F) -> Result<NewtonSolution>
where
    F: FnMut(&[f64]) -> Result<(Vec<f64>, Vec<f64>)>,
{
    check_finite("newton.x0", &x0)?;
    // `norm_inf` folds with f64::max, which silently drops NaN — a NaN
    // residual would read as norm 0.0 and "converge" instantly. Force the
    // norm itself to NaN so every acceptance comparison sees the poison.
    let res_norm = |r: &[f64]| {
        if crate::guard::all_finite(r) {
            norm_inf(r)
        } else {
            f64::NAN
        }
    };
    let mut x = x0;
    let (mut residual, mut dx) = system(&x)?;
    let mut rnorm = res_norm(&residual);
    for it in 1..=opts.max_iter {
        if rnorm <= opts.residual_tol {
            return Ok(NewtonSolution {
                x,
                iterations: it - 1,
                residual: rnorm,
            });
        }
        // Try the full step, then halve while the residual grows.
        let mut lambda = 1.0;
        let mut accepted = None;
        for _ in 0..=opts.max_backtracks {
            let trial: Vec<f64> = x
                .iter()
                .zip(dx.iter())
                .map(|(xi, di)| xi - lambda * di)
                .collect();
            let (trial_res, trial_dx) = system(&trial)?;
            let trial_norm = res_norm(&trial_res);
            // Only accept a finite residual at the damping floor: a NaN
            // trial would otherwise poison every later iterate.
            let at_floor = lambda <= 1.0 / (1 << opts.max_backtracks) as f64;
            if trial_norm < rnorm || (at_floor && trial_norm.is_finite()) {
                accepted = Some((trial, trial_res, trial_dx, trial_norm));
                break;
            }
            lambda *= 0.5;
        }
        // The floor condition guarantees the loop breaks unless every trial
        // residual — including the most heavily damped one — was non-finite.
        let Some((nx, nres, ndx, nnorm)) = accepted else {
            return Err(NumericsError::NonFinite {
                context: format!(
                    "newton: residual norm non-finite after {} backtracks at iteration {it}",
                    opts.max_backtracks
                ),
            });
        };
        let step = norm_inf(&dx) * lambda;
        x = nx;
        residual = nres;
        dx = ndx;
        rnorm = nnorm;
        if rnorm <= opts.residual_tol || step <= opts.step_tol {
            return Ok(NewtonSolution {
                x,
                iterations: it,
                residual: rnorm,
            });
        }
    }
    if rnorm <= opts.residual_tol * 10.0 {
        // Near-converged: accept with the achieved residual. The TCAD bias
        // continuation relies on this leniency at extreme corners.
        return Ok(NewtonSolution {
            x,
            iterations: opts.max_iter,
            residual: rnorm,
        });
    }
    let _ = residual;
    Err(NumericsError::NoConvergence {
        iterations: opts.max_iter,
        residual: rnorm,
    })
}

/// Options for Levenberg–Marquardt.
#[derive(Debug, Clone, Copy)]
pub struct LmOptions {
    /// Maximum LM iterations.
    pub max_iter: usize,
    /// Stop when the relative reduction of the cost falls below this.
    pub cost_tol: f64,
    /// Initial damping parameter.
    pub lambda0: f64,
    /// Relative step used for forward-difference Jacobians.
    pub fd_step: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            max_iter: 200,
            cost_tol: 1e-12,
            lambda0: 1e-3,
            fd_step: 1e-6,
        }
    }
}

/// Result of a Levenberg–Marquardt fit.
#[derive(Debug, Clone)]
pub struct LmSolution {
    /// Fitted parameter vector.
    pub params: Vec<f64>,
    /// Final cost `0.5 · ‖r‖²`.
    pub cost: f64,
    /// Iterations consumed.
    pub iterations: usize,
}

/// Levenberg–Marquardt least squares: minimizes `0.5‖r(p)‖²` over `p`.
///
/// `residuals(p)` returns the residual vector; the Jacobian is estimated by
/// forward differences (the compact model has 3–5 parameters, so this costs
/// only a few extra evaluations per iteration). Parameters can be bounded
/// with `lower`/`upper` (clamped after each step).
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] if the bounds are malformed,
/// [`NumericsError::NonFinite`] if the initial guess, bounds, or initial
/// cost contain NaN/Inf, and [`NumericsError::NoConvergence`] if no
/// damping value yields progress.
pub fn levenberg_marquardt<F>(
    p0: Vec<f64>,
    lower: &[f64],
    upper: &[f64],
    opts: &LmOptions,
    mut residuals: F,
) -> Result<LmSolution>
where
    F: FnMut(&[f64]) -> Vec<f64>,
{
    let np = p0.len();
    check_finite("lm.p0", &p0)?;
    check_finite("lm.lower", lower)?;
    check_finite("lm.upper", upper)?;
    if lower.len() != np || upper.len() != np {
        return Err(NumericsError::InvalidArgument {
            context: "bounds must match parameter count".into(),
        });
    }
    if lower.iter().zip(upper).any(|(l, u)| l > u) {
        return Err(NumericsError::InvalidArgument {
            context: "lower bound exceeds upper bound".into(),
        });
    }
    let clamp = |p: &mut [f64]| {
        for ((pi, &l), &u) in p.iter_mut().zip(lower).zip(upper) {
            *pi = pi.clamp(l, u);
        }
    };

    let mut p = p0;
    clamp(&mut p);
    let mut r = residuals(&p);
    let m = r.len();
    // A NaN initial cost would make every `tcost < cost` comparison false
    // and silently return the unfitted guess as a "solution".
    let mut cost = check_finite_scalar("lm.initial_cost", 0.5 * norm2(&r).powi(2))?;
    let mut lambda = opts.lambda0;

    for it in 1..=opts.max_iter {
        // Forward-difference Jacobian: J[i][j] = d r_i / d p_j.
        let mut jac = Matrix::zeros(m, np);
        for j in 0..np {
            let h = opts.fd_step * p[j].abs().max(1e-8);
            let mut pp = p.clone();
            pp[j] = (pp[j] + h).min(upper[j]);
            let actual_h = pp[j] - p[j];
            let rp = if actual_h.abs() < 1e-300 {
                // At the upper bound: step backwards instead.
                let mut pm = p.clone();
                pm[j] = (pm[j] - h).max(lower[j]);
                let hb = p[j] - pm[j];
                let rm = residuals(&pm);
                for i in 0..m {
                    jac.set(i, j, (r[i] - rm[i]) / hb.max(1e-300));
                }
                continue;
            } else {
                residuals(&pp)
            };
            for i in 0..m {
                jac.set(i, j, (rp[i] - r[i]) / actual_h);
            }
        }
        // Normal equations with LM damping: (JᵀJ + λ diag(JᵀJ)) dp = -Jᵀ r.
        let jt = jac.transpose();
        let jtj = jt.matmul(&jac);
        let jtr = jt.matvec(&r);
        let mut improved = false;
        for _ in 0..12 {
            let mut a = jtj.clone();
            for d in 0..np {
                let diag = jtj.get(d, d).max(1e-12);
                a.add_at(d, d, lambda * diag);
            }
            let neg_jtr: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let dp = match a.lu_solve(&neg_jtr) {
                Ok(dp) => dp,
                Err(_) => {
                    lambda *= 10.0;
                    continue;
                }
            };
            let mut trial = p.clone();
            for (ti, di) in trial.iter_mut().zip(&dp) {
                *ti += di;
            }
            clamp(&mut trial);
            let tr = residuals(&trial);
            let tcost = 0.5 * norm2(&tr).powi(2);
            if tcost < cost {
                let rel = (cost - tcost) / cost.max(1e-300);
                p = trial;
                r = tr;
                cost = tcost;
                lambda = (lambda * 0.3).max(1e-12);
                improved = true;
                if rel < opts.cost_tol {
                    return Ok(LmSolution {
                        params: p,
                        cost,
                        iterations: it,
                    });
                }
                break;
            }
            lambda *= 10.0;
        }
        if !improved {
            // Stalled: current point is the (local) optimum at this damping.
            return Ok(LmSolution {
                params: p,
                cost,
                iterations: it,
            });
        }
    }
    Ok(LmSolution {
        params: p,
        cost,
        iterations: opts.max_iter,
    })
}

/// Scalar bisection on a monotone predicate: returns the smallest `x` in
/// `[lo, hi]` (to within `tol`) where `pred(x)` is `true`.
///
/// The cell characterizer uses this for minimum setup/hold/pulse-width
/// searches, where `pred` is "the flip-flop still captures correctly".
///
/// # Errors
///
/// Returns [`NumericsError::NonFinite`] if `lo`, `hi`, or `tol` is
/// NaN/Inf (a NaN bracket would terminate the loop immediately and
/// report `hi` as the threshold), and [`NumericsError::InvalidArgument`]
/// if the interval is inverted or `pred(hi)` is `false` (no passing
/// point in range) — the interval must bracket the threshold.
pub fn bisect_threshold<F>(lo: f64, hi: f64, tol: f64, mut pred: F) -> Result<f64>
where
    F: FnMut(f64) -> bool,
{
    check_finite_scalar("bisect.lo", lo)?;
    check_finite_scalar("bisect.hi", hi)?;
    check_finite_scalar("bisect.tol", tol)?;
    if lo > hi {
        return Err(NumericsError::InvalidArgument {
            context: format!("inverted bracket [{lo}, {hi}]"),
        });
    }
    if !pred(hi) {
        return Err(NumericsError::InvalidArgument {
            context: format!("predicate false at upper bracket {hi}"),
        });
    }
    if pred(lo) {
        return Ok(lo);
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > tol {
        let mid = 0.5 * (lo + hi);
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    #[test]
    fn newton_solves_scalar_quadratic() {
        // F(x) = x² - 4, root at 2.
        let sol = newton(vec![3.0], &NewtonOptions::default(), |x| {
            let f = x[0] * x[0] - 4.0;
            let j = 2.0 * x[0];
            Ok((vec![f], vec![f / j]))
        })
        .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn newton_solves_coupled_system() {
        // x² + y² = 5, x·y = 2 → (2, 1).
        let sol = newton(vec![2.5, 0.5], &NewtonOptions::default(), |v| {
            let (x, y) = (v[0], v[1]);
            let f = vec![x * x + y * y - 5.0, x * y - 2.0];
            let j = Matrix::from_rows(&[&[2.0 * x, 2.0 * y], &[y, x]]);
            let dx = j.lu_solve(&f)?;
            Ok((f, dx))
        })
        .unwrap();
        assert!((sol.x[0] - 2.0).abs() < 1e-8, "{:?}", sol.x);
        assert!((sol.x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn newton_damping_rescues_overshoot() {
        // atan has a tiny derivative far out; undamped Newton diverges from 4.
        let sol = newton(vec![4.0], &NewtonOptions::default(), |x| {
            let f = x[0].atan();
            let j = 1.0 / (1.0 + x[0] * x[0]);
            Ok((vec![f], vec![f / j]))
        })
        .unwrap();
        assert!(sol.x[0].abs() < 1e-6, "{}", sol.x[0]);
    }

    #[test]
    fn lm_fits_exponential_decay() {
        // y = a · exp(-b t) with a=2, b=0.5.
        let ts: Vec<f64> = (0..20).map(|i| i as f64 * 0.3).collect();
        let ys: Vec<f64> = ts.iter().map(|t| 2.0 * (-0.5 * t).exp()).collect();
        let sol = levenberg_marquardt(
            vec![1.0, 1.0],
            &[0.01, 0.01],
            &[10.0, 10.0],
            &LmOptions::default(),
            |p| {
                ts.iter()
                    .zip(&ys)
                    .map(|(t, y)| p[0] * (-p[1] * t).exp() - y)
                    .collect()
            },
        )
        .unwrap();
        assert!((sol.params[0] - 2.0).abs() < 1e-4, "{:?}", sol.params);
        assert!((sol.params[1] - 0.5).abs() < 1e-4);
    }

    #[test]
    fn lm_respects_bounds() {
        // Unconstrained optimum at p = -1; bound at 0.
        let sol = levenberg_marquardt(vec![2.0], &[0.0], &[5.0], &LmOptions::default(), |p| {
            vec![p[0] + 1.0]
        })
        .unwrap();
        assert!(sol.params[0] >= 0.0);
        assert!(sol.params[0] < 1e-6, "{:?}", sol.params);
    }

    #[test]
    fn lm_rejects_bad_bounds() {
        let r = levenberg_marquardt(vec![0.0], &[1.0], &[0.0], &LmOptions::default(), |_| {
            vec![0.0]
        });
        assert!(matches!(r, Err(NumericsError::InvalidArgument { .. })));
    }

    #[test]
    fn bisect_finds_threshold() {
        let x = bisect_threshold(0.0, 10.0, 1e-9, |v| v >= std::f64::consts::PI).unwrap();
        assert!((x - std::f64::consts::PI).abs() < 1e-8);
    }

    #[test]
    fn bisect_rejects_unbracketed() {
        assert!(bisect_threshold(0.0, 1.0, 1e-6, |v| v > 2.0).is_err());
    }

    #[test]
    fn newton_rejects_non_finite_initial_state() {
        let r = newton(vec![f64::NAN], &NewtonOptions::default(), |x| {
            Ok((vec![x[0]], vec![x[0]]))
        });
        assert!(matches!(r, Err(NumericsError::NonFinite { .. })));
    }

    #[test]
    fn newton_errors_when_damping_cannot_recover_nan() {
        // Every residual evaluation is NaN: no damping level can help.
        let opts = NewtonOptions {
            max_backtracks: 3,
            ..NewtonOptions::default()
        };
        let r = newton(vec![1.0], &opts, |_| Ok((vec![f64::NAN], vec![1.0])));
        assert!(matches!(r, Err(NumericsError::NonFinite { .. })), "{r:?}");
    }

    #[test]
    fn lm_rejects_non_finite_inputs() {
        let opts = LmOptions::default();
        let r = levenberg_marquardt(vec![f64::NAN], &[0.0], &[1.0], &opts, |_| vec![0.0]);
        assert!(matches!(r, Err(NumericsError::NonFinite { .. })));
        let r = levenberg_marquardt(vec![0.5], &[f64::NEG_INFINITY], &[1.0], &opts, |_| {
            vec![0.0]
        });
        assert!(matches!(r, Err(NumericsError::NonFinite { .. })));
        // NaN initial cost would otherwise return the unfitted guess as Ok.
        let r = levenberg_marquardt(vec![0.5], &[0.0], &[1.0], &opts, |_| vec![f64::NAN]);
        assert!(matches!(r, Err(NumericsError::NonFinite { .. })));
    }

    #[test]
    fn bisect_rejects_non_finite_bracket() {
        assert!(bisect_threshold(f64::NAN, 1.0, 1e-6, |_| true).is_err());
        assert!(bisect_threshold(0.0, f64::INFINITY, 1e-6, |_| true).is_err());
        assert!(bisect_threshold(0.0, 1.0, f64::NAN, |_| true).is_err());
        assert!(bisect_threshold(1.0, 0.0, 1e-6, |_| true).is_err());
    }
}
