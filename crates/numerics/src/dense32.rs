//! Dense row-major `f32` matrices for the opt-in fast inference path.
//!
//! [`MatrixF32`] is the single-precision twin of [`crate::dense::Matrix`],
//! deliberately restricted to the operations the GNN forward pass needs.
//! It exists for `InferencePrecision::F32` in the surrogate crate: weights
//! are narrowed once at load time and the blocked GEMM kernels run in
//! `f32`, trading the bitwise determinism contract of the `f64` path for
//! a property-tested relative-error bound (DESIGN.md §15).

use crate::gemm;

/// Narrows an `f64` to `f32`.
///
/// The one sanctioned lossy conversion in the workspace: the f32
/// inference path narrows weights and activations *by design*, and the
/// resulting end-to-end error is bounded and proptested (DESIGN.md §15).
#[inline]
pub fn narrow(v: f64) -> f32 {
    // stco-check: allow(no-lossy-cast, f32 fast-inference path narrows by design; end-to-end error bound proptested)
    v as f32
}

/// A dense row-major `rows × cols` matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        MatrixF32 {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        MatrixF32 { rows, cols, data }
    }

    /// Narrows an `f64` matrix element-by-element.
    pub fn from_f64(src: &crate::dense::Matrix) -> Self {
        MatrixF32 {
            rows: src.rows(),
            cols: src.cols(),
            data: src.as_slice().iter().map(|&v| narrow(v)).collect(),
        }
    }

    /// Widens back to `f64` (exact; every `f32` is representable).
    pub fn to_f64(&self) -> crate::dense::Matrix {
        crate::dense::Matrix::from_vec(
            self.rows,
            self.cols,
            self.data.iter().map(|&v| f64::from(v)).collect(),
        )
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Reshapes to `rows × cols` and zero-fills, reusing the allocation.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Accumulating GEMM: `out += self · rhs`, size-dispatched between
    /// the naive ikj loop and the blocked `f32` kernel exactly like the
    /// `f64` [`crate::dense::Matrix::gemm_into`].
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn gemm_into(&self, rhs: &MatrixF32, out: &mut MatrixF32) {
        assert_eq!(
            self.cols, rhs.rows,
            "f32 gemm_into shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "f32 gemm_into output shape mismatch"
        );
        if gemm::use_blocked(self.rows, rhs.cols, self.cols) {
            gemm::with_f32_scratch(|apack, bpack| {
                gemm::gemm_nn_blocked(
                    self.rows,
                    rhs.cols,
                    self.cols,
                    &self.data,
                    &rhs.data,
                    &mut out.data,
                    apack,
                    bpack,
                );
            });
        } else {
            self.gemm_into_naive(rhs, out);
        }
    }

    /// The naive ikj `f32` kernel: oracle for the blocked path.
    // stco-hot
    pub fn gemm_into_naive(&self, rhs: &MatrixF32, out: &mut MatrixF32) {
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * r;
                }
            }
        }
    }

    /// Always-blocked `f32` GEMM entry point for proptests and benches.
    pub fn gemm_into_blocked(&self, rhs: &MatrixF32, out: &mut MatrixF32) {
        gemm::with_f32_scratch(|apack, bpack| {
            gemm::gemm_nn_blocked(
                self.rows,
                rhs.cols,
                self.cols,
                &self.data,
                &rhs.data,
                &mut out.data,
                apack,
                bpack,
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Matrix;

    #[test]
    fn round_trip_through_f64_is_exact() {
        let m = Matrix::from_rows(&[&[1.5, -2.25], &[0.125, 3.0]]);
        let narrow = MatrixF32::from_f64(&m);
        assert_eq!(narrow.to_f64(), m);
    }

    #[test]
    fn f32_gemm_matches_hand_result() {
        let a = MatrixF32::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = MatrixF32::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let mut out = MatrixF32::zeros(2, 2);
        a.gemm_into(&b, &mut out);
        assert_eq!(out.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn blocked_matches_naive_bitwise() {
        let n = 40;
        let vals: Vec<f32> = (0..n * n)
            .map(|i| ((i * 37 % 201) as f32) / 100.0 - 1.0)
            .collect();
        let a = MatrixF32::from_vec(n, n, vals.clone());
        let b = MatrixF32::from_vec(n, n, vals);
        let mut naive = MatrixF32::zeros(n, n);
        let mut blocked = MatrixF32::zeros(n, n);
        a.gemm_into_naive(&b, &mut naive);
        a.gemm_into_blocked(&b, &mut blocked);
        for (x, y) in naive.as_slice().iter().zip(blocked.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
