//! Dense row-major matrices and the vector helpers the rest of the
//! workspace leans on.
//!
//! [`Matrix`] is deliberately simple: a `Vec<f64>` with a shape. The SPICE
//! engine factors MNA systems of at most a few hundred unknowns, and the
//! neural-network crate multiplies feature matrices of a few thousand rows,
//! so a cache-friendly row-major layout with straightforward loops is both
//! sufficient and easy to audit.

use crate::{gemm, NumericsError, Result};

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// # Example
///
/// ```
/// use stco_numerics::dense::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = a.matmul(&a);
/// assert_eq!(b.get(0, 0), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have equal length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the underlying row-major storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Sets element `(i, j)` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = value;
    }

    /// Adds `value` to element `(i, j)`; the idiom every MNA stamp uses.
    #[inline]
    pub fn add_at(&mut self, i: usize, j: usize, value: f64) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] += value;
    }

    /// Borrow of row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable borrow of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.gemm_into(rhs, &mut out);
        out
    }

    /// Accumulating GEMM: `out += self · rhs`, no allocation.
    ///
    /// Dispatches to the cache-blocked, register-tiled kernel in
    /// [`crate::gemm`] once the product is large enough to amortize the
    /// pack step ([`crate::gemm::use_blocked`]); MNA-sized products stay
    /// on the naive ikj loop. Both paths produce bitwise-identical
    /// results (proptest-pinned), so the dispatch is invisible to the
    /// determinism contract.
    ///
    /// The dense path deliberately has no per-scalar zero-skip: on dense
    /// operands the branch defeats pipelining and costs more than the
    /// multiplies it saves (sparse stamping belongs in the MNA layer, not
    /// here).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.rows()` or `out` is not
    /// `self.rows() × rhs.cols()`.
    pub fn gemm_into(&self, rhs: &Matrix, out: &mut Matrix) {
        if gemm::use_blocked(self.rows, rhs.cols, self.cols) {
            self.gemm_into_blocked(rhs, out);
        } else {
            self.gemm_into_naive(rhs, out);
        }
    }

    /// The naive ikj kernel behind [`Matrix::gemm_into`]: the proptest
    /// oracle for the blocked path and the small-product fast path.
    // stco-hot
    pub fn gemm_into_naive(&self, rhs: &Matrix, out: &mut Matrix) {
        self.check_nn_shapes(rhs, out);
        // ikj loop order keeps the inner loop contiguous in both operands.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * r;
                }
            }
        }
    }

    /// The blocked kernel behind [`Matrix::gemm_into`], callable directly
    /// (below the dispatch threshold) by proptests and benches.
    pub fn gemm_into_blocked(&self, rhs: &Matrix, out: &mut Matrix) {
        self.check_nn_shapes(rhs, out);
        gemm::with_f64_scratch(|apack, bpack| {
            gemm::gemm_nn_blocked(
                self.rows,
                rhs.cols,
                self.cols,
                &self.data,
                &rhs.data,
                &mut out.data,
                apack,
                bpack,
            );
        });
    }

    fn check_nn_shapes(&self, rhs: &Matrix, out: &Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "gemm_into shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.cols),
            "gemm_into output shape mismatch"
        );
    }

    /// Accumulating transpose-free GEMM: `out += self · rhsᵀ`.
    ///
    /// `rhs` is passed untransposed; no transposed copy is ever
    /// materialized. Accumulation order matches
    /// `self.matmul(&rhs.transpose())` bitwise on both the naive and the
    /// blocked path (size-dispatched like [`Matrix::gemm_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != rhs.cols()` or `out` is not
    /// `self.rows() × rhs.rows()`.
    pub fn gemm_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        if gemm::use_blocked(self.rows, rhs.rows, self.cols) {
            self.gemm_nt_into_blocked(rhs, out);
        } else {
            self.gemm_nt_into_naive(rhs, out);
        }
    }

    /// The naive row-dot kernel behind [`Matrix::gemm_nt_into`]: the
    /// proptest oracle for the blocked path and the small-product path.
    // stco-hot
    pub fn gemm_nt_into_naive(&self, rhs: &Matrix, out: &mut Matrix) {
        self.check_nt_shapes(rhs, out);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            let orow = &mut out.data[i * rhs.rows..(i + 1) * rhs.rows];
            for (j, o) in orow.iter_mut().enumerate() {
                *o += dot(arow, &rhs.data[j * rhs.cols..(j + 1) * rhs.cols]);
            }
        }
    }

    /// The blocked kernel behind [`Matrix::gemm_nt_into`], callable
    /// directly by proptests and benches.
    pub fn gemm_nt_into_blocked(&self, rhs: &Matrix, out: &mut Matrix) {
        self.check_nt_shapes(rhs, out);
        gemm::with_f64_scratch(|apack, bpack| {
            gemm::gemm_nt_blocked(
                self.rows,
                rhs.rows,
                self.cols,
                &self.data,
                &rhs.data,
                &mut out.data,
                apack,
                bpack,
            );
        });
    }

    fn check_nt_shapes(&self, rhs: &Matrix, out: &Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "gemm_nt_into shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, rhs.rows),
            "gemm_nt_into output shape mismatch"
        );
    }

    /// Accumulating transpose-free GEMM: `out += selfᵀ · rhs`.
    ///
    /// `self` is passed untransposed. Accumulation order matches
    /// `self.transpose().matmul(&rhs)` bitwise on both the naive and the
    /// blocked path (size-dispatched like [`Matrix::gemm_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `self.rows() != rhs.rows()` or `out` is not
    /// `self.cols() × rhs.cols()`.
    pub fn gemm_tn_into(&self, rhs: &Matrix, out: &mut Matrix) {
        if gemm::use_blocked(self.cols, rhs.cols, self.rows) {
            self.gemm_tn_into_blocked(rhs, out);
        } else {
            self.gemm_tn_into_naive(rhs, out);
        }
    }

    /// The naive kij kernel behind [`Matrix::gemm_tn_into`]: the proptest
    /// oracle for the blocked path and the small-product path.
    // stco-hot
    pub fn gemm_tn_into_naive(&self, rhs: &Matrix, out: &mut Matrix) {
        self.check_tn_shapes(rhs, out);
        for k in 0..self.rows {
            let rrow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for i in 0..self.cols {
                let a = self.data[k * self.cols + i];
                let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, r) in orow.iter_mut().zip(rrow.iter()) {
                    *o += a * r;
                }
            }
        }
    }

    /// The blocked kernel behind [`Matrix::gemm_tn_into`], callable
    /// directly by proptests and benches.
    pub fn gemm_tn_into_blocked(&self, rhs: &Matrix, out: &mut Matrix) {
        self.check_tn_shapes(rhs, out);
        gemm::with_f64_scratch(|apack, bpack| {
            gemm::gemm_tn_blocked(
                self.cols,
                rhs.cols,
                self.rows,
                &self.data,
                &rhs.data,
                &mut out.data,
                apack,
                bpack,
            );
        });
    }

    fn check_tn_shapes(&self, rhs: &Matrix, out: &Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "gemm_tn_into shape mismatch: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        assert_eq!(
            (out.rows, out.cols),
            (self.cols, rhs.cols),
            "gemm_tn_into output shape mismatch"
        );
    }

    /// Reshapes the matrix to `rows × cols` and zero-fills it, reusing the
    /// existing allocation whenever the new size fits. The workspace idiom
    /// every hot loop uses instead of `Matrix::zeros`.
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Matrix-vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec shape mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot(self.row(i), x);
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// In-place scaling by a scalar.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Elementwise sum of two equally-shaped matrices.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Solves `self · x = b` by LU factorization with partial pivoting.
    ///
    /// The receiver is copied; use [`Matrix::lu_factor`] to reuse a
    /// factorization across multiple right-hand sides (the SPICE transient
    /// loop does this).
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::SingularMatrix`] if a pivot underflows, and
    /// [`NumericsError::ShapeMismatch`] if `b.len() != self.rows()` or the
    /// matrix is not square.
    pub fn lu_solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let lu = self.lu_factor()?;
        lu.solve(b)
    }

    /// Computes an LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if the matrix is not square
    /// and [`NumericsError::SingularMatrix`] on pivot breakdown.
    pub fn lu_factor(&self) -> Result<LuFactors> {
        let mut factors = LuFactors::default();
        self.lu_factor_into(&mut factors)?;
        Ok(factors)
    }

    /// Factors into an existing [`LuFactors`], reusing its buffers.
    ///
    /// The factor-once / solve-many workhorse of the SPICE Newton loop: no
    /// allocation once the factors have grown to the system size.
    ///
    /// # Errors
    ///
    /// Same as [`Matrix::lu_factor`]. On error the factors are left in an
    /// unspecified (but safely reusable) state.
    // stco-hot
    pub fn lu_factor_into(&self, factors: &mut LuFactors) -> Result<()> {
        if self.rows != self.cols {
            return Err(NumericsError::ShapeMismatch {
                context: format!("LU of non-square {}x{} matrix", self.rows, self.cols),
            });
        }
        let n = self.rows;
        factors.n = n;
        factors.lu.clear();
        factors.lu.extend_from_slice(&self.data);
        factors.perm.clear();
        factors.perm.extend(0..n);
        let lu = &mut factors.lu;
        let perm = &mut factors.perm;
        for k in 0..n {
            // Partial pivoting: find the largest magnitude in column k.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(NumericsError::SingularMatrix { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    lu.swap(k * n + j, p * n + j);
                }
                perm.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for i in (k + 1)..n {
                let factor = lu[i * n + k] / pivot;
                lu[i * n + k] = factor;
                for j in (k + 1)..n {
                    lu[i * n + j] -= factor * lu[k * n + j];
                }
            }
        }
        Ok(())
    }
}

/// An LU factorization with partial pivoting, reusable across right-hand
/// sides.
///
/// # Example
///
/// ```
/// use stco_numerics::dense::Matrix;
///
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let lu = a.lu_factor().expect("nonsingular");
/// let x = lu.solve(&[3.0, 5.0]).expect("solve");
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LuFactors {
    n: usize,
    lu: Vec<f64>,
    perm: Vec<usize>,
}

impl LuFactors {
    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A x = b` into a caller-owned buffer, reusing its allocation.
    ///
    /// `x` is cleared and refilled; its capacity is reused, so repeated
    /// solves against the same workspace are allocation-free. Produces the
    /// same bits as [`LuFactors::solve`].
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `b.len() != self.dim()`.
    // stco-hot
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<()> {
        if b.len() != self.n {
            return Err(NumericsError::ShapeMismatch {
                context: format!("rhs length {} vs system dim {}", b.len(), self.n),
            });
        }
        let n = self.n;
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let s = dot(&self.lu[i * n..i * n + i], &x[..i]);
            x[i] -= s;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let s = dot(&self.lu[i * n + i + 1..i * n + n], &x[i + 1..n]);
            x[i] = (x[i] - s) / self.lu[i * n + i];
        }
        Ok(())
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm (largest absolute entry) of a slice.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// `y ← y + alpha * x` for equal-length slices.
///
/// # Panics
///
/// Panics if the lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() -> Result<()> {
        let a = Matrix::identity(4);
        let b = vec![1.0, -2.0, 3.0, 0.5];
        let x = a.lu_solve(&b)?;
        for (xi, bi) in x.iter().zip(b.iter()) {
            assert!((xi - bi).abs() < 1e-14);
        }
        Ok(())
    }

    #[test]
    fn lu_solve_matches_known_solution() -> Result<()> {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = a.lu_solve(&[8.0, -11.0, -3.0])?;
        let expected = [2.0, 3.0, -1.0];
        for (xi, ei) in x.iter().zip(expected.iter()) {
            assert!((xi - ei).abs() < 1e-12, "{x:?}");
        }
        Ok(())
    }

    #[test]
    fn lu_requires_pivoting() -> Result<()> {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.lu_solve(&[2.0, 3.0])?;
        assert!((x[0] - 3.0).abs() < 1e-14);
        assert!((x[1] - 2.0).abs() < 1e-14);
        Ok(())
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        match a.lu_solve(&[1.0, 2.0]) {
            Err(NumericsError::SingularMatrix { .. }) => {}
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn non_square_lu_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            a.lu_factor(),
            Err(NumericsError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.get(0, 0), 58.0);
        assert_eq!(c.get(0, 1), 64.0);
        assert_eq!(c.get(1, 0), 139.0);
        assert_eq!(c.get(1, 1), 154.0);
    }

    #[test]
    fn matvec_matches_matmul_with_column() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let y = a.matvec(&[3.0, 4.0]);
        assert_eq!(y, vec![-1.0, 8.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn lu_factors_reusable_across_rhs() -> Result<()> {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu_factor()?;
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -2.0]] {
            let x = lu.solve(&b)?;
            let r0 = 4.0 * x[0] + x[1] - b[0];
            let r1 = x[0] + 3.0 * x[1] - b[1];
            assert!(r0.abs() < 1e-12 && r1.abs() < 1e-12);
        }
        Ok(())
    }

    #[test]
    fn gemm_into_accumulates() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let mut out = Matrix::full(2, 2, 1.0);
        a.gemm_into(&b, &mut out);
        let expected = a.matmul(&b);
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(out.get(i, j), expected.get(i, j) + 1.0);
            }
        }
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0, 9.0], &[1.0, -1.0, 2.0]]);
        let mut out = Matrix::zeros(2, 2);
        a.gemm_nt_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b.transpose()));
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = Matrix::from_rows(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let mut out = Matrix::zeros(2, 2);
        a.gemm_tn_into(&b, &mut out);
        assert_eq!(out, a.transpose().matmul(&b));
    }

    #[test]
    fn reset_zeroed_reuses_and_reshapes() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.reset_zeroed(1, 3);
        assert_eq!((m.rows(), m.cols()), (1, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn lu_factor_into_reuses_buffers() -> Result<()> {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let mut factors = LuFactors::default();
        a.lu_factor_into(&mut factors)?;
        let fresh = a.lu_factor()?;
        assert_eq!(factors.lu, fresh.lu);
        assert_eq!(factors.perm, fresh.perm);
        // Refactor a different (larger) system into the same workspace.
        let b = Matrix::from_rows(&[&[0.0, 1.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]]);
        b.lu_factor_into(&mut factors)?;
        assert_eq!(factors.dim(), 3);
        let x = factors.solve(&[1.0, 2.0, 3.0])?;
        assert_eq!(x, vec![2.0, 1.0, 3.0]);
        Ok(())
    }

    #[test]
    fn solve_into_matches_solve_bitwise() -> Result<()> {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -1.0], &[0.2, -0.7, 5.0]]);
        let lu = a.lu_factor()?;
        let b = [1.0, -2.0, 0.25];
        let fresh = lu.solve(&b)?;
        let mut reused = vec![99.0; 7];
        lu.solve_into(&b, &mut reused)?;
        assert_eq!(fresh.len(), reused.len());
        for (f, r) in fresh.iter().zip(reused.iter()) {
            assert_eq!(f.to_bits(), r.to_bits());
        }
        Ok(())
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }
}
