//! 1-D and 2-D table interpolation.
//!
//! Standard-cell timing models are NLDM-style lookup tables indexed by
//! (input slew, output load); STA queries them with [`Bilinear`], which
//! linearly interpolates inside the grid and linearly extrapolates outside
//! it — the same convention commercial timers use.

use crate::guard::{check_finite, check_finite_scalar};
use crate::{NumericsError, Result};

/// Piecewise-linear interpolation over a strictly increasing axis, with
/// linear extrapolation beyond the ends.
///
/// # Example
///
/// ```
/// use stco_numerics::interp::lerp_axis;
///
/// let xs = [0.0, 1.0, 2.0];
/// let ys = [0.0, 10.0, 40.0];
/// assert_eq!(lerp_axis(&xs, &ys, 0.5), 5.0);
/// assert_eq!(lerp_axis(&xs, &ys, 3.0), 70.0); // extrapolated
/// ```
///
/// # Panics
///
/// Panics if `xs` and `ys` have different lengths or fewer than two points.
pub fn lerp_axis(xs: &[f64], ys: &[f64], x: f64) -> f64 {
    assert_eq!(xs.len(), ys.len(), "axis/value length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let i = segment_index(xs, x);
    let t = (x - xs[i]) / (xs[i + 1] - xs[i]);
    ys[i] + t * (ys[i + 1] - ys[i])
}

/// Validating variant of [`lerp_axis`]: rejects malformed or non-finite
/// inputs with a typed error instead of panicking or returning NaN.
///
/// # Errors
///
/// Returns [`NumericsError::NonFinite`] if `xs`, `ys`, or `x` contain
/// NaN/Inf, and [`NumericsError::InvalidArgument`] /
/// [`NumericsError::ShapeMismatch`] if the axis has fewer than two
/// points, is not strictly increasing, or the lengths differ.
pub fn try_lerp_axis(xs: &[f64], ys: &[f64], x: f64) -> Result<f64> {
    check_finite("lerp.xs", xs)?;
    check_finite("lerp.ys", ys)?;
    check_finite_scalar("lerp.x", x)?;
    if xs.len() != ys.len() {
        return Err(NumericsError::ShapeMismatch {
            context: format!("{} axis points vs {} values", xs.len(), ys.len()),
        });
    }
    if xs.len() < 2 {
        return Err(NumericsError::InvalidArgument {
            context: "need at least two points".into(),
        });
    }
    if xs.windows(2).any(|w| w[1] <= w[0]) {
        return Err(NumericsError::InvalidArgument {
            context: "axis must be strictly increasing".into(),
        });
    }
    Ok(lerp_axis(xs, ys, x))
}

/// Index of the segment used for interpolation/extrapolation at `x`.
///
/// Total: a NaN query (comparisons all false) falls through to the binary
/// search, where unordered comparisons are treated as `Less`, and the
/// result is clamped in-bounds — the caller then gets NaN out, never a
/// panic or out-of-range index.
fn segment_index(xs: &[f64], x: f64) -> usize {
    if x <= xs[0] {
        return 0;
    }
    if x >= xs[xs.len() - 1] {
        return xs.len() - 2;
    }
    // Binary search for the containing interval.
    match xs.binary_search_by(|v| v.partial_cmp(&x).unwrap_or(std::cmp::Ordering::Less)) {
        Ok(i) => i.min(xs.len() - 2),
        Err(i) => i.saturating_sub(1).min(xs.len() - 2),
    }
}

/// A bilinear interpolation table over a rectangular `(x, y)` grid.
///
/// Values are stored row-major: `values[i * ys.len() + j]` corresponds to
/// `(xs[i], ys[j])`.
///
/// # Example
///
/// ```
/// use stco_numerics::interp::Bilinear;
///
/// let t = Bilinear::new(
///     vec![0.0, 1.0],
///     vec![0.0, 1.0],
///     vec![0.0, 1.0, 2.0, 3.0],
/// )?;
/// assert!((t.eval(0.5, 0.5) - 1.5).abs() < 1e-12);
/// # Ok::<(), stco_numerics::NumericsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bilinear {
    xs: Vec<f64>,
    ys: Vec<f64>,
    values: Vec<f64>,
}

impl Bilinear {
    /// Builds a table from axes and row-major values.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::NonFinite`] if an axis or table value is
    /// NaN/Inf (the strictly-increasing check alone would let NaN axes
    /// through, since NaN comparisons are all false),
    /// [`NumericsError::InvalidArgument`] if either axis has fewer
    /// than two points or is not strictly increasing, or
    /// [`NumericsError::ShapeMismatch`] if `values.len() != xs.len() * ys.len()`.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        check_finite("bilinear.xs", &xs)?;
        check_finite("bilinear.ys", &ys)?;
        check_finite("bilinear.values", &values)?;
        for (name, axis) in [("x", &xs), ("y", &ys)] {
            if axis.len() < 2 {
                return Err(NumericsError::InvalidArgument {
                    context: format!("{name} axis needs at least two points"),
                });
            }
            if axis.windows(2).any(|w| w[1] <= w[0]) {
                return Err(NumericsError::InvalidArgument {
                    context: format!("{name} axis must be strictly increasing"),
                });
            }
        }
        if values.len() != xs.len() * ys.len() {
            return Err(NumericsError::ShapeMismatch {
                context: format!(
                    "{} values for a {}x{} grid",
                    values.len(),
                    xs.len(),
                    ys.len()
                ),
            });
        }
        Ok(Bilinear { xs, ys, values })
    }

    /// The x axis.
    pub fn x_axis(&self) -> &[f64] {
        &self.xs
    }

    /// The y axis.
    pub fn y_axis(&self) -> &[f64] {
        &self.ys
    }

    /// Row-major table values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Bilinear interpolation (and extrapolation outside the grid).
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let i = segment_index(&self.xs, x);
        let j = segment_index(&self.ys, y);
        let tx = (x - self.xs[i]) / (self.xs[i + 1] - self.xs[i]);
        let ty = (y - self.ys[j]) / (self.ys[j + 1] - self.ys[j]);
        let ny = self.ys.len();
        let v00 = self.values[i * ny + j];
        let v01 = self.values[i * ny + j + 1];
        let v10 = self.values[(i + 1) * ny + j];
        let v11 = self.values[(i + 1) * ny + j + 1];
        v00 * (1.0 - tx) * (1.0 - ty)
            + v10 * tx * (1.0 - ty)
            + v01 * (1.0 - tx) * ty
            + v11 * tx * ty
    }

    /// Validating variant of [`Bilinear::eval`]: rejects a NaN/Inf query
    /// point with a typed error instead of returning NaN.
    ///
    /// The table itself is proven finite at construction, so a finite
    /// query always yields a finite result.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::NonFinite`] if `x` or `y` is NaN/Inf.
    pub fn try_eval(&self, x: f64, y: f64) -> Result<f64> {
        check_finite_scalar("bilinear.query.x", x)?;
        check_finite_scalar("bilinear.query.y", y)?;
        Ok(self.eval(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lerp_exact_at_knots() {
        let xs = [0.0, 1.0, 3.0];
        let ys = [2.0, 4.0, 0.0];
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert_eq!(lerp_axis(&xs, &ys, *x), *y);
        }
    }

    #[test]
    fn lerp_midpoints_and_extrapolation() {
        let xs = [0.0, 2.0];
        let ys = [0.0, 4.0];
        assert_eq!(lerp_axis(&xs, &ys, 1.0), 2.0);
        assert_eq!(lerp_axis(&xs, &ys, -1.0), -2.0);
        assert_eq!(lerp_axis(&xs, &ys, 3.0), 6.0);
    }

    #[test]
    fn bilinear_reproduces_bilinear_function() -> Result<()> {
        // f(x, y) = 2x + 3y + xy is exactly representable.
        let xs = vec![0.0, 1.0, 2.0];
        let ys = vec![0.0, 0.5, 1.0];
        let f = |x: f64, y: f64| 2.0 * x + 3.0 * y + x * y;
        let mut values = Vec::new();
        for &x in &xs {
            for &y in &ys {
                values.push(f(x, y));
            }
        }
        let t = Bilinear::new(xs, ys, values)?;
        for &(x, y) in &[(0.25, 0.25), (1.5, 0.75), (0.9, 0.1), (3.0, 2.0)] {
            assert!((t.eval(x, y) - f(x, y)).abs() < 1e-12, "at ({x},{y})");
        }
        Ok(())
    }

    #[test]
    fn bilinear_rejects_bad_axes() {
        assert!(Bilinear::new(vec![0.0], vec![0.0, 1.0], vec![0.0, 0.0]).is_err());
        assert!(Bilinear::new(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0; 4]).is_err());
        assert!(Bilinear::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0; 3]).is_err());
    }

    #[test]
    fn bilinear_rejects_non_finite_inputs() {
        // A NaN axis passes the strictly-increasing check (NaN comparisons
        // are all false) — the finiteness guard must catch it.
        let r = Bilinear::new(vec![0.0, f64::NAN], vec![0.0, 1.0], vec![0.0; 4]);
        assert!(matches!(r, Err(NumericsError::NonFinite { .. })));
        let r = Bilinear::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![0.0, f64::INFINITY, 0.0, 0.0],
        );
        assert!(matches!(r, Err(NumericsError::NonFinite { .. })));
    }

    #[test]
    fn try_eval_rejects_nan_query() -> crate::Result<()> {
        let t = Bilinear::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0, 1.0, 2.0, 3.0])?;
        assert!((t.try_eval(0.5, 0.5)? - 1.5).abs() < 1e-12);
        assert!(matches!(
            t.try_eval(f64::NAN, 0.5),
            Err(NumericsError::NonFinite { .. })
        ));
        Ok(())
    }

    #[test]
    fn try_lerp_rejects_non_finite_and_malformed() -> crate::Result<()> {
        assert_eq!(try_lerp_axis(&[0.0, 2.0], &[0.0, 4.0], 1.0)?, 2.0);
        assert!(try_lerp_axis(&[0.0, f64::NAN], &[0.0, 4.0], 1.0).is_err());
        assert!(try_lerp_axis(&[0.0, 2.0], &[0.0, 4.0], f64::NAN).is_err());
        assert!(try_lerp_axis(&[2.0, 0.0], &[0.0, 4.0], 1.0).is_err());
        assert!(try_lerp_axis(&[0.0, 2.0], &[0.0], 1.0).is_err());
        Ok(())
    }
}
