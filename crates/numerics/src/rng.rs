//! A tiny, seedable xorshift generator for fully reproducible workloads.
//!
//! Every dataset generator in the workspace (TCAD device sampler, corner
//! grids, benchmark netlists, RL exploration) takes an explicit seed so that
//! `cargo test` and the table-regeneration binaries are deterministic across
//! runs and machines. The `rand` crate is still used where distributions
//! matter; this type covers the hot inner loops and keeps the workspace's
//! reproducibility independent of `rand`'s version-to-version stream
//! stability.

/// Xorshift64* pseudo-random generator.
///
/// # Example
///
/// ```
/// use stco_numerics::rng::Xorshift;
///
/// let mut a = Xorshift::new(42);
/// let mut b = Xorshift::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xorshift {
    state: u64,
}

impl Xorshift {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// nonzero constant (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        Xorshift {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high-quality bits → double in [0, 1).
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_in requires lo <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range requires n > 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f64 {
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i + 1);
            items.swap(i, j);
        }
    }

    /// Derives an independent child generator; used to give each dataset
    /// item its own stream so parallel generation is order-independent.
    pub fn fork(&mut self, tag: u64) -> Xorshift {
        Xorshift::new(self.next_u64() ^ tag.wrapping_mul(0xA076_1D64_78BD_642F))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xorshift::new(123);
        let mut b = Xorshift::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut z = Xorshift::new(0);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn uniform_stays_in_unit_interval() {
        let mut rng = Xorshift::new(5);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_near_half() {
        let mut rng = Xorshift::new(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = Xorshift::new(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gen_range_covers_all_buckets() {
        let mut rng = Xorshift::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xorshift::new(17);
        let mut v: Vec<usize> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn forked_streams_diverge() {
        let mut parent = Xorshift::new(99);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
