//! Runtime numeric-safety guards: finiteness checks at stage boundaries.
//!
//! One poisoned f64 (NaN or ±Inf) escaping a solver corrupts every
//! downstream metric — a NaN drain current becomes a NaN surrogate
//! label becomes a NaN system evaluation, and the failure surfaces ten
//! stages away from its cause. The guards here make the *first*
//! non-finite value the observable event:
//!
//! * [`check_finite`] / [`check_finite_scalar`] return a typed
//!   [`NumericsError::NonFinite`] naming the offending index and value
//!   — for library code that can propagate errors.
//! * [`debug_assert_all_finite!`](crate::debug_assert_all_finite) /
//!   [`debug_assert_finite!`](crate::debug_assert_finite) halt debug
//!   and test builds at the poisoned value and compile to nothing in
//!   release builds — for hot loops where a release-mode branch per
//!   element would be felt.
//! * [`FiniteSlice`] carries the proof of a successful check in the
//!   type, so an API can demand pre-validated data.
//!
//! These are wired into the Poisson Newton iteration, SPICE transient
//! accepts, GNN gradient updates and cell-metric outputs.

use crate::{NumericsError, Result};

/// True iff every element is finite (no NaN, no ±Inf).
pub fn all_finite(xs: &[f64]) -> bool {
    xs.iter().all(|v| v.is_finite())
}

/// First non-finite element, as `(index, value)`.
pub fn first_non_finite(xs: &[f64]) -> Option<(usize, f64)> {
    xs.iter()
        .enumerate()
        .find(|(_, v)| !v.is_finite())
        .map(|(i, &v)| (i, v))
}

/// Checks a slice, returning a typed error naming the first poisoned
/// entry.
///
/// # Errors
///
/// Returns [`NumericsError::NonFinite`] with `label[index] = value`
/// context on the first NaN/Inf element.
pub fn check_finite(label: &str, xs: &[f64]) -> Result<()> {
    match first_non_finite(xs) {
        None => Ok(()),
        Some((i, v)) => Err(NumericsError::NonFinite {
            context: format!("{label}[{i}] = {v}"),
        }),
    }
}

/// Checks a scalar, passing it through on success.
///
/// # Errors
///
/// Returns [`NumericsError::NonFinite`] if `x` is NaN or ±Inf.
pub fn check_finite_scalar(label: &str, x: f64) -> Result<f64> {
    if x.is_finite() {
        Ok(x)
    } else {
        Err(NumericsError::NonFinite {
            context: format!("{label} = {x}"),
        })
    }
}

/// A borrowed `&[f64]` proven finite at construction.
///
/// Functions that take a `FiniteSlice` can skip their own validation:
/// the only way to obtain one is through [`FiniteSlice::new`], which
/// runs [`check_finite`].
#[derive(Debug, Clone, Copy)]
pub struct FiniteSlice<'a> {
    data: &'a [f64],
}

impl<'a> FiniteSlice<'a> {
    /// Validates `data` and wraps it.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::NonFinite`] naming the first poisoned
    /// entry.
    pub fn new(label: &str, data: &'a [f64]) -> Result<Self> {
        check_finite(label, data)?;
        Ok(FiniteSlice { data })
    }

    /// The underlying slice.
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for FiniteSlice<'_> {
    type Target = [f64];

    fn deref(&self) -> &Self::Target {
        self.data
    }
}

/// Debug/test-build assertion that every element of a slice is finite.
///
/// Compiles to nothing in release builds. The panic message names the
/// label, index and value of the first poisoned entry, so the failure
/// points at the stage boundary that produced it — not ten stages later.
///
/// ```
/// stco_numerics::debug_assert_all_finite!("poisson.psi", &[0.0, 1.5]);
/// ```
#[macro_export]
macro_rules! debug_assert_all_finite {
    ($label:expr, $xs:expr) => {
        if cfg!(debug_assertions) {
            if let Some((i, v)) = $crate::guard::first_non_finite($xs) {
                // stco-check: allow(no-unwrap, guard macro must halt debug builds at the poisoned value)
                panic!("non-finite value: {}[{i}] = {v}", $label);
            }
        }
    };
}

/// Debug/test-build assertion that a scalar is finite.
///
/// Compiles to nothing in release builds.
///
/// ```
/// stco_numerics::debug_assert_finite!("cell.delay", 1.2e-9);
/// ```
#[macro_export]
macro_rules! debug_assert_finite {
    ($label:expr, $x:expr) => {
        if cfg!(debug_assertions) {
            let value: f64 = $x;
            if !value.is_finite() {
                // stco-check: allow(no-unwrap, guard macro must halt debug builds at the poisoned value)
                panic!("non-finite value: {} = {value}", $label);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_finite_spots_nan_and_inf() {
        assert!(all_finite(&[0.0, -1.5, 1e300]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
        assert!(!all_finite(&[f64::NEG_INFINITY, 1.0]));
    }

    #[test]
    fn check_finite_names_index_and_value() {
        let r = check_finite("psi", &[1.0, f64::NAN, 2.0]);
        match r {
            Err(NumericsError::NonFinite { context }) => {
                assert!(context.contains("psi[1]"), "{context}");
            }
            other => unreachable!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn check_finite_scalar_passes_values_through() -> crate::Result<()> {
        assert_eq!(check_finite_scalar("x", 2.5)?, 2.5);
        assert!(check_finite_scalar("x", f64::INFINITY).is_err());
        Ok(())
    }

    #[test]
    fn finite_slice_round_trips() -> crate::Result<()> {
        let data = [1.0, 2.0, 3.0];
        let fs = FiniteSlice::new("data", &data)?;
        assert_eq!(fs.len(), 3);
        assert!(!fs.is_empty());
        assert_eq!(fs.as_slice(), &data);
        assert_eq!(fs[1], 2.0);
        Ok(())
    }

    #[test]
    fn finite_slice_rejects_poisoned_data() {
        let data = [1.0, f64::NAN];
        assert!(FiniteSlice::new("data", &data).is_err());
    }

    #[test]
    fn debug_assert_macros_pass_finite_values() {
        debug_assert_all_finite!("xs", &[0.0, 1.0]);
        debug_assert_finite!("x", 0.5);
    }

    #[test]
    #[should_panic(expected = "non-finite value: xs[1]")]
    fn debug_assert_all_finite_panics_in_test_builds() {
        debug_assert_all_finite!("xs", &[0.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "non-finite value: x = inf")]
    fn debug_assert_finite_panics_in_test_builds() {
        debug_assert_finite!("x", f64::INFINITY);
    }
}
