//! Dense/sparse linear algebra, nonlinear solvers, interpolation and
//! statistics for the `fast-stco` workspace.
//!
//! This crate is the numerical substrate shared by every other crate in the
//! workspace: the TCAD device simulator assembles sparse Poisson systems and
//! solves them with [`solve::bicgstab`], the SPICE engine factors dense MNA
//! matrices with [`dense::Matrix::lu_solve`], the compact-model extractor
//! runs [`nonlinear::levenberg_marquardt`], the cell characterizer
//! interpolates NLDM tables with [`interp::Bilinear`], and the GNN surrogate
//! pipelines report [`stats`] metrics (MSE, MAPE, R²).
//!
//! # Example
//!
//! ```
//! use stco_numerics::dense::Matrix;
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let x = a.lu_solve(&[1.0, 2.0]).expect("nonsingular");
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! ```

pub mod dense;
pub mod dense32;
pub mod gemm;
pub mod guard;
pub mod interp;
pub mod nonlinear;
pub mod rng;
pub mod solve;
pub mod sparse;
pub mod stats;

pub use dense::Matrix;
pub use dense32::MatrixF32;
pub use sparse::CsrMatrix;

/// Workspace-wide error type for numerical routines.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// A matrix was singular (or numerically so) during factorization.
    SingularMatrix {
        /// Pivot index at which factorization broke down.
        pivot: usize,
    },
    /// An iterative method failed to reach the requested tolerance.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Residual norm at the final iterate.
        residual: f64,
    },
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        context: String,
    },
    /// An argument was outside its documented domain.
    InvalidArgument {
        /// Human-readable description of the violation.
        context: String,
    },
    /// A value that must be finite was NaN or ±Inf.
    NonFinite {
        /// What was checked and what it held, e.g. `psi[12] = NaN`.
        context: String,
    },
}

impl std::fmt::Display for NumericsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericsError::SingularMatrix { pivot } => {
                write!(f, "singular matrix at pivot {pivot}")
            }
            NumericsError::NoConvergence {
                iterations,
                residual,
            } => write!(
                f,
                "no convergence after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericsError::ShapeMismatch { context } => write!(f, "shape mismatch: {context}"),
            NumericsError::InvalidArgument { context } => write!(f, "invalid argument: {context}"),
            NumericsError::NonFinite { context } => write!(f, "non-finite value: {context}"),
        }
    }
}

impl std::error::Error for NumericsError {}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, NumericsError>;
