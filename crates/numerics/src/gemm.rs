//! Cache-blocked, register-tiled GEMM microkernels.
//!
//! One generic BLIS-style implementation (packed A/B panels, an
//! `MR × NR` register tile, MC/KC/NC cache blocking) instantiated for
//! both `f64` and `f32`. The public drivers are *bitwise-identical* to
//! the naive loops in [`crate::dense`] — that is the load-bearing
//! contract, pinned by proptests against the retained naive oracles:
//!
//! * [`gemm_nn_blocked`] / [`gemm_tn_blocked`] replay the naive kernels'
//!   direct accumulation into `out`: for every output element the
//!   contributions arrive in ascending-`k` order, one rounded
//!   multiply-then-add per step, exactly as the ikj/kij loops do. KC
//!   panels are applied in ascending order so blocking never reorders
//!   the per-element op sequence.
//! * [`gemm_nt_blocked`] mirrors `gemm_nt_into`'s `out += dot(a, b)`
//!   shape instead: a fresh zero-seeded accumulator swept over the
//!   *full* `k` extent (no KC split — splitting would add a rounded
//!   partial-sum merge the naive dot never performs), then a single add
//!   into `out`.
//!
//! No FMA contraction: `c += a * b` is a rounded multiply followed by a
//! rounded add in Rust scalar semantics, matching the naive kernels.
//! The tiles exist to keep `out` traffic in registers and to hand the
//! autovectorizer contiguous `NR`-wide inner loops, not to change the
//! arithmetic.
//!
//! Tail handling: partial strips are zero-padded to full `MR`/`NR`
//! width at pack time; the padded lanes accumulate garbage that is
//! never loaded from nor stored to `out`.

use std::cell::RefCell;
use std::ops::{Add, AddAssign, Mul};

/// Register tile height (rows of `out` held in registers).
pub const MR: usize = 4;
/// Register tile width; 8 f64 lanes = two AVX2 vectors per row.
pub const NR: usize = 8;
/// Row-panel height of the packed A block (L1-resident strips).
pub const MC: usize = 64;
/// Depth of one packed panel pair (L1/L2-resident).
pub const KC: usize = 256;
/// Column-panel width of the packed B block.
pub const NC: usize = 256;

/// Products below this many multiply-adds stay on the naive kernels:
/// MNA-sized SPICE systems (≈24³ ≈ 14k) lose to pack overhead, while
/// one GAT layer (64×32 · 32×32 = 65k) already wins.
pub const BLOCK_MIN_FLOPS: usize = 32 * 1024;

/// Dispatch predicate shared by every `gemm_*_into` entry point.
#[inline]
pub fn use_blocked(m: usize, n: usize, k: usize) -> bool {
    m.saturating_mul(n).saturating_mul(k) >= BLOCK_MIN_FLOPS
}

/// Scalar the blocked kernels are generic over. `Default` must be the
/// additive identity (0.0 for the float instantiations).
pub trait GemmScalar: Copy + Default + AddAssign + Add<Output = Self> + Mul<Output = Self> {}

impl GemmScalar for f64 {}
impl GemmScalar for f32 {}

thread_local! {
    static SCRATCH_F64: RefCell<(Vec<f64>, Vec<f64>)> = const { RefCell::new((Vec::new(), Vec::new())) };
    static SCRATCH_F32: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Runs `f` with the thread-local f64 pack buffers (A panel, B panel).
/// Falls back to fresh buffers if re-entered, so a panicking caller can
/// never poison the scratch.
pub fn with_f64_scratch<R>(f: impl FnOnce(&mut Vec<f64>, &mut Vec<f64>) -> R) -> R {
    SCRATCH_F64.with(|cell| match cell.try_borrow_mut() {
        Ok(mut guard) => {
            let (apack, bpack) = &mut *guard;
            f(apack, bpack)
        }
        Err(_) => f(&mut Vec::new(), &mut Vec::new()),
    })
}

/// f32 twin of [`with_f64_scratch`].
pub fn with_f32_scratch<R>(f: impl FnOnce(&mut Vec<f32>, &mut Vec<f32>) -> R) -> R {
    SCRATCH_F32.with(|cell| match cell.try_borrow_mut() {
        Ok(mut guard) => {
            let (apack, bpack) = &mut *guard;
            f(apack, bpack)
        }
        Err(_) => f(&mut Vec::new(), &mut Vec::new()),
    })
}

/// Packs an `mc × kc` logical block of A into `MR`-row strips, k-major
/// within each strip (`out[strip][kk*MR + r]`), zero-padding the last
/// strip. `trans` reads the block from a transposed source layout
/// (`src[(k0+kk)*ld + row0+r]`), which is how the TN driver views
/// `self` without materializing `selfᵀ`.
// stco-hot
#[allow(clippy::too_many_arguments)]
fn pack_a<T: GemmScalar>(
    src: &[T],
    ld: usize,
    trans: bool,
    row0: usize,
    k0: usize,
    mc: usize,
    kc: usize,
    out: &mut Vec<T>,
) {
    let strips = mc.div_ceil(MR);
    out.clear();
    out.resize(strips * MR * kc, T::default());
    for s in 0..strips {
        let base = s * MR * kc;
        let rmax = (mc - s * MR).min(MR);
        for kk in 0..kc {
            let dst = &mut out[base + kk * MR..base + kk * MR + rmax];
            if trans {
                let row = &src[(k0 + kk) * ld + row0 + s * MR..];
                for (d, v) in dst.iter_mut().zip(row.iter()) {
                    *d = *v;
                }
            } else {
                for (r, d) in dst.iter_mut().enumerate() {
                    *d = src[(row0 + s * MR + r) * ld + k0 + kk];
                }
            }
        }
    }
}

/// Packs a `kc × nc` logical block of B into `NR`-column strips, k-major
/// within each strip (`out[strip][kk*NR + c]`), zero-padding the last
/// strip. `trans` reads the block from a transposed source layout
/// (`src[(col0+c)*ld + k0+kk]`), which is how the NT driver views `rhs`.
// stco-hot
#[allow(clippy::too_many_arguments)]
fn pack_b<T: GemmScalar>(
    src: &[T],
    ld: usize,
    trans: bool,
    k0: usize,
    col0: usize,
    kc: usize,
    nc: usize,
    out: &mut Vec<T>,
) {
    let strips = nc.div_ceil(NR);
    out.clear();
    out.resize(strips * NR * kc, T::default());
    for t in 0..strips {
        let base = t * NR * kc;
        let cmax = (nc - t * NR).min(NR);
        for kk in 0..kc {
            let dst = &mut out[base + kk * NR..base + kk * NR + cmax];
            if trans {
                for (c, d) in dst.iter_mut().enumerate() {
                    *d = src[(col0 + t * NR + c) * ld + k0 + kk];
                }
            } else {
                let row = &src[(k0 + kk) * ld + col0 + t * NR..];
                for (d, v) in dst.iter_mut().zip(row.iter()) {
                    *d = *v;
                }
            }
        }
    }
}

/// The register-tile inner loop: `c[m][n] += a[m] * b[n]` for each `kk`,
/// ascending. Strict multiply-then-add per element — the exact rounded
/// op sequence the naive kernels perform. The four accumulator rows are
/// separate flat arrays (not `[[T; NR]; MR]`) so scalar replacement
/// keeps them in registers, and `chunks_exact` hands the autovectorizer
/// bound-check-free `MR`/`NR`-wide strips.
// stco-hot
#[inline(always)]
fn micro_acc<T: GemmScalar>(kc: usize, a: &[T], b: &[T], c: &mut [[T; NR]; MR]) {
    let [c0, c1, c2, c3] = c;
    for (av, bv) in a.chunks_exact(MR).zip(b.chunks_exact(NR)).take(kc) {
        let (a0, a1, a2, a3) = (av[0], av[1], av[2], av[3]);
        for j in 0..NR {
            let bj = bv[j];
            c0[j] += a0 * bj;
            c1[j] += a1 * bj;
            c2[j] += a2 * bj;
            c3[j] += a3 * bj;
        }
    }
}

/// Direct-accumulation tile: load the live `out` values, accumulate the
/// panel, store back. Used by the NN/TN drivers, once per KC panel.
/// The full-tile fast path holds exactly one inlined copy of
/// [`micro_acc`]; tail tiles take the out-of-line partial path so
/// register allocation of the hot path never degrades.
#[allow(clippy::too_many_arguments)]
#[inline]
// stco-hot
fn micro_tile_load_store<T: GemmScalar>(
    kc: usize,
    a: &[T],
    b: &[T],
    out: &mut [T],
    ldo: usize,
    row0: usize,
    col0: usize,
    mmax: usize,
    nmax: usize,
) {
    if mmax == MR && nmax == NR {
        let mut c = [[T::default(); NR]; MR];
        for (m, crow) in c.iter_mut().enumerate() {
            let orow = &out[(row0 + m) * ldo + col0..(row0 + m) * ldo + col0 + NR];
            crow.copy_from_slice(orow);
        }
        micro_acc(kc, a, b, &mut c);
        for (m, crow) in c.iter().enumerate() {
            let orow = &mut out[(row0 + m) * ldo + col0..(row0 + m) * ldo + col0 + NR];
            orow.copy_from_slice(crow);
        }
    } else {
        micro_tile_load_store_partial(kc, a, b, out, ldo, row0, col0, mmax, nmax);
    }
}

/// Tail-tile variant of [`micro_tile_load_store`], kept out of line.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
// stco-hot
fn micro_tile_load_store_partial<T: GemmScalar>(
    kc: usize,
    a: &[T],
    b: &[T],
    out: &mut [T],
    ldo: usize,
    row0: usize,
    col0: usize,
    mmax: usize,
    nmax: usize,
) {
    let mut c = [[T::default(); NR]; MR];
    for (m, crow) in c.iter_mut().enumerate().take(mmax) {
        let orow = &out[(row0 + m) * ldo + col0..(row0 + m) * ldo + col0 + nmax];
        for (cv, o) in crow.iter_mut().zip(orow.iter()) {
            *cv = *o;
        }
    }
    micro_acc(kc, a, b, &mut c);
    for (m, crow) in c.iter().enumerate().take(mmax) {
        let orow = &mut out[(row0 + m) * ldo + col0..(row0 + m) * ldo + col0 + nmax];
        for (o, cv) in orow.iter_mut().zip(crow.iter()) {
            *o = *cv;
        }
    }
}

/// Fresh-accumulator tile: zero-seeded registers swept over the full
/// `k` extent, then one rounded add into `out` — `gemm_nt_into`'s
/// `out += dot(...)` shape. Used by the NT driver. Split like
/// [`micro_tile_load_store`] so the hot full-tile path carries exactly
/// one inlined copy of [`micro_acc`].
#[allow(clippy::too_many_arguments)]
#[inline]
// stco-hot
fn micro_tile_fresh_add<T: GemmScalar>(
    k: usize,
    a: &[T],
    b: &[T],
    out: &mut [T],
    ldo: usize,
    row0: usize,
    col0: usize,
    mmax: usize,
    nmax: usize,
) {
    if mmax == MR && nmax == NR {
        let mut c = [[T::default(); NR]; MR];
        micro_acc(k, a, b, &mut c);
        for (m, crow) in c.iter().enumerate() {
            let orow = &mut out[(row0 + m) * ldo + col0..(row0 + m) * ldo + col0 + NR];
            for j in 0..NR {
                orow[j] += crow[j];
            }
        }
    } else {
        micro_tile_fresh_add_partial(k, a, b, out, ldo, row0, col0, mmax, nmax);
    }
}

/// Tail-tile variant of [`micro_tile_fresh_add`], kept out of line.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
// stco-hot
fn micro_tile_fresh_add_partial<T: GemmScalar>(
    k: usize,
    a: &[T],
    b: &[T],
    out: &mut [T],
    ldo: usize,
    row0: usize,
    col0: usize,
    mmax: usize,
    nmax: usize,
) {
    let mut c = [[T::default(); NR]; MR];
    micro_acc(k, a, b, &mut c);
    for (m, crow) in c.iter().enumerate().take(mmax) {
        let orow = &mut out[(row0 + m) * ldo + col0..(row0 + m) * ldo + col0 + nmax];
        for (o, cv) in orow.iter_mut().zip(crow.iter()) {
            *o += *cv;
        }
    }
}

/// Shared NN/TN driver: `out += A·B` with A read straight (`atrans =
/// false`, `lda = k`) or transposed (`atrans = true`, `lda = m`). The
/// KC loop sits outside the row-panel loop so each output element sees
/// its panels in ascending-`k` order — the bitwise contract.
// stco-hot
#[allow(clippy::too_many_arguments)]
fn gemm_direct_blocked<T: GemmScalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    lda: usize,
    atrans: bool,
    b: &[T],
    out: &mut [T],
    apack: &mut Vec<T>,
    bpack: &mut Vec<T>,
) {
    debug_assert_eq!(out.len(), m * n);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            pack_b(b, n, false, pc, jc, kc, nc, bpack);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                pack_a(a, lda, atrans, ic, pc, mc, kc, apack);
                for s in 0..mc.div_ceil(MR) {
                    let astrip = &apack[s * MR * kc..(s + 1) * MR * kc];
                    let mmax = (mc - s * MR).min(MR);
                    for t in 0..nc.div_ceil(NR) {
                        let bstrip = &bpack[t * NR * kc..(t + 1) * NR * kc];
                        let nmax = (nc - t * NR).min(NR);
                        micro_tile_load_store(
                            kc,
                            astrip,
                            bstrip,
                            out,
                            n,
                            ic + s * MR,
                            jc + t * NR,
                            mmax,
                            nmax,
                        );
                    }
                }
            }
        }
    }
}

/// Blocked `out += A·B` for row-major `A: m×k`, `B: k×n`, `out: m×n`.
/// Bitwise-identical to the naive ikj kernel.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_blocked<T: GemmScalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    b: &[T],
    out: &mut [T],
    apack: &mut Vec<T>,
    bpack: &mut Vec<T>,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    gemm_direct_blocked(m, n, k, a, k, false, b, out, apack, bpack);
}

/// Blocked `out += Aᵀ·B` for row-major `A: k×m` (passed untransposed),
/// `B: k×n`, `out: m×n`. Bitwise-identical to the naive kij kernel.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn_blocked<T: GemmScalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    b: &[T],
    out: &mut [T],
    apack: &mut Vec<T>,
    bpack: &mut Vec<T>,
) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    gemm_direct_blocked(m, n, k, a, m, true, b, out, apack, bpack);
}

/// Blocked `out += A·Bᵀ` for row-major `A: m×k`, `B: n×k` (passed
/// untransposed), `out: m×n`. Bitwise-identical to the naive
/// dot-product kernel: each tile accumulates from zero over the full
/// `k` extent (no KC split), then adds into `out` once. Pack memory is
/// `(MC + NC) × k` scalars, fine for the `k ≲ 10³` this workspace sees.
// stco-hot
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_blocked<T: GemmScalar>(
    m: usize,
    n: usize,
    k: usize,
    a: &[T],
    b: &[T],
    out: &mut [T],
    apack: &mut Vec<T>,
    bpack: &mut Vec<T>,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        pack_b(b, k, true, 0, jc, k, nc, bpack);
        for ic in (0..m).step_by(MC) {
            let mc = MC.min(m - ic);
            pack_a(a, k, false, ic, 0, mc, k, apack);
            for s in 0..mc.div_ceil(MR) {
                let astrip = &apack[s * MR * k..(s + 1) * MR * k];
                let mmax = (mc - s * MR).min(MR);
                for t in 0..nc.div_ceil(NR) {
                    let bstrip = &bpack[t * NR * k..(t + 1) * NR * k];
                    let nmax = (nc - t * NR).min(NR);
                    micro_tile_fresh_add(
                        k,
                        astrip,
                        bstrip,
                        out,
                        n,
                        ic + s * MR,
                        jc + t * NR,
                        mmax,
                        nmax,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xorshift;

    fn naive_nn(m: usize, n: usize, k: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    out[i * n + j] += av * b[kk * n + j];
                }
            }
        }
    }

    fn random_vec(rng: &mut Xorshift, len: usize) -> Vec<f64> {
        (0..len).map(|_| rng.uniform_in(-2.0, 2.0)).collect()
    }

    #[test]
    fn blocked_nn_matches_naive_across_shapes() {
        let mut rng = Xorshift::new(3);
        for (m, n, k) in [
            (1, 1, 1),
            (4, 8, 16),
            (5, 9, 17),
            (64, 32, 32),
            (67, 33, 31),
            (MC + 3, NR + 1, KC + 5),
        ] {
            let a = random_vec(&mut rng, m * k);
            let b = random_vec(&mut rng, k * n);
            let mut want = random_vec(&mut rng, m * n);
            let mut got = want.clone();
            naive_nn(m, n, k, &a, &b, &mut want);
            let (mut ap, mut bp) = (Vec::new(), Vec::new());
            gemm_nn_blocked(m, n, k, &a, &b, &mut got, &mut ap, &mut bp);
            for (g, w) in got.iter().zip(want.iter()) {
                assert_eq!(g.to_bits(), w.to_bits(), "{m}x{n}x{k}");
            }
        }
    }

    #[test]
    fn empty_k_leaves_direct_out_untouched_and_adds_zero_for_nt() {
        let mut out = vec![-0.0_f64, 1.5];
        let (mut ap, mut bp) = (Vec::new(), Vec::new());
        gemm_nn_blocked(1, 2, 0, &[], &[], &mut out, &mut ap, &mut bp);
        assert_eq!(out[0].to_bits(), (-0.0_f64).to_bits());
        // NT performs `out += 0.0` even for k = 0, matching the naive
        // `out += dot(&[], &[])`; that add normalizes -0.0 to +0.0.
        gemm_nt_blocked(1, 2, 0, &[], &[], &mut out, &mut ap, &mut bp);
        assert_eq!(out[0].to_bits(), 0.0_f64.to_bits());
        assert_eq!(out[1], 1.5);
    }

    #[test]
    fn dispatch_threshold_splits_mna_from_gat() {
        assert!(!use_blocked(24, 24, 24));
        assert!(use_blocked(64, 32, 32));
    }

    #[test]
    fn f32_instantiation_multiplies() {
        let a: Vec<f32> = vec![1.0, 2.0, 3.0, 4.0];
        let b: Vec<f32> = vec![5.0, 6.0, 7.0, 8.0];
        let mut out = vec![0.0_f32; 4];
        let (mut ap, mut bp) = (Vec::new(), Vec::new());
        gemm_nn_blocked(2, 2, 2, &a, &b, &mut out, &mut ap, &mut bp);
        assert_eq!(out, vec![19.0, 22.0, 43.0, 50.0]);
    }
}
