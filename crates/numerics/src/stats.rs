//! The accuracy metrics the paper reports: MSE (Table II), MAPE (Table IV)
//! and the coefficient of determination R² (Table II, 32k unseen set).

use crate::{NumericsError, Result};

/// Mean squared error between predictions and targets.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on length mismatch and
/// [`NumericsError::InvalidArgument`] on empty input.
pub fn mse(pred: &[f64], target: &[f64]) -> Result<f64> {
    check(pred, target)?;
    Ok(pred
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / pred.len() as f64)
}

/// Root mean squared error.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn rmse(pred: &[f64], target: &[f64]) -> Result<f64> {
    Ok(mse(pred, target)?.sqrt())
}

/// Mean absolute error.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn mae(pred: &[f64], target: &[f64]) -> Result<f64> {
    check(pred, target)?;
    Ok(pred
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / pred.len() as f64)
}

/// Mean absolute percentage error, in percent — the metric of Table IV.
///
/// Targets with magnitude below `floor` are skipped (the paper notes that
/// near-zero dynamic-power points dominate percentage error; we make the
/// guard explicit).
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on length mismatch and
/// [`NumericsError::InvalidArgument`] if no target exceeds the floor.
pub fn mape(pred: &[f64], target: &[f64], floor: f64) -> Result<f64> {
    check(pred, target)?;
    let mut total = 0.0;
    let mut n = 0usize;
    for (p, t) in pred.iter().zip(target) {
        if t.abs() > floor {
            total += ((p - t) / t).abs();
            n += 1;
        }
    }
    if n == 0 {
        return Err(NumericsError::InvalidArgument {
            context: "no targets above the MAPE floor".into(),
        });
    }
    Ok(100.0 * total / n as f64)
}

/// Coefficient of determination R² — the metric of Table II's unseen set.
///
/// # Errors
///
/// Returns [`NumericsError::ShapeMismatch`] on length mismatch and
/// [`NumericsError::InvalidArgument`] if the targets are constant (variance
/// zero makes R² undefined).
pub fn r_squared(pred: &[f64], target: &[f64]) -> Result<f64> {
    check(pred, target)?;
    let mean = target.iter().sum::<f64>() / target.len() as f64;
    let ss_tot: f64 = target.iter().map(|t| (t - mean) * (t - mean)).sum();
    if ss_tot < 1e-300 {
        return Err(NumericsError::InvalidArgument {
            context: "targets have zero variance; R² undefined".into(),
        });
    }
    let ss_res: f64 = pred
        .iter()
        .zip(target)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    Ok(1.0 - ss_res / ss_tot)
}

/// Sample mean and (population) standard deviation.
///
/// # Errors
///
/// Returns [`NumericsError::InvalidArgument`] on empty input.
pub fn mean_std(values: &[f64]) -> Result<(f64, f64)> {
    if values.is_empty() {
        return Err(NumericsError::InvalidArgument {
            context: "mean of empty slice".into(),
        });
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    Ok((mean, var.sqrt()))
}

/// Per-feature standardization statistics (`z = (x − mean) / std`), used by
/// the surrogate training pipelines to normalize node features and targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    /// Per-feature means.
    pub mean: Vec<f64>,
    /// Per-feature standard deviations (floored at 1e-12).
    pub std: Vec<f64>,
}

impl Standardizer {
    /// Fits statistics over rows of `dim`-wide features stored flat.
    ///
    /// # Errors
    ///
    /// Returns [`NumericsError::ShapeMismatch`] if `data.len()` is not a
    /// multiple of `dim`, or [`NumericsError::InvalidArgument`] on empty
    /// data.
    pub fn fit(data: &[f64], dim: usize) -> Result<Self> {
        if dim == 0 || !data.len().is_multiple_of(dim) {
            return Err(NumericsError::ShapeMismatch {
                context: format!("{} values with feature dim {dim}", data.len()),
            });
        }
        let n = data.len() / dim;
        if n == 0 {
            return Err(NumericsError::InvalidArgument {
                context: "cannot fit standardizer on empty data".into(),
            });
        }
        let mut mean = vec![0.0; dim];
        for row in data.chunks_exact(dim) {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; dim];
        for row in data.chunks_exact(dim) {
            for ((s, v), m) in var.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let std = var
            .into_iter()
            .map(|v| (v / n as f64).sqrt().max(1e-12))
            .collect();
        Ok(Standardizer { mean, std })
    }

    /// Standardizes rows in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the fitted dimension.
    pub fn apply(&self, data: &mut [f64]) {
        let dim = self.mean.len();
        assert_eq!(data.len() % dim, 0, "data not a multiple of feature dim");
        for row in data.chunks_exact_mut(dim) {
            for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *v = (*v - m) / s;
            }
        }
    }

    /// Undoes [`Standardizer::apply`] in place.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of the fitted dimension.
    pub fn invert(&self, data: &mut [f64]) {
        let dim = self.mean.len();
        assert_eq!(data.len() % dim, 0, "data not a multiple of feature dim");
        for row in data.chunks_exact_mut(dim) {
            for ((v, m), s) in row.iter_mut().zip(&self.mean).zip(&self.std) {
                *v = *v * s + m;
            }
        }
    }
}

fn check(pred: &[f64], target: &[f64]) -> Result<()> {
    if pred.len() != target.len() {
        return Err(NumericsError::ShapeMismatch {
            context: format!("{} predictions vs {} targets", pred.len(), target.len()),
        });
    }
    if pred.is_empty() {
        return Err(NumericsError::InvalidArgument {
            context: "metric of empty slices".into(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_perfect_prediction_is_zero() -> Result<()> {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mse(&y, &y)?, 0.0);
        assert_eq!(r_squared(&y, &y)?, 1.0);
        Ok(())
    }

    #[test]
    fn mse_hand_computed() -> Result<()> {
        let e = mse(&[1.0, 2.0], &[0.0, 4.0])?;
        assert!((e - 2.5).abs() < 1e-15);
        assert!((rmse(&[1.0, 2.0], &[0.0, 4.0])? - 2.5f64.sqrt()).abs() < 1e-15);
        Ok(())
    }

    #[test]
    fn mape_hand_computed() -> Result<()> {
        // |1-2|/2 = 0.5, |3-4|/4 = 0.25 → 37.5 %.
        let m = mape(&[1.0, 3.0], &[2.0, 4.0], 0.0)?;
        assert!((m - 37.5).abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn mape_floor_skips_tiny_targets() -> Result<()> {
        let m = mape(&[1.0, 100.0], &[1e-15, 100.0], 1e-12)?;
        assert_eq!(m, 0.0);
        Ok(())
    }

    #[test]
    fn r_squared_of_mean_prediction_is_zero() -> Result<()> {
        let target = [1.0, 2.0, 3.0, 4.0];
        let pred = [2.5; 4];
        assert!(r_squared(&pred, &target)?.abs() < 1e-12);
        Ok(())
    }

    #[test]
    fn r_squared_rejects_constant_targets() {
        assert!(r_squared(&[1.0, 2.0], &[3.0, 3.0]).is_err());
    }

    #[test]
    fn metrics_reject_mismatched_lengths() {
        assert!(mse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mape(&[1.0], &[], 0.0).is_err());
    }

    #[test]
    fn standardizer_round_trips() -> Result<()> {
        let data = vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        let s = Standardizer::fit(&data, 2)?;
        let mut z = data.clone();
        s.apply(&mut z);
        // Column means ~0 after standardization.
        let m0 = (z[0] + z[2] + z[4]) / 3.0;
        assert!(m0.abs() < 1e-12);
        s.invert(&mut z);
        for (a, b) in z.iter().zip(&data) {
            assert!((a - b).abs() < 1e-9);
        }
        Ok(())
    }

    #[test]
    fn mean_std_hand_computed() -> Result<()> {
        let (m, s) = mean_std(&[2.0, 4.0])?;
        assert_eq!(m, 3.0);
        assert_eq!(s, 1.0);
        Ok(())
    }
}
