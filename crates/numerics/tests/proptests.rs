//! Property-based tests of the numerical substrate: solver consistency,
//! sparse-format equivalence and metric invariants over randomized
//! inputs.

use proptest::prelude::*;
use stco_numerics::dense::{norm2, Matrix};
use stco_numerics::dense32::MatrixF32;
use stco_numerics::interp::Bilinear;
use stco_numerics::solve::{bicgstab, conjugate_gradient, IterOptions};
use stco_numerics::sparse::CsrMatrix;
use stco_numerics::stats;

/// Strategy: a strictly diagonally dominant matrix (always nonsingular,
/// and friendly to every solver in the crate).
fn dominant_matrix(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-1.0..1.0f64, n), n).prop_map(move |mut rows| {
        for (i, row) in rows.iter_mut().enumerate() {
            let off: f64 = row
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, v)| v.abs())
                .sum();
            row[i] = off + 1.0;
        }
        rows
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_residual_is_small(rows in dominant_matrix(6), b in prop::collection::vec(-10.0..10.0f64, 6)) {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs);
        let x = a.lu_solve(&b).expect("dominant matrices are nonsingular");
        let ax = a.matvec(&x);
        let res: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        prop_assert!(norm2(&res) < 1e-8 * (1.0 + norm2(&b)));
    }

    #[test]
    fn bicgstab_agrees_with_lu(rows in dominant_matrix(6), b in prop::collection::vec(-5.0..5.0f64, 6)) {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let dense = Matrix::from_rows(&refs);
        let mut triplets = Vec::new();
        for (i, row) in rows.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    triplets.push((i, j, v));
                }
            }
        }
        let sparse = CsrMatrix::from_triplets(6, 6, &triplets);
        let x_lu = dense.lu_solve(&b).expect("nonsingular");
        let x_it = bicgstab(&sparse, &b, &IterOptions { tol: 1e-12, max_iter: 2000 })
            .expect("dominant systems converge");
        for (a_, b_) in x_lu.iter().zip(&x_it.x) {
            prop_assert!((a_ - b_).abs() < 1e-6, "{a_} vs {b_}");
        }
    }

    #[test]
    fn cg_solves_spd_gram_systems(rows in dominant_matrix(5), b in prop::collection::vec(-3.0..3.0f64, 5)) {
        // AᵀA is SPD for any nonsingular A.
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs);
        let ata = a.transpose().matmul(&a);
        let mut triplets = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                triplets.push((i, j, ata.get(i, j)));
            }
        }
        let sparse = CsrMatrix::from_triplets(5, 5, &triplets);
        let sol = conjugate_gradient(&sparse, &b, &IterOptions { tol: 1e-12, max_iter: 5000 })
            .expect("SPD systems converge");
        let ax = sparse.matvec(&sol.x);
        let res: Vec<f64> = ax.iter().zip(&b).map(|(p, q)| p - q).collect();
        prop_assert!(norm2(&res) < 1e-6 * (1.0 + norm2(&b)));
    }

    #[test]
    fn csr_matvec_matches_dense(triplets in prop::collection::vec((0usize..8, 0usize..8, -5.0..5.0f64), 1..40),
                                x in prop::collection::vec(-2.0..2.0f64, 8)) {
        let csr = CsrMatrix::from_triplets(8, 8, &triplets);
        csr.validate().expect("construction invariants hold");
        let dense = csr.to_dense();
        let ys = csr.matvec(&x);
        let yd = dense.matvec(&x);
        for (a, b) in ys.iter().zip(&yd) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn csr_transpose_involutive(triplets in prop::collection::vec((0usize..6, 0usize..9, -5.0..5.0f64), 0..30)) {
        let csr = CsrMatrix::from_triplets(6, 9, &triplets);
        prop_assert_eq!(csr.transpose().transpose(), csr);
    }

    #[test]
    fn matmul_is_associative(a in prop::collection::vec(-2.0..2.0f64, 6),
                             b in prop::collection::vec(-2.0..2.0f64, 6),
                             c in prop::collection::vec(-2.0..2.0f64, 6)) {
        let ma = Matrix::from_vec(2, 3, a);
        let mb = Matrix::from_vec(3, 2, b);
        let mc = Matrix::from_vec(2, 3, c);
        let left = ma.matmul(&mb).matmul(&mc);
        let right = ma.matmul(&mb.matmul(&mc));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn gemm_nt_into_bitwise_matches_transpose_matmul(a in prop::collection::vec(-10.0..10.0f64, 12),
                                                     b in prop::collection::vec(-10.0..10.0f64, 20)) {
        let ma = Matrix::from_vec(3, 4, a);
        let mb = Matrix::from_vec(5, 4, b);
        let reference = ma.matmul(&mb.transpose());
        let mut out = Matrix::zeros(3, 5);
        ma.gemm_nt_into(&mb, &mut out);
        for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gemm_tn_into_bitwise_matches_transpose_matmul(a in prop::collection::vec(-10.0..10.0f64, 12),
                                                     b in prop::collection::vec(-10.0..10.0f64, 20)) {
        let ma = Matrix::from_vec(4, 3, a);
        let mb = Matrix::from_vec(4, 5, b);
        let reference = ma.transpose().matmul(&mb);
        let mut out = Matrix::zeros(3, 5);
        ma.gemm_tn_into(&mb, &mut out);
        for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gemm_into_bitwise_matches_matmul(a in prop::collection::vec(-10.0..10.0f64, 12),
                                        b in prop::collection::vec(-10.0..10.0f64, 16)) {
        let ma = Matrix::from_vec(3, 4, a);
        let mb = Matrix::from_vec(4, 4, b);
        let reference = ma.matmul(&mb);
        let mut out = Matrix::zeros(3, 4);
        ma.gemm_into(&mb, &mut out);
        for (x, y) in out.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocked_gemm_nn_bitwise_matches_naive_oracle(
        shape in (1usize..20, 1usize..20, 0usize..20),
        seed in 1u64..u64::MAX,
        fill in -3.0..3.0f64,
    ) {
        // Odd/tail shapes well below the dispatch threshold, exercised
        // through the always-blocked entry point, accumulating into a
        // nonzero out.
        let (m, n, k) = shape;
        let mut rng = stco_numerics::rng::Xorshift::new(seed | 1);
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.uniform_in(-5.0, 5.0)).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.uniform_in(-5.0, 5.0)).collect());
        let mut naive = Matrix::full(m, n, fill);
        let mut blocked = naive.clone();
        a.gemm_into_naive(&b, &mut naive);
        a.gemm_into_blocked(&b, &mut blocked);
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocked_gemm_nt_bitwise_matches_naive_oracle(
        shape in (1usize..20, 1usize..20, 0usize..20),
        seed in 1u64..u64::MAX,
        fill in -3.0..3.0f64,
    ) {
        let (m, n, k) = shape;
        let mut rng = stco_numerics::rng::Xorshift::new(seed | 1);
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.uniform_in(-5.0, 5.0)).collect());
        let b = Matrix::from_vec(n, k, (0..n * k).map(|_| rng.uniform_in(-5.0, 5.0)).collect());
        let mut naive = Matrix::full(m, n, fill);
        let mut blocked = naive.clone();
        a.gemm_nt_into_naive(&b, &mut naive);
        a.gemm_nt_into_blocked(&b, &mut blocked);
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocked_gemm_tn_bitwise_matches_naive_oracle(
        shape in (1usize..20, 1usize..20, 1usize..20),
        seed in 1u64..u64::MAX,
        fill in -3.0..3.0f64,
    ) {
        let (m, n, k) = shape;
        let mut rng = stco_numerics::rng::Xorshift::new(seed | 1);
        let a = Matrix::from_vec(k, m, (0..k * m).map(|_| rng.uniform_in(-5.0, 5.0)).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.uniform_in(-5.0, 5.0)).collect());
        let mut naive = Matrix::full(m, n, fill);
        let mut blocked = naive.clone();
        a.gemm_tn_into_naive(&b, &mut naive);
        a.gemm_tn_into_blocked(&b, &mut blocked);
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn blocked_gemm_above_threshold_dispatch_is_invisible(seed in 1u64..u64::MAX) {
        // GAT-shaped product above the dispatch threshold: the public
        // gemm_into (which takes the blocked path here) must be
        // bitwise-identical to the retained naive oracle.
        let (m, n, k) = (64usize, 32usize, 32usize);
        let mut rng = stco_numerics::rng::Xorshift::new(seed | 1);
        let a = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.uniform_in(-5.0, 5.0)).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.uniform_in(-5.0, 5.0)).collect());
        let mut naive = Matrix::zeros(m, n);
        let mut dispatched = Matrix::zeros(m, n);
        a.gemm_into_naive(&b, &mut naive);
        a.gemm_into(&b, &mut dispatched);
        for (x, y) in dispatched.as_slice().iter().zip(naive.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn f32_blocked_gemm_bitwise_matches_f32_naive(
        shape in (1usize..16, 1usize..16, 1usize..16),
        seed in 1u64..u64::MAX,
    ) {
        let (m, n, k) = shape;
        let mut rng = stco_numerics::rng::Xorshift::new(seed | 1);
        let af = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.uniform_in(-5.0, 5.0)).collect());
        let bf = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.uniform_in(-5.0, 5.0)).collect());
        let a = MatrixF32::from_f64(&af);
        let b = MatrixF32::from_f64(&bf);
        let mut naive = MatrixF32::zeros(m, n);
        let mut blocked = MatrixF32::zeros(m, n);
        a.gemm_into_naive(&b, &mut naive);
        a.gemm_into_blocked(&b, &mut blocked);
        for (x, y) in blocked.as_slice().iter().zip(naive.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn f32_gemm_stays_within_relative_error_of_f64(seed in 1u64..u64::MAX) {
        // GAT-shaped product: the f32 path must track the f64 reference
        // within a k·eps-scaled relative bound on every element.
        let (m, n, k) = (64usize, 32usize, 32usize);
        let mut rng = stco_numerics::rng::Xorshift::new(seed | 1);
        let af = Matrix::from_vec(m, k, (0..m * k).map(|_| rng.uniform_in(-1.0, 1.0)).collect());
        let bf = Matrix::from_vec(k, n, (0..k * n).map(|_| rng.uniform_in(-1.0, 1.0)).collect());
        let mut reference = Matrix::zeros(m, n);
        af.gemm_into(&bf, &mut reference);
        let a32 = MatrixF32::from_f64(&af);
        let b32 = MatrixF32::from_f64(&bf);
        let mut out32 = MatrixF32::zeros(m, n);
        a32.gemm_into(&b32, &mut out32);
        // Forward-error model: |err| <= k * eps_f32 * sum |a||b|; the
        // operands are bounded by 1 so k bounds the absolute row sums.
        let bound = k as f64 * f64::from(f32::EPSILON) * k as f64;
        for (x, y) in out32.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((f64::from(*x) - y).abs() <= bound, "{x} vs {y}");
        }
    }

    #[test]
    fn lu_factor_into_and_solve_into_bitwise_match(rows in dominant_matrix(6),
                                                   b in prop::collection::vec(-10.0..10.0f64, 6)) {
        let refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&refs);
        let reference = a.lu_solve(&b).expect("dominant matrices are nonsingular");
        let mut factors = stco_numerics::dense::LuFactors::default();
        // Factor a throwaway system first so the second factorization
        // exercises genuine buffer reuse.
        Matrix::identity(4).lu_factor_into(&mut factors).expect("identity factors");
        a.lu_factor_into(&mut factors).expect("dominant matrices are nonsingular");
        let mut x = vec![0.0; 2];
        factors.solve_into(&b, &mut x).expect("solves");
        prop_assert_eq!(x.len(), reference.len());
        for (p, q) in x.iter().zip(&reference) {
            prop_assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn bilinear_interpolates_within_hull(vals in prop::collection::vec(0.0..10.0f64, 9),
                                         x in 0.0..2.0f64, y in 0.0..2.0f64) {
        let t = Bilinear::new(vec![0.0, 1.0, 2.0], vec![0.0, 1.0, 2.0], vals.clone()).expect("valid grid");
        let v = t.eval(x, y);
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // Inside the grid, bilinear interpolation cannot overshoot.
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} outside [{lo}, {hi}]");
    }

    #[test]
    fn r_squared_of_shifted_prediction_decreases(target in prop::collection::vec(-5.0..5.0f64, 8),
                                                 shift in 0.5..3.0f64) {
        // Guard: needs variance.
        let mean = target.iter().sum::<f64>() / target.len() as f64;
        let var: f64 = target.iter().map(|t| (t - mean) * (t - mean)).sum();
        prop_assume!(var > 1e-3);
        let perfect = stats::r_squared(&target, &target).expect("defined");
        let shifted: Vec<f64> = target.iter().map(|t| t + shift).collect();
        let worse = stats::r_squared(&shifted, &target).expect("defined");
        prop_assert!((perfect - 1.0).abs() < 1e-12);
        prop_assert!(worse < perfect);
    }

    #[test]
    fn standardizer_round_trip(data in prop::collection::vec(-100.0..100.0f64, 12)) {
        let s = stats::Standardizer::fit(&data, 3).expect("fits");
        let mut z = data.clone();
        s.apply(&mut z);
        s.invert(&mut z);
        for (a, b) in z.iter().zip(&data) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn mape_is_scale_invariant(target in prop::collection::vec(0.5..100.0f64, 6), scale in 0.1..10.0f64) {
        let pred: Vec<f64> = target.iter().map(|t| t * 1.1).collect();
        let m1 = stats::mape(&pred, &target, 0.0).expect("defined");
        let scaled_t: Vec<f64> = target.iter().map(|t| t * scale).collect();
        let scaled_p: Vec<f64> = pred.iter().map(|p| p * scale).collect();
        let m2 = stats::mape(&scaled_p, &scaled_t, 0.0).expect("defined");
        prop_assert!((m1 - m2).abs() < 1e-9);
        prop_assert!((m1 - 10.0).abs() < 1e-9);
    }
}
