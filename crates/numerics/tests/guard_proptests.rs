//! Property-based tests of the numeric-safety guards: `nonlinear` and
//! `interp` entrypoints must reject any input containing NaN/Inf with a
//! typed error — never panic, never return a poisoned "solution".

use proptest::prelude::*;
use stco_numerics::guard::{check_finite, FiniteSlice};
use stco_numerics::interp::{try_lerp_axis, Bilinear};
use stco_numerics::nonlinear::{
    bisect_threshold, levenberg_marquardt, newton, LmOptions, NewtonOptions,
};
use stco_numerics::NumericsError;

/// The three poison values every guard must catch.
const POISONS: [f64; 3] = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];

/// Strategy: a finite vector with exactly one element replaced by a
/// poison value (NaN, +Inf, or -Inf) at a random position.
fn poisoned_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    (prop::collection::vec(-10.0..10.0f64, n), 0..n, 0..3usize).prop_map(|(mut xs, i, pi)| {
        xs[i] = POISONS[pi];
        xs
    })
}

/// Strategy: a strictly increasing finite axis of `n` points.
fn increasing_axis(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01..1.0f64, n).prop_map(|steps| {
        let mut acc = 0.0;
        steps
            .iter()
            .map(|s| {
                acc += s;
                acc
            })
            .collect()
    })
}

fn is_non_finite_err<T: std::fmt::Debug>(r: Result<T, NumericsError>) -> bool {
    matches!(r, Err(NumericsError::NonFinite { .. }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn check_finite_rejects_every_poisoned_vector(xs in poisoned_vec(8)) {
        prop_assert!(is_non_finite_err(check_finite("xs", &xs)));
        prop_assert!(is_non_finite_err(FiniteSlice::new("xs", &xs)));
    }

    #[test]
    fn check_finite_accepts_every_finite_vector(xs in prop::collection::vec(-1e12..1e12f64, 8)) {
        prop_assert!(check_finite("xs", &xs).is_ok());
    }

    #[test]
    fn newton_rejects_poisoned_initial_state(x0 in poisoned_vec(4)) {
        let r = newton(x0, &NewtonOptions::default(), |x| {
            Ok((x.to_vec(), x.to_vec()))
        });
        prop_assert!(is_non_finite_err(r));
    }

    #[test]
    fn lm_rejects_poisoned_guess(p0 in poisoned_vec(3)) {
        let r = levenberg_marquardt(
            p0,
            &[-100.0; 3],
            &[100.0; 3],
            &LmOptions::default(),
            |p| p.to_vec(),
        );
        prop_assert!(is_non_finite_err(r));
    }

    #[test]
    fn lm_rejects_poisoned_residuals(p0 in prop::collection::vec(-5.0..5.0f64, 2)) {
        // Residual callback always returns NaN: the fit must error, not
        // return the unfitted guess as an Ok solution.
        let r = levenberg_marquardt(
            p0,
            &[-100.0; 2],
            &[100.0; 2],
            &LmOptions::default(),
            |_| vec![f64::NAN, f64::NAN],
        );
        prop_assert!(is_non_finite_err(r));
    }

    #[test]
    fn bisect_rejects_poisoned_bracket(
        lo in -10.0..10.0f64,
        pi in 0..3usize,
    ) {
        let poison = POISONS[pi];
        prop_assert!(is_non_finite_err(bisect_threshold(poison, lo + 1.0, 1e-9, |_| true)));
        prop_assert!(is_non_finite_err(bisect_threshold(lo, poison, 1e-9, |_| true)));
        prop_assert!(is_non_finite_err(bisect_threshold(lo, lo + 1.0, poison, |_| true)));
    }

    #[test]
    fn try_lerp_rejects_poisoned_inputs(
        xs in increasing_axis(5),
        ys in prop::collection::vec(-5.0..5.0f64, 5),
        bad_ys in poisoned_vec(5),
        i in 0..5usize,
        pi in 0..3usize,
    ) {
        let poison = POISONS[pi];
        let mut bad_xs = xs.clone();
        bad_xs[i] = poison;
        prop_assert!(is_non_finite_err(try_lerp_axis(&bad_xs, &ys, 0.5)));
        prop_assert!(is_non_finite_err(try_lerp_axis(&xs, &bad_ys, 0.5)));
        prop_assert!(is_non_finite_err(try_lerp_axis(&xs, &ys, poison)));
        // The clean version of the same inputs is accepted.
        prop_assert!(try_lerp_axis(&xs, &ys, 0.5).is_ok());
    }

    #[test]
    fn bilinear_rejects_poisoned_tables(
        xs in increasing_axis(3),
        ys in increasing_axis(3),
        values in poisoned_vec(9),
    ) {
        prop_assert!(is_non_finite_err(Bilinear::new(xs, ys, values)));
    }

    #[test]
    fn bilinear_try_eval_rejects_poisoned_queries(
        xs in increasing_axis(3),
        ys in increasing_axis(3),
        values in prop::collection::vec(-5.0..5.0f64, 9),
        q in -2.0..2.0f64,
        pi in 0..3usize,
    ) {
        let poison = POISONS[pi];
        let t = Bilinear::new(xs, ys, values).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(is_non_finite_err(t.try_eval(poison, q)));
        prop_assert!(is_non_finite_err(t.try_eval(q, poison)));
        // Finite queries on a finite table yield finite results.
        let v = t.try_eval(q, q).map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(v.is_finite());
    }
}
