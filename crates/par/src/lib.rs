//! `stco-par`: the workspace's dependency-free parallel execution layer.
//!
//! The paper's whole point is wall-clock (Table I), and the four STCO
//! hot loops — TCAD dataset sweeps, GNN minibatch training, per-corner
//! cell characterization and RL candidate scoring — are embarrassingly
//! parallel. This crate gives them a scoped thread pool built purely on
//! `std`: `std::thread::scope` workers pulling chunked work items off an
//! atomic index. No rayon, no channels, no allocator tricks.
//!
//! # Determinism contract
//!
//! Every entrypoint produces results that are **bitwise independent of
//! the thread count**:
//!
//! * [`par_map`] / [`try_par_map`] write each item's output into its own
//!   slot, so the returned `Vec` is in input order regardless of which
//!   worker computed what.
//! * [`par_map_reduce`] folds within fixed chunks and merges chunk
//!   accumulators **in chunk order**. The chunk layout is a pure
//!   function of `items.len()` (never of the thread count), so the
//!   sequence of f64 additions — and therefore the rounding — is
//!   identical at `STCO_THREADS=1` and `STCO_THREADS=64`.
//! * Errors and panics surface deterministically: work items are
//!   claimed in increasing index order, so the lowest erroring index is
//!   always evaluated before any abort, and [`try_par_map`] returns the
//!   same (first-by-index) error at every thread count.
//!
//! # Observability
//!
//! Each entrypoint opens an `stco-obs` span on the calling thread, and
//! every spawned worker opens a `par.worker` span explicitly parented
//! under it via [`stco_obs::Recorder::span_with_parent`] — so `--trace`
//! profiles keep a connected tree across thread boundaries and Table-I
//! stage seconds stay consistent.
//!
//! Each multi-threaded region also publishes pool health metrics:
//! `par.pool_utilization` (sum of worker busy time over `threads ×`
//! region wall, 1.0 = perfectly balanced) and a `par.region_items`
//! counter of work items scheduled.
//!
//! # Nesting
//!
//! Parallel regions do not nest: a `par_*` call made from inside a
//! worker (e.g. RL candidate scoring fanning out into per-corner
//! characterization) degrades to the serial path instead of
//! oversubscribing the machine. The serial path runs the identical
//! chunk/merge schedule, so nesting does not perturb results either.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use stco_obs::{FieldValue, Recorder};

/// Process-wide thread-count override installed by
/// [`set_global_threads`] (0 = unset). Takes precedence over the
/// `STCO_THREADS` environment variable, which tests cannot mutate
/// safely once threads exist.
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Whether this thread is currently executing inside a parallel
    /// region (workers and the participating caller both set it).
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Configuration of a parallel region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Worker count, caller thread included. `1` means fully serial
    /// (no threads spawned, no atomics on the work path).
    pub threads: usize,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig::current()
    }
}

impl ParConfig {
    /// Fully serial execution.
    pub fn serial() -> Self {
        ParConfig { threads: 1 }
    }

    /// An explicit thread count (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        ParConfig {
            threads: threads.max(1),
        }
    }

    /// Reads `STCO_THREADS`; falls back to
    /// [`std::thread::available_parallelism`] when unset or unparsable.
    pub fn from_env() -> Self {
        let from_env = std::env::var("STCO_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1);
        let threads = from_env.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        ParConfig { threads }
    }

    /// The effective configuration: the [`set_global_threads`] override
    /// if installed, the environment otherwise. This is what every
    /// `stco-*` hot path uses.
    pub fn current() -> Self {
        match GLOBAL_THREADS.load(Ordering::Relaxed) {
            0 => ParConfig::from_env(),
            n => ParConfig { threads: n },
        }
    }
}

/// Installs a process-wide thread-count override (`0` clears it back to
/// `STCO_THREADS`/auto). Determinism tests and bench bins use this to
/// switch thread counts without the data races of `std::env::set_var`.
pub fn set_global_threads(threads: usize) {
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// Whether the calling thread is already inside a parallel region (in
/// which case any nested `par_*` call runs serially).
pub fn in_parallel_region() -> bool {
    IN_POOL.with(|f| f.get())
}

/// Locks a mutex, recovering the guard from a poisoned lock. Poisoning
/// is unreachable here — worker panics are caught per item before they
/// can unwind through a held guard — but recovery beats `expect`.
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn into_inner_ignore_poison<T>(m: Mutex<T>) -> T {
    match m.into_inner() {
        Ok(v) => v,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The lowest-index panic payload captured in a parallel region.
type PanicSlot = Mutex<Option<(usize, Box<dyn Any + Send>)>>;

/// Runs `work(i)` for every `i in 0..num_items` across `threads`
/// workers (caller thread included). Work items are claimed off a
/// shared atomic counter in increasing index order. `work` returning
/// `false` aborts the region: in-flight items finish, unclaimed ones
/// are skipped. Panics are caught per item; the lowest-index payload is
/// rethrown on the caller after all workers have joined.
fn dispatch<F>(threads: usize, num_items: usize, work: F)
where
    F: Fn(usize) -> bool + Sync,
{
    if num_items == 0 {
        return;
    }
    let threads = threads.clamp(1, num_items);
    let panic_slot: PanicSlot = Mutex::new(None);
    let abort = AtomicBool::new(false);

    let run_item = |i: usize| -> bool {
        match catch_unwind(AssertUnwindSafe(|| work(i))) {
            Ok(keep_going) => {
                if !keep_going {
                    abort.store(true, Ordering::Relaxed);
                }
                keep_going
            }
            Err(payload) => {
                abort.store(true, Ordering::Relaxed);
                let mut slot = lock_ignore_poison(&panic_slot);
                match slot.as_ref() {
                    Some((j, _)) if *j <= i => {}
                    _ => *slot = Some((i, payload)),
                }
                false
            }
        }
    };

    if threads == 1 || in_parallel_region() {
        // Serial path: same claim order (0, 1, 2, …), same abort
        // semantics, no atomics or spawns.
        let entered = !in_parallel_region();
        if entered {
            IN_POOL.with(|f| f.set(true));
        }
        for i in 0..num_items {
            if abort.load(Ordering::Relaxed) || !run_item(i) {
                break;
            }
        }
        if entered {
            IN_POOL.with(|f| f.set(false));
        }
    } else {
        let next = AtomicUsize::new(0);
        let parent = Recorder::global().current_span();
        let region_start = Instant::now();
        let busy_ns = AtomicU64::new(0);
        let worker_loop = || {
            IN_POOL.with(|f| f.set(true));
            let started = Instant::now();
            loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= num_items {
                    break;
                }
                run_item(i);
            }
            busy_ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            IN_POOL.with(|f| f.set(false));
        };
        std::thread::scope(|scope| {
            let worker_loop = &worker_loop;
            for w in 1..threads {
                scope.spawn(move || {
                    let _span = Recorder::global().span_with_parent(
                        "par.worker",
                        &[("worker", FieldValue::from(w))],
                        parent,
                    );
                    worker_loop();
                });
            }
            // The caller participates as worker 0; its spans already
            // nest under the region span on this thread's stack.
            worker_loop();
        });
        // Pool health: busy time summed across workers over the
        // region's wall × threads budget. Spawn latency and tail
        // imbalance both show up as utilization < 1.
        let wall = region_start.elapsed().as_secs_f64();
        if wall > 0.0 {
            let busy = busy_ns.load(Ordering::Relaxed) as f64 * 1e-9;
            let metrics = Recorder::global().metrics();
            metrics
                .gauge("par.pool_utilization")
                .set((busy / (wall * threads as f64)).min(1.0));
            metrics.counter("par.region_items").add(num_items as u64);
        }
    }

    if let Some((_, payload)) = into_inner_ignore_poison(panic_slot) {
        resume_unwind(payload);
    }
}

/// Takes the computed value out of a result slot. `None` is impossible
/// once `dispatch` returned without rethrowing (every index was claimed
/// and completed), so this only documents the invariant.
fn take_slot<O>(slot: Mutex<Option<O>>, i: usize) -> O {
    match into_inner_ignore_poison(slot) {
        Some(v) => v,
        None => unreachable!("par result slot {i} empty after successful dispatch"),
    }
}

/// Applies `f` to every item, returning outputs in input order.
///
/// A panic in any worker is rethrown on the caller (lowest panicking
/// index wins at every thread count); the pool itself is never poisoned
/// — the scope joins all workers before the payload is rethrown.
pub fn par_map<T, O, F>(config: ParConfig, items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    let _region = stco_obs::span!("par.map", items = items.len(), threads = config.threads);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    dispatch(config.threads, items.len(), |i| {
        let out = f(&items[i]);
        *lock_ignore_poison(&slots[i]) = Some(out);
        true
    });
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| take_slot(s, i))
        .collect()
}

/// Fallible [`par_map`]: stops claiming new work on the first error and
/// returns the error with the lowest input index.
///
/// Work is claimed in increasing index order, so the lowest erroring
/// index is always evaluated before the abort takes effect — the
/// returned error is identical at every thread count. Typed errors
/// (e.g. a `NumericsError::NonFinite` from a worker) cross the thread
/// boundary intact; panics are rethrown as with [`par_map`].
pub fn try_par_map<T, O, E, F>(config: ParConfig, items: &[T], f: F) -> Result<Vec<O>, E>
where
    T: Sync,
    O: Send,
    E: Send,
    F: Fn(&T) -> Result<O, E> + Sync,
{
    let _region = stco_obs::span!("par.try_map", items = items.len(), threads = config.threads);
    let slots: Vec<Mutex<Option<O>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let first_err: Mutex<Option<(usize, E)>> = Mutex::new(None);
    dispatch(config.threads, items.len(), |i| match f(&items[i]) {
        Ok(out) => {
            *lock_ignore_poison(&slots[i]) = Some(out);
            true
        }
        Err(e) => {
            let mut slot = lock_ignore_poison(&first_err);
            match slot.as_ref() {
                Some((j, _)) if *j <= i => {}
                _ => *slot = Some((i, e)),
            }
            false
        }
    });
    if let Some((_, e)) = into_inner_ignore_poison(first_err) {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| take_slot(s, i))
        .collect())
}

/// Runs `f(chunk_index, chunk)` over disjoint `chunk_size` windows of
/// `data` in parallel. Chunks are claimed in increasing index order;
/// panics are rethrown as with [`par_map`].
pub fn par_chunks_mut<T, F>(config: ParConfig, data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk_size = chunk_size.max(1);
    let _region = stco_obs::span!(
        "par.chunks_mut",
        items = data.len(),
        chunk_size = chunk_size,
        threads = config.threads
    );
    let chunks: Vec<Mutex<Option<&mut [T]>>> = data
        .chunks_mut(chunk_size)
        .map(|c| Mutex::new(Some(c)))
        .collect();
    dispatch(config.threads, chunks.len(), |i| {
        if let Some(chunk) = lock_ignore_poison(&chunks[i]).take() {
            f(i, chunk);
        }
        true
    });
}

/// Number of reduction chunks [`par_map_reduce`] partitions the input
/// into. Fixed (never derived from the thread count) so the f64
/// fold/merge order — and therefore rounding — is a pure function of
/// the input length.
pub const REDUCE_CHUNKS: usize = 8;

/// Deterministic parallel map-reduce.
///
/// The input is split into at most [`REDUCE_CHUNKS`] contiguous chunks
/// (layout depends only on `items.len()`). Each chunk folds its mapped
/// values into a fresh accumulator from `init` via
/// `fold(&mut acc, map(i, &items[i]))` in index order; chunk
/// accumulators are then merged **in chunk order** on the caller with
/// `merge`. The serial path runs the identical schedule, so the result
/// is bitwise independent of the thread count even for non-associative
/// f64 arithmetic.
pub fn par_map_reduce<T, M, A, FM, FI, FF, FR>(
    config: ParConfig,
    items: &[T],
    map: FM,
    init: FI,
    fold: FF,
    mut merge: FR,
) -> A
where
    T: Sync,
    M: Send,
    A: Send,
    FM: Fn(usize, &T) -> M + Sync,
    FI: Fn() -> A + Sync,
    FF: Fn(&mut A, M) + Sync,
    FR: FnMut(&mut A, A),
{
    let _region = stco_obs::span!(
        "par.map_reduce",
        items = items.len(),
        threads = config.threads
    );
    if items.is_empty() {
        return init();
    }
    let num_chunks = REDUCE_CHUNKS.min(items.len());
    let chunk_size = items.len().div_ceil(num_chunks);
    let bounds: Vec<(usize, usize)> = (0..num_chunks)
        .map(|c| (c * chunk_size, ((c + 1) * chunk_size).min(items.len())))
        .filter(|(a, b)| a < b)
        .collect();
    let slots: Vec<Mutex<Option<A>>> = bounds.iter().map(|_| Mutex::new(None)).collect();
    dispatch(config.threads, bounds.len(), |c| {
        let (start, end) = bounds[c];
        let mut acc = init();
        for (i, item) in items[start..end].iter().enumerate() {
            fold(&mut acc, map(start + i, item));
        }
        *lock_ignore_poison(&slots[c]) = Some(acc);
        true
    });
    let mut iter = slots.into_iter().enumerate().map(|(i, s)| take_slot(s, i));
    match iter.next() {
        Some(mut total) => {
            for acc in iter {
                merge(&mut total, acc);
            }
            total
        }
        None => init(),
    }
}
