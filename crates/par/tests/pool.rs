//! Behavioral tests for the stco-par pool: ordering, determinism across
//! thread counts, typed-error and panic propagation, nesting.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use stco_numerics::NumericsError;
use stco_par::{
    in_parallel_region, par_chunks_mut, par_map, par_map_reduce, set_global_threads, try_par_map,
    ParConfig, REDUCE_CHUNKS,
};

/// Thread counts exercised by every determinism assertion: serial, a
/// divisor of typical chunk counts, oversubscribed odd, > chunk count.
const THREAD_COUNTS: [usize; 4] = [1, 2, 7, 16];

#[test]
fn par_map_returns_outputs_in_input_order() {
    let items: Vec<usize> = (0..100).collect();
    for t in THREAD_COUNTS {
        let out = par_map(ParConfig::with_threads(t), &items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>(), "t={t}");
    }
}

#[test]
fn par_map_runs_every_item_exactly_once() {
    let counter = AtomicUsize::new(0);
    let items: Vec<usize> = (0..57).collect();
    let out = par_map(ParConfig::with_threads(4), &items, |&x| {
        counter.fetch_add(1, Ordering::Relaxed);
        x
    });
    assert_eq!(out.len(), 57);
    assert_eq!(counter.load(Ordering::Relaxed), 57);
}

/// Non-associative f64 reduction: summing values of wildly different
/// magnitudes is rounding-order sensitive, so bitwise equality across
/// thread counts actually verifies the fixed chunk/merge schedule.
#[test]
fn par_map_reduce_is_bitwise_deterministic_across_thread_counts() {
    for n in [0usize, 1, 5, REDUCE_CHUNKS, 100, 1013] {
        let items: Vec<f64> = (0..n)
            .map(|i| (i as f64 + 0.1) * 10f64.powi((i % 17) as i32 - 8))
            .collect();
        let sums: Vec<f64> = THREAD_COUNTS
            .iter()
            .map(|&t| {
                par_map_reduce(
                    ParConfig::with_threads(t),
                    &items,
                    |_, &x| x,
                    || 0.0f64,
                    |acc, x| *acc += x,
                    |acc, other| *acc += other,
                )
            })
            .collect();
        for s in &sums[1..] {
            assert_eq!(s.to_bits(), sums[0].to_bits(), "n={n}, sums={sums:?}");
        }
    }
}

#[test]
fn par_map_reduce_empty_input_returns_init() {
    let items: Vec<f64> = Vec::new();
    let sum = par_map_reduce(
        ParConfig::with_threads(4),
        &items,
        |_, &x| x,
        || 42.0f64,
        |acc, x| *acc += x,
        |acc, other| *acc += other,
    );
    assert_eq!(sum, 42.0);
}

#[test]
fn try_par_map_propagates_injected_nonfinite_error_intact() {
    let items: Vec<f64> = vec![1.0, 2.0, f64::NAN, 4.0, f64::NAN, 6.0];
    for t in THREAD_COUNTS {
        let result = try_par_map(ParConfig::with_threads(t), &items, |&x| {
            if x.is_finite() {
                Ok(x * 2.0)
            } else {
                Err(NumericsError::NonFinite {
                    context: format!("injected at value {x}"),
                })
            }
        });
        // The lowest-index error (index 2) wins at every thread count,
        // and the typed error crosses the pool intact.
        match result {
            Err(NumericsError::NonFinite { context }) => {
                assert!(context.contains("injected"), "t={t}: {context}");
            }
            other => panic!("t={t}: expected NonFinite, got {other:?}"),
        }
    }
}

#[test]
fn try_par_map_ok_path_preserves_order() {
    let items: Vec<usize> = (0..64).collect();
    let out: Result<Vec<usize>, NumericsError> =
        try_par_map(ParConfig::with_threads(4), &items, |&x| Ok(x + 1));
    assert_eq!(out.unwrap(), (1..=64).collect::<Vec<_>>());
}

#[test]
fn worker_panic_is_rethrown_and_pool_is_reusable() {
    let items: Vec<usize> = (0..40).collect();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        par_map(ParConfig::with_threads(4), &items, |&x| {
            assert!(x != 13, "boom at {x}");
            x
        })
    }));
    let payload = caught.expect_err("panic must propagate to the caller");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(msg.contains("boom at 13"), "lowest-index payload: {msg}");
    // No poisoned state: the next region on the same thread works.
    let out = par_map(ParConfig::with_threads(4), &items, |&x| x);
    assert_eq!(out, items);
}

#[test]
fn par_chunks_mut_touches_every_element_once() {
    for t in THREAD_COUNTS {
        let mut data = vec![0u32; 103];
        par_chunks_mut(ParConfig::with_threads(t), &mut data, 10, |ci, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v += (ci * 10 + k + 1) as u32;
            }
        });
        let expect: Vec<u32> = (1..=103).collect();
        assert_eq!(data, expect, "t={t}");
    }
}

#[test]
fn nested_regions_degrade_to_serial() {
    let items: Vec<usize> = (0..8).collect();
    assert!(!in_parallel_region());
    let out = par_map(ParConfig::with_threads(4), &items, |&x| {
        assert!(in_parallel_region(), "worker must be marked in-pool");
        // A nested region must not spawn another pool; it still computes
        // the right answer serially.
        let inner: Vec<usize> = par_map(ParConfig::with_threads(4), &items, |&y| y + x);
        inner.iter().sum::<usize>()
    });
    let base: usize = items.iter().sum();
    let expect: Vec<usize> = items.iter().map(|&x| base + 8 * x).collect();
    assert_eq!(out, expect);
    assert!(!in_parallel_region(), "flag restored after the region");
}

#[test]
fn serial_config_runs_on_the_caller_thread() {
    let caller = std::thread::current().id();
    let items = [1, 2, 3];
    par_map(ParConfig::serial(), &items, |_| {
        assert_eq!(std::thread::current().id(), caller);
    });
}

/// The one test allowed to touch process-global thread configuration:
/// override precedence and clearing. Other tests pass explicit configs.
#[test]
fn global_override_takes_precedence_and_clears() {
    set_global_threads(3);
    assert_eq!(ParConfig::current().threads, 3);
    set_global_threads(0);
    // Back to env/auto: just assert it is sane, the actual value depends
    // on STCO_THREADS and the machine.
    assert!(ParConfig::current().threads >= 1);
    assert!(ParConfig::with_threads(0).threads == 1);
}

/// Multi-threaded regions publish pool-health metrics on the global
/// recorder: a utilization gauge in (0, 1] and an item counter.
#[test]
fn parallel_region_publishes_pool_utilization() {
    let items: Vec<u64> = (0..64).collect();
    let before = stco_obs::Recorder::global()
        .metrics()
        .counter("par.region_items")
        .get();
    par_map(ParConfig::with_threads(4), &items, |&x| {
        std::thread::sleep(std::time::Duration::from_micros(200));
        x * 2
    });
    let metrics = stco_obs::Recorder::global().metrics();
    let util = metrics.gauge("par.pool_utilization").get();
    assert!(util > 0.0 && util <= 1.0, "utilization {util}");
    assert_eq!(metrics.counter("par.region_items").get(), before + 64);
}
